//! BDD variable layout: instruction bits first, then mode-register bits.

use record_bdd::{Bdd, BddManager, VarId};
use record_netlist::{Netlist, StorageId};
use std::collections::BTreeMap;

/// Maps instruction-word bits and mode-register bits to BDD variables.
///
/// Instruction bit `i` is variable `i`; mode-register bits follow in
/// storage order.  Keeping instruction bits at the top of the order makes
/// `to_cubes` output read like partial instructions and keeps restrict-based
/// encoding queries cheap.
#[derive(Debug, Clone)]
pub struct VarMap {
    iword_width: u16,
    mode_base: BTreeMap<StorageId, u32>,
}

impl VarMap {
    /// Registers all variables for `netlist` in `manager`.
    pub fn new(netlist: &Netlist, manager: &mut BddManager) -> Self {
        let w = netlist.iword_width();
        for i in 0..w {
            manager.var_id(&format!("I[{i}]"));
        }
        let mut mode_base = BTreeMap::new();
        let mut next = w as u32;
        for s in netlist.storages() {
            if s.is_mode {
                mode_base.insert(s.id, next);
                for b in 0..s.width {
                    manager.var_id(&format!("mode.{}[{b}]", s.name));
                }
                next += s.width as u32;
            }
        }
        VarMap {
            iword_width: w,
            mode_base,
        }
    }

    /// Instruction word width.
    pub fn iword_width(&self) -> u16 {
        self.iword_width
    }

    /// Variable of instruction bit `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the instruction word.
    pub fn ibit(&self, bit: u16) -> VarId {
        assert!(bit < self.iword_width, "instruction bit out of range");
        VarId(bit as u32)
    }

    /// The positive literal of instruction bit `bit`.
    pub fn ibit_lit(&self, bit: u16, manager: &mut BddManager) -> Bdd {
        manager.literal(self.ibit(bit), true)
    }

    /// Variable of bit `bit` of mode register `s`, if `s` is a mode
    /// register.
    pub fn mode_bit(&self, s: StorageId, bit: u16) -> Option<VarId> {
        self.mode_base.get(&s).map(|&base| VarId(base + bit as u32))
    }

    /// Is `var` an instruction-word bit (as opposed to a mode bit)?
    pub fn is_ibit(&self, var: VarId) -> bool {
        var.0 < self.iword_width as u32
    }

    /// Mode registers known to this map.
    pub fn mode_registers(&self) -> impl Iterator<Item = StorageId> + '_ {
        self.mode_base.keys().copied()
    }
}
