//! ISE errors.

use std::error::Error;
use std::fmt;

/// An error raised during instruction-set extraction.
///
/// Note that *unsatisfiable execution conditions* are not errors — such
/// templates are silently discarded (and counted) per the paper.  Errors are
/// structural problems: combinational cycles, control signals that cannot be
/// traced to instruction or mode bits, or route explosion beyond the
/// configured cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsexError {
    message: String,
}

impl IsexError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        IsexError {
            message: message.into(),
        }
    }

    /// Human-readable description naming the offending netlist entity.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for IsexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instruction-set extraction error: {}", self.message)
    }
}

impl Error for IsexError {}
