use crate::*;
use record_bdd::Assignment;
use record_netlist::Netlist;
use record_rtl::{Dest, OpKind, Pattern};

fn netlist(src: &str) -> Netlist {
    let model = record_hdl::parse(src).expect("test HDL parses");
    record_netlist::elaborate(&model).expect("test HDL elaborates")
}

fn extract_src(src: &str) -> Extraction {
    extract(&netlist(src), &ExtractOptions::default()).expect("extraction succeeds")
}

/// Accumulator machine with an ALU selected by I[1:0], load-enable I[7],
/// memory write-enable I[6], direct addressing via I[5:2].
const ACC_MACHINE: &str = r#"
    module Alu {
        in a: bit(8);
        in b: bit(8);
        ctrl f: bit(2);
        out y: bit(8);
        behavior {
            case f {
                0 => y = a + b;
                1 => y = a - b;
                2 => y = a & b;
                3 => y = a;
            }
        }
    }
    module Acc {
        in d: bit(8);
        ctrl en: bit(1);
        out q: bit(8);
        register q = d when en == 1;
    }
    module Ram {
        in addr: bit(4);
        in din: bit(8);
        ctrl w: bit(1);
        out dout: bit(8);
        memory cells[16]: bit(8);
        read dout = cells[addr];
        write cells[addr] = din when w == 1;
    }
    processor AccMachine {
        instruction word: bit(8);
        out pout: bit(8);
        parts {
            alu: Alu;
            acc: Acc;
            ram: Ram;
        }
        connections {
            alu.a = acc.q;
            alu.b = ram.dout;
            alu.f = I[1:0];
            acc.d = alu.y;
            acc.en = I[7];
            ram.addr = I[5:2];
            ram.din = acc.q;
            ram.w = I[6];
            pout = acc.q;
        }
    }
"#;

#[test]
fn extracts_acc_machine_templates() {
    let ex = extract_src(ACC_MACHINE);
    // 4 ALU arms into acc, 1 memory store, 1 port write.
    assert_eq!(ex.base.len(), 6);
    assert_eq!(ex.stats.unsat_discarded, 0);
    assert_eq!(ex.stats.untraceable_skipped, 0);
    // The add template is acc := acc + ram[#I[5:2]].
    let n = netlist(ACC_MACHINE);
    let acc = n.storage_by_name("acc").unwrap().id;
    let ram = n.storage_by_name("ram").unwrap().id;
    let add = Pattern::Op(
        OpKind::Add,
        vec![
            Pattern::Reg(acc),
            Pattern::MemRead(ram, Box::new(Pattern::Imm { hi: 5, lo: 2 })),
        ],
    );
    assert!(ex.base.find(&Dest::Reg(acc), &add).is_some());
}

#[test]
fn execution_conditions_encode_fields() {
    let ex = extract_src(ACC_MACHINE);
    let n = netlist(ACC_MACHINE);
    let acc = n.storage_by_name("acc").unwrap().id;
    let ram = n.storage_by_name("ram").unwrap().id;
    let sub = Pattern::Op(
        OpKind::Sub,
        vec![
            Pattern::Reg(acc),
            Pattern::MemRead(ram, Box::new(Pattern::Imm { hi: 5, lo: 2 })),
        ],
    );
    let id = ex.base.find(&Dest::Reg(acc), &sub).expect("sub template");
    let cond = ex.base.template(id).cond;
    let asg = Assignment::satisfying(&ex.manager, cond).expect("satisfiable");
    // Load enable and the SUB opcode are pinned; the address field is free.
    assert_eq!(asg.get(ex.varmap.ibit(7)), Some(true)); // acc.en
    assert_eq!(asg.get(ex.varmap.ibit(0)), Some(true)); // f = 01
    assert_eq!(asg.get(ex.varmap.ibit(1)), Some(false));
    assert_eq!(asg.get(ex.varmap.ibit(3)), None); // address bits unconstrained
}

#[test]
fn store_template_has_address_pattern() {
    let ex = extract_src(ACC_MACHINE);
    let n = netlist(ACC_MACHINE);
    let acc = n.storage_by_name("acc").unwrap().id;
    let ram = n.storage_by_name("ram").unwrap().id;
    let dest = Dest::Mem(ram, Pattern::Imm { hi: 5, lo: 2 });
    assert!(ex.base.find(&dest, &Pattern::Reg(acc)).is_some());
}

#[test]
fn encoding_conflict_discards_templates() {
    // The decoder enables the accumulator only for op==2 but routes the
    // immediate only for op==3: the immediate-load route is unsatisfiable.
    let src = r#"
        module Dec {
            ctrl op: bit(2);
            out en: bit(1);
            out sel: bit(1);
            behavior {
                case op {
                    2 => { en = 1; sel = 0; }
                    3 => { en = 0; sel = 1; }
                    default => { en = 0; sel = 0; }
                }
            }
        }
        module Mux {
            in a: bit(8);
            in b: bit(8);
            ctrl s: bit(1);
            out y: bit(8);
            behavior {
                case s {
                    0 => y = a;
                    1 => y = b;
                }
            }
        }
        module Acc {
            in d: bit(8);
            ctrl en: bit(1);
            out q: bit(8);
            register q = d when en == 1;
        }
        processor P {
            instruction word: bit(10);
            in pin: bit(8);
            parts { dec: Dec; mux: Mux; acc: Acc; }
            connections {
                dec.op = I[9:8];
                mux.a = pin;
                mux.b = I[7:0];
                mux.s = dec.sel;
                acc.d = mux.y;
                acc.en = dec.en;
            }
        }
    "#;
    let ex = extract_src(src);
    // Only the pin route survives (en==1 forces op==2 which forces sel==0).
    assert_eq!(ex.base.len(), 1);
    assert_eq!(ex.stats.unsat_discarded, 1);
    let t = &ex.base.templates()[0];
    assert!(matches!(t.src, Pattern::Port(_)));
}

#[test]
fn bus_contention_is_excluded() {
    let src = r#"
        module R {
            in d: bit(8);
            ctrl en: bit(1);
            out q: bit(8);
            register q = d when en == 1;
        }
        processor P {
            instruction word: bit(4);
            in pin1: bit(8);
            in pin2: bit(8);
            bus dbus: bit(8);
            parts { r: R; }
            connections {
                drive dbus = pin1 when I[0] == 0;
                drive dbus = pin2;      -- always driving: contends unless pin1 off
                r.d = dbus;
                r.en = I[1];
            }
        }
    "#;
    let ex = extract_src(src);
    // Route via pin1 needs "pin2 driver off" which is impossible: discarded.
    // Route via pin2 needs I[0] == 1 (pin1 driver off).
    assert_eq!(ex.base.len(), 1);
    let t = &ex.base.templates()[0];
    assert_eq!(t.src, Pattern::Port(record_netlist::ProcPortId(1)));
    let asg = Assignment::satisfying(&ex.manager, t.cond).unwrap();
    assert_eq!(asg.get(ex.varmap.ibit(0)), Some(true));
    assert!(ex.stats.unsat_discarded >= 1);
}

#[test]
fn mode_register_conditions() {
    // A mux selected by a 1-bit mode register: conditions range over mode
    // bits; the mode register itself is writable (set-mode template).
    let src = r#"
        module Mux {
            in a: bit(8);
            in b: bit(8);
            ctrl s: bit(1);
            out y: bit(8);
            behavior {
                case s {
                    0 => y = a;
                    1 => y = b;
                }
            }
        }
        module Reg1 {
            in d: bit(1);
            ctrl en: bit(1);
            out q: bit(1);
            register q = d when en == 1;
        }
        module Acc {
            in d: bit(8);
            ctrl en: bit(1);
            out q: bit(8);
            register q = d when en == 1;
        }
        processor P {
            instruction word: bit(4);
            in pin1: bit(8);
            in pin2: bit(8);
            parts { mux: Mux; st: Reg1; acc: Acc; }
            modes { st }
            connections {
                mux.a = pin1;
                mux.b = pin2;
                mux.s = st.q;
                acc.d = mux.y;
                acc.en = I[0];
                st.d = I[1];
                st.en = I[2];
            }
        }
    "#;
    let ex = extract_src(src);
    // acc := pin1 (mode 0), acc := pin2 (mode 1), st := #I[1].
    assert_eq!(ex.base.len(), 3);
    let n = netlist(src);
    let st = n.storage_by_name("st").unwrap();
    assert!(st.is_mode);
    // The pin2 route condition depends on the mode bit.
    let t = ex
        .base
        .templates()
        .iter()
        .find(|t| t.src == Pattern::Port(record_netlist::ProcPortId(1)))
        .expect("pin2 route");
    let support = ex.manager.support(t.cond);
    let names: Vec<_> = support
        .iter()
        .map(|&v| ex.manager.var_name(v).to_owned())
        .collect();
    assert!(names.contains(&"mode.st[0]".to_owned()), "{names:?}");
}

#[test]
fn immediate_data_routes() {
    let src = r#"
        module Acc {
            in d: bit(8);
            ctrl en: bit(1);
            out q: bit(8);
            register q = d when en == 1;
        }
        processor P {
            instruction word: bit(12);
            parts { acc: Acc; }
            connections {
                acc.d = I[7:0];
                acc.en = I[8];
            }
        }
    "#;
    let ex = extract_src(src);
    assert_eq!(ex.base.len(), 1);
    assert_eq!(ex.base.templates()[0].src, Pattern::Imm { hi: 7, lo: 0 });
}

#[test]
fn regfile_source_and_dest() {
    let src = r#"
        module Rf {
            in raddr: bit(2);
            in waddr: bit(2);
            in din: bit(8);
            ctrl w: bit(1);
            out dout: bit(8);
            memory cells[4]: bit(8);
            read dout = cells[raddr];
            write cells[waddr] = din when w == 1;
        }
        module Alu {
            in a: bit(8);
            in b: bit(8);
            out y: bit(8);
            behavior { y = a + b; }
        }
        processor P {
            instruction word: bit(8);
            in pin: bit(8);
            parts { rf: Rf; alu: Alu; }
            regfiles { rf }
            connections {
                rf.raddr = I[1:0];
                rf.waddr = I[3:2];
                alu.a = rf.dout;
                alu.b = pin;
                rf.din = alu.y;
                rf.w = I[4];
            }
        }
    "#;
    let ex = extract_src(src);
    let n = netlist(src);
    let rf = n.storage_by_name("rf").unwrap().id;
    let add = Pattern::Op(
        OpKind::Add,
        vec![
            Pattern::RegFile(rf),
            Pattern::Port(record_netlist::ProcPortId(0)),
        ],
    );
    assert!(ex.base.find(&Dest::RegFile(rf), &add).is_some());
}

#[test]
fn untraceable_control_is_skipped_not_fatal() {
    // The accumulator enable comes from a primary input: data-dependent
    // control that cannot be encoded.
    let src = r#"
        module Acc {
            in d: bit(8);
            ctrl en: bit(1);
            out q: bit(8);
            register q = d when en == 1;
        }
        processor P {
            instruction word: bit(4);
            in pin: bit(8);
            in enable_pin: bit(1);
            parts { acc: Acc; }
            connections {
                acc.d = pin;
                acc.en = enable_pin;
            }
        }
    "#;
    let ex = extract_src(src);
    assert_eq!(ex.base.len(), 0);
    assert_eq!(ex.stats.untraceable_skipped, 1);
}

#[test]
fn combinational_cycle_is_an_error() {
    let src = r#"
        module Pass {
            in a: bit(8);
            out y: bit(8);
            behavior { y = a + 1; }
        }
        module Acc {
            in d: bit(8);
            ctrl en: bit(1);
            out q: bit(8);
            register q = d when en == 1;
        }
        processor P {
            instruction word: bit(4);
            parts { p1: Pass; p2: Pass; acc: Acc; }
            connections {
                p1.a = p2.y;
                p2.a = p1.y;
                acc.d = p1.y;
                acc.en = I[0];
            }
        }
    "#;
    let n = netlist(src);
    let e = extract(&n, &ExtractOptions::default()).unwrap_err();
    assert!(e.message().contains("depth"), "{}", e.message());
}

#[test]
fn chained_operations_extracted() {
    // MAC data path: acc := acc + (t * mem[..]) must appear as one template.
    let src = r#"
        module Mul {
            in a: bit(16);
            in b: bit(16);
            out y: bit(16);
            behavior { y = a * b; }
        }
        module Add {
            in a: bit(16);
            in b: bit(16);
            out y: bit(16);
            behavior { y = a + b; }
        }
        module Reg16 {
            in d: bit(16);
            ctrl en: bit(1);
            out q: bit(16);
            register q = d when en == 1;
        }
        module Ram {
            in addr: bit(4);
            in din: bit(16);
            ctrl w: bit(1);
            out dout: bit(16);
            memory cells[16]: bit(16);
            read dout = cells[addr];
            write cells[addr] = din when w == 1;
        }
        processor Mac {
            instruction word: bit(8);
            parts { mul: Mul; add: Add; acc: Reg16; t: Reg16; ram: Ram; }
            connections {
                mul.a = t.q;
                mul.b = ram.dout;
                add.a = acc.q;
                add.b = mul.y;
                acc.d = add.y;
                acc.en = I[0];
                t.d = ram.dout;
                t.en = I[1];
                ram.addr = I[7:4];
                ram.din = acc.q;
                ram.w = I[2];
            }
        }
    "#;
    let ex = extract_src(src);
    let n = netlist(src);
    let acc = n.storage_by_name("acc").unwrap().id;
    let t = n.storage_by_name("t").unwrap().id;
    let ram = n.storage_by_name("ram").unwrap().id;
    let mac = Pattern::Op(
        OpKind::Add,
        vec![
            Pattern::Reg(acc),
            Pattern::Op(
                OpKind::Mul,
                vec![
                    Pattern::Reg(t),
                    Pattern::MemRead(ram, Box::new(Pattern::Imm { hi: 7, lo: 4 })),
                ],
            ),
        ],
    );
    let id = ex.base.find(&Dest::Reg(acc), &mac).expect("MAC template");
    assert_eq!(ex.base.template(id).src.depth(), 4);
}

#[test]
fn duplicate_routes_merge_conditions() {
    // Two mux arms route the same source under different opcodes: one
    // template whose condition covers both.
    let src = r#"
        module Mux {
            in a: bit(8);
            in b: bit(8);
            ctrl s: bit(2);
            out y: bit(8);
            behavior {
                case s {
                    0 => y = a;
                    1 => y = b;
                    2 => y = a;
                }
            }
        }
        module Acc {
            in d: bit(8);
            ctrl en: bit(1);
            out q: bit(8);
            register q = d when en == 1;
        }
        processor P {
            instruction word: bit(4);
            in pin1: bit(8);
            in pin2: bit(8);
            parts { mux: Mux; acc: Acc; }
            connections {
                mux.a = pin1;
                mux.b = pin2;
                mux.s = I[1:0];
                acc.d = mux.y;
                acc.en = I[2];
            }
        }
    "#;
    let ex = extract_src(src);
    assert_eq!(ex.base.len(), 2);
    assert_eq!(ex.stats.merged_duplicates, 1);
    let t = ex
        .base
        .templates()
        .iter()
        .find(|t| t.src == Pattern::Port(record_netlist::ProcPortId(0)))
        .unwrap();
    // Condition satisfiable for s == 0 and s == 2 (I[2] set in both).
    let m = &ex.manager;
    assert!(m.eval(t.cond, &[false, false, true, false]));
    assert!(m.eval(t.cond, &[false, true, true, false]));
    assert!(!m.eval(t.cond, &[true, false, true, false]));
}
