//! Instruction-set extraction (ISE) — paper §2.
//!
//! ISE turns the structural netlist into the behavioural RT template base in
//! two steps:
//!
//! 1. **Enumeration of data transfer routes.**  For each RT destination
//!    (register, register file, memory, primary output port) the netlist is
//!    traversed backwards through module interconnect and combinational
//!    modules, forking at every multi-input module (`case` arm, bus driver,
//!    binary operator), until sequential boundaries — registers, memory
//!    reads, input ports, constants, instruction immediates — are reached.
//!    Every complete route yields one RT template tree.
//!
//! 2. **Analysis of control signals.**  Every module involved in a route
//!    must have its control ports set compatibly.  Control nets are traced
//!    back through arbitrary decoder logic to the primary control sources —
//!    instruction-word bits and mode-register bits — and evaluated
//!    *symbolically*: each control net becomes a vector of BDDs.  The
//!    conjunction of all requirements is the template's **execution
//!    condition**.  Templates whose condition is unsatisfiable (instruction
//!    encoding conflicts, bus contention) are discarded.
//!
//! The output is an [`Extraction`]: the template base, the owning
//! [`record_bdd::BddManager`] (conditions are handles into it), the variable layout and
//! extraction statistics.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     module Acc {
//!         in d: bit(8);
//!         ctrl en: bit(1);
//!         out q: bit(8);
//!         register q = d when en == 1;
//!     }
//!     processor P {
//!         instruction word: bit(4);
//!         in pin: bit(8);
//!         parts { acc: Acc; }
//!         connections { acc.d = pin; acc.en = I[0]; }
//!     }
//! "#;
//! let model = record_hdl::parse(src)?;
//! let netlist = record_netlist::elaborate(&model)?;
//! let ex = record_isex::extract(&netlist, &record_isex::ExtractOptions::default())?;
//! assert_eq!(ex.base.len(), 1); // acc := pin
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod ctrl;
mod error;
mod routes;
mod varmap;

pub use ctrl::CtrlAnalysis;
pub use error::IsexError;
pub use routes::{extract, ExtractOptions, ExtractStats, Extraction};
pub use varmap::VarMap;

#[cfg(test)]
mod tests;
