//! Enumeration of data transfer routes (paper §2, first ISE step).

use crate::ctrl::{CtrlAnalysis, CtrlIssue};
use crate::error::IsexError;
use crate::varmap::VarMap;
use record_bdd::{Bdd, BddManager};
use record_hdl::PortDir;
use record_netlist::{
    DataExpr, ElabKind, Guard, InstId, Net, Netlist, PortIdx, ProcPortId, StorageKind,
};
use record_rtl::{CondPred, Dest, OpKind, Pattern, TemplateBase, TemplateId, TemplateOrigin};
use std::collections::HashMap;

/// Options controlling extraction.
#[derive(Debug, Clone)]
pub struct ExtractOptions {
    /// Upper bound on routes enumerated for a single destination; exceeding
    /// it is reported as an error (the model has a combinatorial problem).
    pub max_routes_per_dest: usize,
    /// Upper bound on backward-traversal depth through combinational logic.
    pub max_depth: usize,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            max_routes_per_dest: 1 << 17,
            max_depth: 64,
        }
    }
}

/// Counters reported by [`extract`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// RT destinations examined.
    pub destinations: usize,
    /// Raw routes enumerated (before validity filtering).
    pub enumerated: usize,
    /// Routes discarded because their execution condition is unsatisfiable
    /// (encoding conflicts, bus contention).
    pub unsat_discarded: usize,
    /// Route forks skipped because a required control signal cannot be
    /// traced to instruction or mode bits (data-dependent control).
    pub untraceable_skipped: usize,
    /// Routes merged into an existing identical template (conditions OR-ed).
    pub merged_duplicates: usize,
}

/// The result of instruction-set extraction.
#[derive(Debug)]
pub struct Extraction {
    /// The extracted (not yet algebraically extended) template base.
    pub base: TemplateBase,
    /// Owner of all execution-condition BDDs in `base`.
    pub manager: BddManager,
    /// Variable layout (instruction bits, mode bits).
    pub varmap: VarMap,
    /// Extraction counters.
    pub stats: ExtractStats,
}

/// Runs instruction-set extraction on `netlist`.
///
/// # Errors
///
/// Returns an error on combinational cycles, on route explosion past
/// [`ExtractOptions::max_routes_per_dest`], and on traversal depth past
/// [`ExtractOptions::max_depth`] (which indicates a pathological model).
pub fn extract(netlist: &Netlist, opts: &ExtractOptions) -> Result<Extraction, IsexError> {
    let mut manager = BddManager::new();
    let ctrl = CtrlAnalysis::new(netlist, &mut manager);
    let varmap = ctrl.varmap().clone();
    let mut cx = Cx {
        n: netlist,
        ctrl,
        opts,
        stats: ExtractStats::default(),
        m: manager,
    };
    let mut base = TemplateBase::new();
    let mut dedup: HashMap<(Dest, Pattern, Option<CondPred>), TemplateId> = HashMap::new();

    // Destinations: registers and register files and memories...
    for storage in netlist.storages() {
        let inst = storage.inst;
        match storage.kind {
            StorageKind::Register => {
                cx.stats.destinations += 1;
                let ElabKind::Register { input, guard, .. } = &netlist.def_of(inst).kind else {
                    unreachable!("register storage backed by register module");
                };
                let (input, guard) = (input.clone(), guard.clone());
                if storage.is_pc {
                    // PC writes are control transfers; their guards may
                    // compare runtime data (branch-if-zero), which ordinary
                    // control analysis rejects.  Decompose instead.
                    extract_pc(
                        &mut base, &mut dedup, &mut cx, storage.id, inst, &input, &guard,
                    )?;
                    continue;
                }
                let gcond = match cx.guard(inst, &guard) {
                    Some(g) => g,
                    None => continue,
                };
                let routes = cx.expand_data_expr(inst, &input, 0)?;
                for (pat, cond) in routes {
                    let cond = cx.m.and(cond, gcond);
                    record(
                        &mut base,
                        &mut dedup,
                        &mut cx,
                        Dest::Reg(storage.id),
                        pat,
                        cond,
                        None,
                    );
                }
            }
            StorageKind::RegFile | StorageKind::Memory => {
                let ElabKind::Memory { writes, .. } = &netlist.def_of(inst).kind else {
                    unreachable!("memory storage backed by memory module");
                };
                let writes = writes.clone();
                for w in &writes {
                    cx.stats.destinations += 1;
                    let gcond = match cx.guard(inst, &w.guard) {
                        Some(g) => g,
                        None => continue,
                    };
                    let data_routes = cx.expand_data_expr(inst, &w.data, 0)?;
                    if storage.kind == StorageKind::RegFile {
                        // Cell choice is an instruction field; the compiler
                        // picks the cell at emission time.
                        for (pat, cond) in data_routes {
                            let cond = cx.m.and(cond, gcond);
                            record(
                                &mut base,
                                &mut dedup,
                                &mut cx,
                                Dest::RegFile(storage.id),
                                pat,
                                cond,
                                None,
                            );
                        }
                    } else {
                        let addr_routes = cx.expand_data_expr(inst, &w.addr, 0)?;
                        for (addr, acond) in &addr_routes {
                            for (pat, cond) in &data_routes {
                                let c = cx.m.and(*cond, *acond);
                                let c = cx.m.and(c, gcond);
                                record(
                                    &mut base,
                                    &mut dedup,
                                    &mut cx,
                                    Dest::Mem(storage.id, addr.clone()),
                                    pat.clone(),
                                    c,
                                    None,
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    // ... and primary output ports.
    for (i, port) in netlist.proc_ports().iter().enumerate() {
        if port.dir != PortDir::Out {
            continue;
        }
        cx.stats.destinations += 1;
        let Some(driver) = &port.driver else {
            continue;
        };
        let driver = driver.clone();
        let routes = cx.expand_net(&driver, 0)?;
        for (pat, cond) in routes {
            record(
                &mut base,
                &mut dedup,
                &mut cx,
                Dest::Port(ProcPortId(i as u32)),
                pat,
                cond,
                None,
            );
        }
    }

    Ok(Extraction {
        base,
        manager: cx.m,
        varmap,
        stats: cx.stats,
    })
}

/// Adds a route to the base, filtering unsatisfiable conditions and merging
/// duplicates.
fn record(
    base: &mut TemplateBase,
    dedup: &mut HashMap<(Dest, Pattern, Option<CondPred>), TemplateId>,
    cx: &mut Cx<'_>,
    dest: Dest,
    src: Pattern,
    cond: Bdd,
    pred: Option<CondPred>,
) {
    cx.stats.enumerated += 1;
    if cond == Bdd::FALSE {
        cx.stats.unsat_discarded += 1;
        return;
    }
    match dedup.get(&(dest.clone(), src.clone(), pred.clone())) {
        Some(&id) => {
            base.merge_cond(id, cond, &mut cx.m);
            cx.stats.merged_duplicates += 1;
        }
        None => {
            let id = base.push_pred(
                dest.clone(),
                src.clone(),
                cond,
                TemplateOrigin::Extracted,
                pred.clone(),
            );
            dedup.insert((dest, src, pred), id);
        }
    }
}

/// Extracts control-transfer templates for the designated PC register.
///
/// The PC's write guard is an OR of *arms*; each arm is an AND of ordinary
/// control conjuncts (decoded from the instruction word) and at most one
/// runtime data comparison (`DataCmp`, possibly negated).  An arm without a
/// data comparison yields unconditional-jump templates; an arm with one
/// yields conditional-branch templates whose [`CondPred`] test is the
/// expansion of the compared data port's driver (e.g. the accumulator).
/// Arms that mix data comparisons deeper into the guard structure are
/// skipped as untraceable, like any other data-dependent control.
fn extract_pc(
    base: &mut TemplateBase,
    dedup: &mut HashMap<(Dest, Pattern, Option<CondPred>), TemplateId>,
    cx: &mut Cx<'_>,
    storage: record_netlist::StorageId,
    inst: InstId,
    input: &DataExpr,
    guard: &Guard,
) -> Result<(), IsexError> {
    let mut arms = Vec::new();
    flatten_or(guard, &mut arms);
    let target_routes = cx.expand_data_expr(inst, input, 0)?;
    for arm in arms {
        let mut conjuncts = Vec::new();
        flatten_and(&arm, &mut conjuncts);
        let mut ctrl = Guard::True;
        let mut data: Option<(PortIdx, u64, bool)> = None;
        let mut untraceable = false;
        for c in conjuncts {
            match c {
                Guard::DataCmp { port, value } => {
                    if data.replace((port, value, true)).is_some() {
                        untraceable = true;
                    }
                }
                Guard::Not(inner) => {
                    if let Guard::DataCmp { port, value } = *inner {
                        if data.replace((port, value, false)).is_some() {
                            untraceable = true;
                        }
                    } else if contains_data_cmp(&inner) {
                        untraceable = true;
                    } else {
                        ctrl = ctrl.and(Guard::Not(inner));
                    }
                }
                other => {
                    if contains_data_cmp(&other) {
                        untraceable = true;
                    } else {
                        ctrl = ctrl.and(other);
                    }
                }
            }
        }
        if untraceable {
            cx.stats.untraceable_skipped += 1;
            continue;
        }
        let Some(gcond) = cx.guard(inst, &ctrl) else {
            continue;
        };
        match data {
            None => {
                for (pat, cond) in &target_routes {
                    let c = cx.m.and(*cond, gcond);
                    record(base, dedup, cx, Dest::Reg(storage), pat.clone(), c, None);
                }
            }
            Some((port, value, eq)) => {
                let test_routes = cx.expand_data_expr(inst, &DataExpr::Port(port), 0)?;
                for (test, tcond) in &test_routes {
                    for (pat, cond) in &target_routes {
                        let c = cx.m.and(*cond, *tcond);
                        let c = cx.m.and(c, gcond);
                        record(
                            base,
                            dedup,
                            cx,
                            Dest::Reg(storage),
                            pat.clone(),
                            c,
                            Some(CondPred {
                                test: test.clone(),
                                value,
                                eq,
                            }),
                        );
                    }
                }
            }
        }
    }
    Ok(())
}

/// Flattens the top-level OR structure of a guard into arms.
fn flatten_or(g: &Guard, out: &mut Vec<Guard>) {
    match g {
        Guard::Or(a, b) => {
            flatten_or(a, out);
            flatten_or(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// Flattens the top-level AND structure of a guard into conjuncts.
fn flatten_and(g: &Guard, out: &mut Vec<Guard>) {
    match g {
        Guard::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// Does the guard contain a runtime data comparison anywhere?
fn contains_data_cmp(g: &Guard) -> bool {
    match g {
        Guard::DataCmp { .. } => true,
        Guard::Not(a) => contains_data_cmp(a),
        Guard::And(a, b) | Guard::Or(a, b) => contains_data_cmp(a) || contains_data_cmp(b),
        Guard::True | Guard::False | Guard::Cmp { .. } => false,
    }
}

/// Expansion context.
struct Cx<'n> {
    n: &'n Netlist,
    ctrl: CtrlAnalysis<'n>,
    opts: &'n ExtractOptions,
    stats: ExtractStats,
    m: BddManager,
}

impl Cx<'_> {
    /// Evaluates a module guard; `None` means untraceable (skip the fork).
    fn guard(&mut self, inst: InstId, guard: &Guard) -> Option<Bdd> {
        match self.ctrl.guard_bdd(inst, guard, &mut self.m) {
            Ok(b) => Some(b),
            Err(CtrlIssue::Untraceable(_)) => {
                self.stats.untraceable_skipped += 1;
                None
            }
            Err(cycle) => {
                // Control cycles surface as untraceable here; the dedicated
                // cycle error is raised by data-path traversal.  Treat the
                // same as untraceable to keep extraction total.
                let _ = cycle;
                self.stats.untraceable_skipped += 1;
                None
            }
        }
    }

    /// Enumerates all routes delivering a value onto `net`.
    fn expand_net(&mut self, net: &Net, depth: usize) -> Result<Vec<(Pattern, Bdd)>, IsexError> {
        if depth > self.opts.max_depth {
            return Err(IsexError::new(format!(
                "traversal depth exceeds {} (combinational cycle through the data path?)",
                self.opts.max_depth
            )));
        }
        match net {
            Net::Const(v) => Ok(vec![(Pattern::Const(*v), Bdd::TRUE)]),
            Net::IField { hi, lo } => Ok(vec![(Pattern::Imm { hi: *hi, lo: *lo }, Bdd::TRUE)]),
            Net::ProcIn(p) => Ok(vec![(Pattern::Port(*p), Bdd::TRUE)]),
            Net::Slice { base, hi, lo } => {
                let inner = self.expand_net(base, depth + 1)?;
                Ok(inner
                    .into_iter()
                    .map(|(p, c)| (slice_pattern(p, *hi, *lo), c))
                    .collect())
            }
            Net::Bus(bid) => {
                // Fork per driver; forbid contention by requiring all other
                // drivers disabled (paper: bus contention makes conditions
                // unsatisfiable).
                let drivers = self.n.bus(*bid).drivers.clone();
                let mut enables = Vec::with_capacity(drivers.len());
                for d in &drivers {
                    match self.ctrl.bus_guard_bdd(&d.guard, &mut self.m) {
                        Ok(b) => enables.push(Some(b)),
                        Err(CtrlIssue::Untraceable(_)) => {
                            self.stats.untraceable_skipped += 1;
                            enables.push(None);
                        }
                        Err(e) => return Err(e.into_error()),
                    }
                }
                let mut out = Vec::new();
                for (i, d) in drivers.iter().enumerate() {
                    let Some(en) = enables[i] else { continue };
                    let mut cond = en;
                    for (j, other) in enables.iter().enumerate() {
                        if i == j {
                            continue;
                        }
                        // A driver with untraceable enable may contend at any
                        // time; conservatively exclude routes over this bus
                        // only if we cannot prove the other driver off.
                        match other {
                            Some(o) => {
                                let off = self.m.not(*o);
                                cond = self.m.and(cond, off);
                            }
                            None => {
                                cond = Bdd::FALSE;
                            }
                        }
                        if cond == Bdd::FALSE {
                            break;
                        }
                    }
                    if cond == Bdd::FALSE {
                        self.stats.unsat_discarded += 1;
                        continue;
                    }
                    for (p, c) in self.expand_net(&d.source, depth + 1)? {
                        let cc = self.m.and(c, cond);
                        if cc == Bdd::FALSE {
                            self.stats.unsat_discarded += 1;
                            continue;
                        }
                        out.push((p, cc));
                    }
                }
                Ok(out)
            }
            Net::InstOut { inst, port } => self.expand_inst_out(*inst, *port, depth),
        }
    }

    fn expand_inst_out(
        &mut self,
        inst: InstId,
        port: PortIdx,
        depth: usize,
    ) -> Result<Vec<(Pattern, Bdd)>, IsexError> {
        let kind = {
            let def = self.n.def_of(inst);
            match &def.kind {
                ElabKind::Register { .. } => Expandee::Register,
                ElabKind::Memory { reads, .. } => match reads.iter().find(|r| r.out == port) {
                    Some(r) => Expandee::MemRead(r.addr.clone()),
                    None => Expandee::DeadOutput,
                },
                ElabKind::Comb { outputs } => match outputs.iter().find(|o| o.port == port) {
                    Some(beh) => Expandee::Comb(beh.arms.clone()),
                    None => Expandee::DeadOutput,
                },
            }
        };
        match kind {
            Expandee::Register => {
                let storage = self
                    .n
                    .storage_of_inst(inst)
                    .expect("register instance has storage");
                Ok(vec![(Pattern::Reg(storage.id), Bdd::TRUE)])
            }
            Expandee::MemRead(addr) => {
                let storage = self
                    .n
                    .storage_of_inst(inst)
                    .expect("memory instance has storage");
                let (sid, skind) = (storage.id, storage.kind);
                if skind == StorageKind::RegFile {
                    // Cell choice is free; the address field is fixed at
                    // emission time.
                    return Ok(vec![(Pattern::RegFile(sid), Bdd::TRUE)]);
                }
                let addr_routes = self.expand_data_expr(inst, &addr, depth + 1)?;
                Ok(addr_routes
                    .into_iter()
                    .map(|(p, c)| (Pattern::MemRead(sid, Box::new(p)), c))
                    .collect())
            }
            Expandee::Comb(arms) => {
                let mut out = Vec::new();
                for arm in &arms {
                    let Some(g) = self.guard(inst, &arm.guard) else {
                        continue;
                    };
                    if g == Bdd::FALSE {
                        self.stats.unsat_discarded += 1;
                        continue;
                    }
                    for (p, c) in self.expand_data_expr(inst, &arm.value, depth + 1)? {
                        let cc = self.m.and(c, g);
                        if cc == Bdd::FALSE {
                            self.stats.unsat_discarded += 1;
                            continue;
                        }
                        out.push((p, cc));
                        if out.len() > self.opts.max_routes_per_dest {
                            return Err(IsexError::new(format!(
                                "route explosion at `{}.{}`: more than {} routes",
                                self.n.inst(inst).name,
                                self.n.def_of(inst).ports[port].name,
                                self.opts.max_routes_per_dest
                            )));
                        }
                    }
                }
                Ok(out)
            }
            Expandee::DeadOutput => Ok(Vec::new()),
        }
    }

    /// Enumerates routes for a data expression in `inst`'s context.
    fn expand_data_expr(
        &mut self,
        inst: InstId,
        e: &DataExpr,
        depth: usize,
    ) -> Result<Vec<(Pattern, Bdd)>, IsexError> {
        if depth > self.opts.max_depth {
            return Err(IsexError::new(format!(
                "traversal depth exceeds {} while expanding `{}`",
                self.opts.max_depth,
                self.n.inst(inst).name
            )));
        }
        match e {
            DataExpr::Const(v) => Ok(vec![(Pattern::Const(*v), Bdd::TRUE)]),
            DataExpr::Port(p) => match self.n.driver_of(inst, *p) {
                Some(net) => {
                    let net = net.clone();
                    self.expand_net(&net, depth + 1)
                }
                None => Ok(Vec::new()), // dangling input: no routes through here
            },
            DataExpr::Slice { base, hi, lo } => {
                let inner = self.expand_data_expr(inst, base, depth + 1)?;
                Ok(inner
                    .into_iter()
                    .map(|(p, c)| (slice_pattern(p, *hi, *lo), c))
                    .collect())
            }
            DataExpr::Unary { op, arg } => {
                let inner = self.expand_data_expr(inst, arg, depth + 1)?;
                let op = OpKind::from_un(*op);
                Ok(inner
                    .into_iter()
                    .map(|(p, c)| (Pattern::Op(op, vec![p]), c))
                    .collect())
            }
            DataExpr::Binary { op, lhs, rhs } => {
                let l = self.expand_data_expr(inst, lhs, depth + 1)?;
                let r = self.expand_data_expr(inst, rhs, depth + 1)?;
                let op = OpKind::from_bin(*op);
                let mut out = Vec::with_capacity(l.len() * r.len());
                for (lp, lc) in &l {
                    for (rp, rc) in &r {
                        let c = self.m.and(*lc, *rc);
                        if c == Bdd::FALSE {
                            self.stats.unsat_discarded += 1;
                            continue;
                        }
                        out.push((Pattern::Op(op, vec![lp.clone(), rp.clone()]), c));
                        if out.len() > self.opts.max_routes_per_dest {
                            return Err(IsexError::new(format!(
                                "route explosion in `{}`: more than {} routes",
                                self.n.inst(inst).name,
                                self.opts.max_routes_per_dest
                            )));
                        }
                    }
                }
                Ok(out)
            }
        }
    }
}

/// What an instance output expands to.
enum Expandee {
    Register,
    MemRead(DataExpr),
    Comb(Vec<record_netlist::GuardedExpr>),
    DeadOutput,
}

/// Wraps `p` in a slice operator, folding slices of immediates and
/// constants.
fn slice_pattern(p: Pattern, hi: u16, lo: u16) -> Pattern {
    match p {
        // A slice of an instruction field is a narrower instruction field.
        Pattern::Imm { lo: base_lo, .. } => Pattern::Imm {
            hi: base_lo + hi,
            lo: base_lo + lo,
        },
        Pattern::Const(v) => {
            let width = hi - lo + 1;
            let mask = if width >= 64 {
                u64::MAX
            } else {
                (1 << width) - 1
            };
            Pattern::Const((v >> lo) & mask)
        }
        other => Pattern::Op(OpKind::Slice(hi, lo), vec![other]),
    }
}
