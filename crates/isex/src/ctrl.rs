//! Analysis of control signals (paper §2, second ISE step).
//!
//! Control nets are evaluated *symbolically*: every net becomes a vector of
//! BDDs over instruction-word bits and mode-register bits.  Tracing passes
//! through arbitrary combinational decoder logic (`case` tables, bitwise
//! ops, slices); it stops at registers — only designated *mode registers*
//! are legitimate control sources, anything else is data-dependent control
//! and therefore not statically encodable.

use crate::error::IsexError;
use crate::varmap::VarMap;
use record_bdd::{Bdd, BddManager};
use record_hdl::UnOp;
use record_netlist::{
    BusGuard, CtrlExpr, DataExpr, ElabKind, Guard, InstId, Net, Netlist, PortIdx, StorageKind,
};
use std::collections::{HashMap, HashSet};

/// Why a control net could not be evaluated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlIssue {
    /// The net depends on the data path (ordinary register, memory, primary
    /// input, bus) — the condition is not a static function of instruction
    /// and mode bits.  Routes requiring it are skipped, not errors.
    Untraceable(String),
    /// A combinational cycle in the control logic: a model bug.
    Cycle(String),
}

impl CtrlIssue {
    /// Converts a cycle into a hard extraction error.
    pub fn into_error(self) -> IsexError {
        match self {
            CtrlIssue::Untraceable(s) => IsexError::new(format!("untraceable control: {s}")),
            CtrlIssue::Cycle(s) => IsexError::new(format!("combinational control cycle: {s}")),
        }
    }
}

/// A symbolic bit-vector: one BDD per bit, plus a *definedness* condition
/// (partial `case` tables leave outputs undefined outside their labels; a
/// comparison against such a vector must include definedness).
#[derive(Debug, Clone)]
pub struct SymVec {
    /// Bit functions, least significant first.
    pub bits: Vec<Bdd>,
    /// Condition under which the vector carries a defined value.
    pub defined: Bdd,
}

impl SymVec {
    fn constant(value: u64, width: u16) -> SymVec {
        SymVec {
            bits: (0..width)
                .map(|i| {
                    if (value >> i) & 1 == 1 {
                        Bdd::TRUE
                    } else {
                        Bdd::FALSE
                    }
                })
                .collect(),
            defined: Bdd::TRUE,
        }
    }

    fn slice(&self, hi: u16, lo: u16) -> SymVec {
        SymVec {
            bits: self.bits[lo as usize..=(hi as usize).min(self.bits.len() - 1)].to_vec(),
            defined: self.defined,
        }
    }
}

type CtrlResult<T> = Result<T, CtrlIssue>;

/// Symbolic evaluator for control nets with memoisation.
#[derive(Debug)]
pub struct CtrlAnalysis<'n> {
    netlist: &'n Netlist,
    varmap: VarMap,
    memo: HashMap<(InstId, PortIdx), SymVec>,
    in_progress: HashSet<(InstId, PortIdx)>,
}

impl<'n> CtrlAnalysis<'n> {
    /// Prepares analysis for `netlist`, registering BDD variables.
    pub fn new(netlist: &'n Netlist, manager: &mut BddManager) -> Self {
        CtrlAnalysis {
            netlist,
            varmap: VarMap::new(netlist, manager),
            memo: HashMap::new(),
            in_progress: HashSet::new(),
        }
    }

    /// The variable layout.
    pub fn varmap(&self) -> &VarMap {
        &self.varmap
    }

    /// Builds the condition "`vec == value`" (including definedness).
    pub fn vec_equals(&self, vec: &SymVec, value: u64, m: &mut BddManager) -> Bdd {
        let mut acc = vec.defined;
        for (i, &b) in vec.bits.iter().enumerate() {
            let want = (value >> i) & 1 == 1;
            let lit = if want { b } else { m.not(b) };
            acc = m.and(acc, lit);
            if acc == Bdd::FALSE {
                break;
            }
        }
        // Bits of `value` above the vector width must be zero.
        if vec.bits.len() < 64 && value >> vec.bits.len() != 0 {
            return Bdd::FALSE;
        }
        acc
    }

    /// Symbolic value of a processor-level net, as a `width`-bit vector.
    pub fn net_vec(&mut self, net: &Net, width: u16, m: &mut BddManager) -> CtrlResult<SymVec> {
        match net {
            Net::IField { hi, lo } => {
                let bits = (*lo..=*hi)
                    .map(|b| m.literal(self.varmap.ibit(b), true))
                    .collect();
                Ok(SymVec {
                    bits,
                    defined: Bdd::TRUE,
                })
            }
            Net::Const(v) => Ok(SymVec::constant(*v, width.max(1))),
            Net::Slice { base, hi, lo } => {
                let bw = self.netlist.net_width(base).max(hi + 1);
                let base_vec = self.net_vec(base, bw, m)?;
                Ok(base_vec.slice(*hi, *lo))
            }
            Net::ProcIn(p) => Err(CtrlIssue::Untraceable(format!(
                "primary input `{}` feeds a control port",
                self.netlist.proc_port(*p).name
            ))),
            Net::Bus(b) => Err(CtrlIssue::Untraceable(format!(
                "bus `{}` feeds a control port",
                self.netlist.bus(*b).name
            ))),
            Net::InstOut { inst, port } => self.out_vec(*inst, *port, m),
        }
    }

    /// Symbolic value of an instance output port.
    fn out_vec(&mut self, inst: InstId, port: PortIdx, m: &mut BddManager) -> CtrlResult<SymVec> {
        if let Some(v) = self.memo.get(&(inst, port)) {
            return Ok(v.clone());
        }
        // Collect everything needed from the netlist up front so the match
        // below holds no borrows while mutating `self`.
        enum OutKind {
            ModeReg {
                sid: record_netlist::StorageId,
                width: u16,
            },
            PlainReg,
            Memory(&'static str),
            Comb,
        }
        let (kind, iname, pname) = {
            let def = self.netlist.def_of(inst);
            let iname = self.netlist.inst(inst).name.clone();
            let pname = def.ports[port].name.clone();
            let kind = match &def.kind {
                ElabKind::Register { .. } => {
                    let storage = self
                        .netlist
                        .storage_of_inst(inst)
                        .expect("register instance has a storage");
                    if storage.is_mode {
                        OutKind::ModeReg {
                            sid: storage.id,
                            width: storage.width,
                        }
                    } else {
                        OutKind::PlainReg
                    }
                }
                ElabKind::Memory { .. } => {
                    OutKind::Memory(match self.netlist.storage_of_inst(inst).map(|s| s.kind) {
                        Some(StorageKind::RegFile) => "register file",
                        _ => "memory",
                    })
                }
                ElabKind::Comb { .. } => OutKind::Comb,
            };
            (kind, iname, pname)
        };
        let result = match kind {
            OutKind::ModeReg { sid, width } => {
                let bits = (0..width)
                    .map(|b| {
                        let var = self
                            .varmap
                            .mode_bit(sid, b)
                            .expect("mode register registered in varmap");
                        m.literal(var, true)
                    })
                    .collect();
                Ok(SymVec {
                    bits,
                    defined: Bdd::TRUE,
                })
            }
            OutKind::PlainReg => Err(CtrlIssue::Untraceable(format!(
                "register `{iname}` is not a mode register but feeds control"
            ))),
            OutKind::Memory(kindname) => Err(CtrlIssue::Untraceable(format!(
                "{kindname} `{iname}` feeds a control port"
            ))),
            OutKind::Comb => {
                if !self.in_progress.insert((inst, port)) {
                    return Err(CtrlIssue::Cycle(format!(
                        "output `{iname}.{pname}` participates in a combinational cycle"
                    )));
                }
                let r = self.comb_out_vec(inst, port, m);
                self.in_progress.remove(&(inst, port));
                r
            }
        }?;
        self.memo.insert((inst, port), result.clone());
        Ok(result)
    }

    fn comb_out_vec(
        &mut self,
        inst: InstId,
        port: PortIdx,
        m: &mut BddManager,
    ) -> CtrlResult<SymVec> {
        let (width, arms) = {
            let def = self.netlist.def_of(inst);
            let ElabKind::Comb { outputs } = &def.kind else {
                unreachable!("caller checked comb");
            };
            let width = def.ports[port].width;
            let Some(beh) = outputs.iter().find(|o| o.port == port) else {
                return Err(CtrlIssue::Untraceable(format!(
                    "output `{}.{}` is never assigned",
                    self.netlist.inst(inst).name,
                    def.ports[port].name
                )));
            };
            (width, beh.arms.clone())
        };
        let mut bits = vec![Bdd::FALSE; width as usize];
        let mut defined = Bdd::FALSE;
        for arm in &arms {
            let g = self.guard_bdd(inst, &arm.guard, m)?;
            if g == Bdd::FALSE {
                continue;
            }
            let val = self.data_vec(inst, &arm.value, width, m)?;
            let contrib = m.and(g, val.defined);
            defined = m.or(defined, contrib);
            for (i, slot) in bits.iter_mut().enumerate() {
                let vb = val.bits.get(i).copied().unwrap_or(Bdd::FALSE);
                let gated = m.and(g, vb);
                *slot = m.or(*slot, gated);
            }
        }
        Ok(SymVec { bits, defined })
    }

    /// Symbolic value of a data expression evaluated in `inst`'s context.
    /// Only decoder-suitable operators are supported; arithmetic in a
    /// control path is untraceable.
    fn data_vec(
        &mut self,
        inst: InstId,
        e: &DataExpr,
        width: u16,
        m: &mut BddManager,
    ) -> CtrlResult<SymVec> {
        match e {
            DataExpr::Const(v) => Ok(SymVec::constant(*v, width)),
            DataExpr::Port(p) => {
                let pw = self.netlist.def_of(inst).ports[*p].width;
                match self.netlist.driver_of(inst, *p) {
                    Some(net) => {
                        let net = net.clone();
                        self.net_vec(&net, pw, m)
                    }
                    None => Err(CtrlIssue::Untraceable(format!(
                        "port `{}.{}` is unconnected",
                        self.netlist.inst(inst).name,
                        self.netlist.def_of(inst).ports[*p].name
                    ))),
                }
            }
            DataExpr::Slice { base, hi, lo } => {
                let b = self.data_vec(inst, base, hi + 1, m)?;
                Ok(b.slice(*hi, *lo))
            }
            DataExpr::Unary { op: UnOp::Not, arg } => {
                let a = self.data_vec(inst, arg, width, m)?;
                Ok(SymVec {
                    bits: a.bits.iter().map(|&b| m.not(b)).collect(),
                    defined: a.defined,
                })
            }
            DataExpr::Binary { op, lhs, rhs } => {
                use record_hdl::BinOp;
                let bitwise =
                    |m: &mut BddManager,
                     a: SymVec,
                     b: SymVec,
                     f: fn(&mut BddManager, Bdd, Bdd) -> Bdd| {
                        let defined = m.and(a.defined, b.defined);
                        let n = a.bits.len().max(b.bits.len());
                        let bits = (0..n)
                            .map(|i| {
                                let x = a.bits.get(i).copied().unwrap_or(Bdd::FALSE);
                                let y = b.bits.get(i).copied().unwrap_or(Bdd::FALSE);
                                f(m, x, y)
                            })
                            .collect();
                        SymVec { bits, defined }
                    };
                match op {
                    BinOp::And => {
                        let a = self.data_vec(inst, lhs, width, m)?;
                        let b = self.data_vec(inst, rhs, width, m)?;
                        Ok(bitwise(m, a, b, BddManager::and))
                    }
                    BinOp::Or => {
                        let a = self.data_vec(inst, lhs, width, m)?;
                        let b = self.data_vec(inst, rhs, width, m)?;
                        Ok(bitwise(m, a, b, BddManager::or))
                    }
                    BinOp::Xor => {
                        let a = self.data_vec(inst, lhs, width, m)?;
                        let b = self.data_vec(inst, rhs, width, m)?;
                        Ok(bitwise(m, a, b, BddManager::xor))
                    }
                    other => Err(CtrlIssue::Untraceable(format!(
                        "operator `{other:?}` in a control path of `{}`",
                        self.netlist.inst(inst).name
                    ))),
                }
            }
            DataExpr::Unary { op, .. } => Err(CtrlIssue::Untraceable(format!(
                "operator `{op:?}` in a control path of `{}`",
                self.netlist.inst(inst).name
            ))),
        }
    }

    /// Evaluates a module-level guard in the context of instance `inst`.
    pub fn guard_bdd(
        &mut self,
        inst: InstId,
        guard: &Guard,
        m: &mut BddManager,
    ) -> CtrlResult<Bdd> {
        match guard {
            Guard::True => Ok(Bdd::TRUE),
            Guard::False => Ok(Bdd::FALSE),
            Guard::Cmp { sel, value } => {
                let vec = self.ctrl_expr_vec(inst, sel, m)?;
                Ok(self.vec_equals(&vec, *value, m))
            }
            // A runtime data comparison is not decodable from the
            // instruction word; writes guarded by one are untraceable here.
            // Route enumeration handles the PC's data-guarded arms itself.
            Guard::DataCmp { port, .. } => Err(CtrlIssue::Untraceable(format!(
                "data-dependent guard on port {} of `{}`",
                port,
                self.netlist.inst(inst).name
            ))),
            Guard::Not(g) => {
                let inner = self.guard_bdd(inst, g, m)?;
                Ok(m.not(inner))
            }
            Guard::And(a, b) => {
                let x = self.guard_bdd(inst, a, m)?;
                if x == Bdd::FALSE {
                    return Ok(Bdd::FALSE);
                }
                let y = self.guard_bdd(inst, b, m)?;
                Ok(m.and(x, y))
            }
            Guard::Or(a, b) => {
                let x = self.guard_bdd(inst, a, m)?;
                let y = self.guard_bdd(inst, b, m)?;
                Ok(m.or(x, y))
            }
        }
    }

    fn ctrl_expr_vec(
        &mut self,
        inst: InstId,
        e: &CtrlExpr,
        m: &mut BddManager,
    ) -> CtrlResult<SymVec> {
        match e {
            CtrlExpr::Port(p) => {
                let def = self.netlist.def_of(inst);
                let pw = def.ports[*p].width;
                match self.netlist.driver_of(inst, *p) {
                    Some(net) => {
                        let net = net.clone();
                        self.net_vec(&net, pw, m)
                    }
                    None => Err(CtrlIssue::Untraceable(format!(
                        "control port `{}.{}` is unconnected",
                        self.netlist.inst(inst).name,
                        def.ports[*p].name
                    ))),
                }
            }
            CtrlExpr::Const(v) => Ok(SymVec::constant(*v, 64)),
            CtrlExpr::Slice { base, hi, lo } => {
                let b = self.ctrl_expr_vec(inst, base, m)?;
                Ok(b.slice(*hi, *lo))
            }
        }
    }

    /// Evaluates a processor-level bus-driver guard.
    pub fn bus_guard_bdd(&mut self, g: &BusGuard, m: &mut BddManager) -> CtrlResult<Bdd> {
        match g {
            BusGuard::True => Ok(Bdd::TRUE),
            BusGuard::Cmp { net, eq, value } => {
                let w = self.netlist.net_width(net).max(1);
                let vec = self.net_vec(net, w, m)?;
                let cond = self.vec_equals(&vec, *value, m);
                Ok(if *eq {
                    cond
                } else {
                    // != keeps definedness: defined && !(bits == value)
                    let eq_bits = {
                        let mut acc = Bdd::TRUE;
                        for (i, &b) in vec.bits.iter().enumerate() {
                            let want = (*value >> i) & 1 == 1;
                            let lit = if want { b } else { m.not(b) };
                            acc = m.and(acc, lit);
                        }
                        acc
                    };
                    let ne = m.not(eq_bits);
                    m.and(vec.defined, ne)
                })
            }
            BusGuard::Not(inner) => {
                let x = self.bus_guard_bdd(inner, m)?;
                Ok(m.not(x))
            }
            BusGuard::And(a, b) => {
                let x = self.bus_guard_bdd(a, m)?;
                let y = self.bus_guard_bdd(b, m)?;
                Ok(m.and(x, y))
            }
            BusGuard::Or(a, b) => {
                let x = self.bus_guard_bdd(a, m)?;
                let y = self.bus_guard_bdd(b, m)?;
                Ok(m.or(x, y))
            }
        }
    }
}
