//! End-to-end service test: a real server on a loopback socket, eight
//! concurrent clients across two HDL models, exactly one retarget per
//! model (proved by the served counters), listings byte-identical to
//! local fresh compiles, structured timeouts, and admission control.

use record_core::{CompileRequest, Record, RetargetOptions};
use record_serve::{
    call_with_retry, local_key, Client, CompileSpec, Json, Model, RetryPolicy, ServeError, Server,
    ServerConfig,
};
use record_targets::{kernels, models};

#[test]
fn eight_concurrent_clients_two_models_one_retarget_each() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();

    let model_names = ["ref", "tms320c25"];
    let picks: Vec<_> = kernels::kernels().into_iter().take(4).collect();

    // Local reference listings, compiled on fresh sessions: what the
    // server's pooled sessions must reproduce byte for byte.
    let mut expected: Vec<Vec<String>> = Vec::new();
    for name in model_names {
        let hdl = models::model(name).unwrap().hdl;
        let target = Record::retarget(hdl, &RetargetOptions::default()).unwrap();
        expected.push(
            picks
                .iter()
                .map(|k| {
                    let kernel = target
                        .compile(&CompileRequest::new(k.source, k.function))
                        .unwrap();
                    target.listing(&kernel)
                })
                .collect(),
        );
    }

    // Eight clients, four per model, all hammering the server at once.
    std::thread::scope(|scope| {
        for client_id in 0..8 {
            let model_idx = client_id % 2;
            let expected = &expected[model_idx];
            let picks = &picks;
            scope.spawn(move || {
                let hdl = models::model(model_names[model_idx]).unwrap().hdl;
                let mut client = Client::connect(addr).expect("connect");

                // Half the clients go through explicit retarget + key
                // addressing, half send inline HDL; both routes must
                // coalesce on the cache.
                let key_storage;
                let model = if client_id < 4 {
                    let summary = client.retarget(hdl).expect("retarget");
                    assert_eq!(summary.key, local_key(hdl), "client {client_id}");
                    key_storage = summary.key;
                    Model::Key(&key_storage)
                } else {
                    Model::Hdl(hdl)
                };

                for (kernel, want) in picks.iter().zip(expected) {
                    let got = client
                        .compile(
                            &model,
                            &CompileSpec::new(kernel.source, kernel.function).listing(true),
                        )
                        .unwrap_or_else(|e| panic!("client {client_id} {}: {e}", kernel.name));
                    assert_eq!(
                        got.listing.as_deref(),
                        Some(want.as_str()),
                        "client {client_id} {}: served listing differs from fresh local compile",
                        kernel.name
                    );
                }

                // And a batch on one warm session, same guarantee.
                let specs: Vec<_> = picks
                    .iter()
                    .map(|k| CompileSpec::new(k.source, k.function).listing(true))
                    .collect();
                let results = client.batch_compile(&model, &specs).expect("batch");
                for ((result, want), kernel) in results.iter().zip(expected).zip(picks.iter()) {
                    let got = result.as_ref().unwrap_or_else(|e| {
                        panic!("client {client_id} batch {}: {e}", kernel.name)
                    });
                    assert_eq!(
                        got.listing.as_deref(),
                        Some(want.as_str()),
                        "{}",
                        kernel.name
                    );
                }
            });
        }
    });

    // The cache retargeted each model exactly once, everything else hit.
    let mut client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("cache section");
    assert_eq!(
        cache.get("retargets").and_then(Json::as_u64),
        Some(2),
        "one retarget per model: {stats}"
    );
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(2));
    let hits = cache.get("hits").and_then(Json::as_u64).unwrap();
    let waits = cache.get("inflight_waits").and_then(Json::as_u64).unwrap();
    assert!(hits >= 8, "coalesced requests hit the cache: {stats}");
    let pools = stats.get("pools").expect("pools section");
    assert_eq!(pools.get("count").and_then(Json::as_u64), Some(2));
    assert!(
        pools.get("reused").and_then(Json::as_u64).unwrap() > 0,
        "warm sessions were reused: {stats}"
    );
    let _ = waits;

    drop(client);
    server.shutdown();
}

#[test]
fn injected_panic_is_contained_and_worker_survives() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    let hdl = models::model("ref").unwrap().hdl;
    let kernel = kernels::kernels()[0];
    let mut client = Client::connect(addr).expect("connect");

    // A mid-compile panic (injected at the emit phase) must come back as
    // a structured `internal` error, not a dead connection.
    for phase in ["parse", "bind", "emit", "compact"] {
        let err = client
            .compile(
                &Model::Hdl(hdl),
                &CompileSpec::new(kernel.source, kernel.function).inject_panic(phase),
            )
            .expect_err("injected panic must fail the request");
        match &err {
            ServeError::Remote {
                kind,
                message,
                class,
            } => {
                assert_eq!(kind, "internal", "{err}");
                assert!(message.contains("injected panic"), "{message}");
                assert_eq!(class.as_deref(), Some("internal"), "{err}");
            }
            other => panic!("expected internal error, got {other}"),
        }
    }

    // The single worker survived all four panics: the same connection
    // compiles normally afterwards, byte-identical to a local compile.
    let target = Record::retarget(hdl, &RetargetOptions::default()).unwrap();
    let want = {
        let k = target
            .compile(&CompileRequest::new(kernel.source, kernel.function))
            .unwrap();
        target.listing(&k)
    };
    let got = client
        .compile(
            &Model::Hdl(hdl),
            &CompileSpec::new(kernel.source, kernel.function).listing(true),
        )
        .expect("worker serves normally after contained panics");
    assert_eq!(got.listing.as_deref(), Some(want.as_str()));

    // Poisoned sessions were discarded, never recycled into the pool.
    let stats = client.stats().expect("stats");
    let pools = stats.get("pools").expect("pools section");
    assert!(
        pools.get("dropped").and_then(Json::as_u64).unwrap() >= 4,
        "poisoned sessions must be dropped: {stats}"
    );

    drop(client);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_queued_connections() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    let hdl = models::model("ref").unwrap().hdl;
    let kernel = kernels::kernels()[0];

    // Client A occupies the single worker: one served request, then the
    // connection idles open (a worker stays on a connection until it
    // closes or shutdown begins).
    let mut held = Client::connect(addr).expect("connect A");
    held.compile(
        &Model::Hdl(hdl),
        &CompileSpec::new(kernel.source, kernel.function),
    )
    .expect("warm-up compile");

    // Client B is admitted and queued behind A, with a request already
    // pipelined; no worker will reach it until shutdown releases A.
    let mut queued = Client::connect(addr).expect("connect B");
    std::thread::sleep(std::time::Duration::from_millis(100));

    let shutdown = std::thread::spawn(move || server.shutdown());

    // The drain must still serve B's request rather than dropping the
    // queued connection on the floor.
    let got = queued
        .compile(
            &Model::Hdl(hdl),
            &CompileSpec::new(kernel.source, kernel.function),
        )
        .expect("queued connection is served during drain");
    assert!(got.code_size > 0);

    drop(queued);
    drop(held);
    shutdown.join().expect("shutdown thread");
}

#[test]
fn retry_policy_recovers_from_overload() {
    // Deterministic schedule: pure function of (seed, retry index),
    // step-bounded on both sides.
    let policy = RetryPolicy {
        max_attempts: 5,
        base_delay_ms: 8,
        max_delay_ms: 50,
        seed: 42,
    };
    for retry in 0..8 {
        let d = policy.backoff_ms(retry);
        assert_eq!(d, policy.backoff_ms(retry), "deterministic");
        let step = (8u64 << retry).min(50);
        assert!(d >= step / 2 && d <= step, "retry {retry}: {d} vs {step}");
    }

    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    let hdl = models::model("ref").unwrap().hdl;
    let kernel = kernels::kernels()[0];

    // Saturate: one connection holds the worker, one fills the queue.
    let mut worker_hog = Client::connect(addr).expect("connect hog");
    worker_hog
        .compile(
            &Model::Hdl(hdl),
            &CompileSpec::new(kernel.source, kernel.function),
        )
        .expect("hog compile");
    let queue_hog = Client::connect(addr).expect("connect queue hog");
    std::thread::sleep(std::time::Duration::from_millis(100));

    // A direct attempt is rejected at admission.
    let mut rejected = Client::connect(addr).expect("connect rejected");
    let err = rejected.stats().expect_err("queue is full");
    assert!(matches!(err, ServeError::Overloaded), "{err}");

    // With retry, the client rides out the overload: the saturating
    // connections are released during the backoff and a later attempt
    // lands.
    let mut hogs = Some((worker_hog, queue_hog));
    let mut attempts = 0u32;
    let summary = call_with_retry(addr, &policy, |client| {
        attempts += 1;
        if attempts == 2 {
            // Free the worker and the queue slot between attempts.
            hogs.take();
        }
        client.compile(
            &Model::Hdl(hdl),
            &CompileSpec::new(kernel.source, kernel.function),
        )
    })
    .expect("retry must eventually succeed");
    assert!(summary.code_size > 0);
    assert!(attempts >= 2, "first attempt must have been rejected");

    server.shutdown();
}

#[test]
fn deadlines_and_admission_control_reject_structurally() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    let hdl = models::model("ref").unwrap().hdl;
    let kernel = kernels::kernels()[0];

    let mut client = Client::connect(addr).expect("connect");

    // Zero budget: expires at the first phase boundary, long before
    // codegen; the error is structured, names a phase, and the
    // connection stays usable.
    let err = client
        .compile(
            &Model::Hdl(hdl),
            &CompileSpec::new(kernel.source, kernel.function).deadline_ms(0),
        )
        .expect_err("zero deadline must time out");
    match &err {
        ServeError::Timeout { phase, message } => {
            assert!(!phase.is_empty(), "{err}");
            assert!(message.contains("deadline"), "{message}");
        }
        other => panic!("expected timeout, got {other}"),
    }

    // A generous deadline sails through on the same connection.
    client
        .compile(
            &Model::Hdl(hdl),
            &CompileSpec::new(kernel.source, kernel.function).deadline_ms(60_000),
        )
        .expect("generous deadline compiles");

    // Unknown keys are structured errors too.
    let err = client
        .compile(
            &Model::Key("00000000deadbeef"),
            &CompileSpec::new(kernel.source, kernel.function),
        )
        .expect_err("unknown key");
    assert!(
        matches!(&err, ServeError::Remote { kind, .. } if kind == "unknown-key"),
        "{err}"
    );

    drop(client);
    server.shutdown();
}
