//! End-to-end service test: a real server on a loopback socket, eight
//! concurrent clients across two HDL models, exactly one retarget per
//! model (proved by the served counters), listings byte-identical to
//! local fresh compiles, structured timeouts, and admission control.

use record_core::{CompileRequest, Record, RetargetOptions};
use record_serve::{local_key, Client, CompileSpec, Json, Model, ServeError, Server, ServerConfig};
use record_targets::{kernels, models};

#[test]
fn eight_concurrent_clients_two_models_one_retarget_each() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();

    let model_names = ["ref", "tms320c25"];
    let picks: Vec<_> = kernels::kernels().into_iter().take(4).collect();

    // Local reference listings, compiled on fresh sessions: what the
    // server's pooled sessions must reproduce byte for byte.
    let mut expected: Vec<Vec<String>> = Vec::new();
    for name in model_names {
        let hdl = models::model(name).unwrap().hdl;
        let target = Record::retarget(hdl, &RetargetOptions::default()).unwrap();
        expected.push(
            picks
                .iter()
                .map(|k| {
                    let kernel = target
                        .compile(&CompileRequest::new(k.source, k.function))
                        .unwrap();
                    target.listing(&kernel)
                })
                .collect(),
        );
    }

    // Eight clients, four per model, all hammering the server at once.
    std::thread::scope(|scope| {
        for client_id in 0..8 {
            let model_idx = client_id % 2;
            let expected = &expected[model_idx];
            let picks = &picks;
            scope.spawn(move || {
                let hdl = models::model(model_names[model_idx]).unwrap().hdl;
                let mut client = Client::connect(addr).expect("connect");

                // Half the clients go through explicit retarget + key
                // addressing, half send inline HDL; both routes must
                // coalesce on the cache.
                let key_storage;
                let model = if client_id < 4 {
                    let summary = client.retarget(hdl).expect("retarget");
                    assert_eq!(summary.key, local_key(hdl), "client {client_id}");
                    key_storage = summary.key;
                    Model::Key(&key_storage)
                } else {
                    Model::Hdl(hdl)
                };

                for (kernel, want) in picks.iter().zip(expected) {
                    let got = client
                        .compile(
                            &model,
                            &CompileSpec::new(kernel.source, kernel.function).listing(true),
                        )
                        .unwrap_or_else(|e| panic!("client {client_id} {}: {e}", kernel.name));
                    assert_eq!(
                        got.listing.as_deref(),
                        Some(want.as_str()),
                        "client {client_id} {}: served listing differs from fresh local compile",
                        kernel.name
                    );
                }

                // And a batch on one warm session, same guarantee.
                let specs: Vec<_> = picks
                    .iter()
                    .map(|k| CompileSpec::new(k.source, k.function).listing(true))
                    .collect();
                let results = client.batch_compile(&model, &specs).expect("batch");
                for ((result, want), kernel) in results.iter().zip(expected).zip(picks.iter()) {
                    let got = result.as_ref().unwrap_or_else(|e| {
                        panic!("client {client_id} batch {}: {e}", kernel.name)
                    });
                    assert_eq!(
                        got.listing.as_deref(),
                        Some(want.as_str()),
                        "{}",
                        kernel.name
                    );
                }
            });
        }
    });

    // The cache retargeted each model exactly once, everything else hit.
    let mut client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("cache section");
    assert_eq!(
        cache.get("retargets").and_then(Json::as_u64),
        Some(2),
        "one retarget per model: {stats}"
    );
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(2));
    let hits = cache.get("hits").and_then(Json::as_u64).unwrap();
    let waits = cache.get("inflight_waits").and_then(Json::as_u64).unwrap();
    assert!(hits >= 8, "coalesced requests hit the cache: {stats}");
    let pools = stats.get("pools").expect("pools section");
    assert_eq!(pools.get("count").and_then(Json::as_u64), Some(2));
    assert!(
        pools.get("reused").and_then(Json::as_u64).unwrap() > 0,
        "warm sessions were reused: {stats}"
    );
    let _ = waits;

    drop(client);
    server.shutdown();
}

#[test]
fn deadlines_and_admission_control_reject_structurally() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    let hdl = models::model("ref").unwrap().hdl;
    let kernel = kernels::kernels()[0];

    let mut client = Client::connect(addr).expect("connect");

    // Zero budget: expires at the first phase boundary, long before
    // codegen; the error is structured, names a phase, and the
    // connection stays usable.
    let err = client
        .compile(
            &Model::Hdl(hdl),
            &CompileSpec::new(kernel.source, kernel.function).deadline_ms(0),
        )
        .expect_err("zero deadline must time out");
    match &err {
        ServeError::Timeout { phase, message } => {
            assert!(!phase.is_empty(), "{err}");
            assert!(message.contains("deadline"), "{message}");
        }
        other => panic!("expected timeout, got {other}"),
    }

    // A generous deadline sails through on the same connection.
    client
        .compile(
            &Model::Hdl(hdl),
            &CompileSpec::new(kernel.source, kernel.function).deadline_ms(60_000),
        )
        .expect("generous deadline compiles");

    // Unknown keys are structured errors too.
    let err = client
        .compile(
            &Model::Key("00000000deadbeef"),
            &CompileSpec::new(kernel.source, kernel.function),
        )
        .expect_err("unknown key");
    assert!(
        matches!(&err, ServeError::Remote { kind, .. } if kind == "unknown-key"),
        "{err}"
    );

    drop(client);
    server.shutdown();
}
