//! Cache-layer tests: retarget-once under concurrency, shared `Arc`
//! handout, LRU eviction order.

use record_core::RetargetOptions;
use record_serve::{model_key, TargetCache};
use record_targets::models;
use std::sync::Arc;

#[test]
fn concurrent_requests_retarget_once_and_share_the_artifact() {
    let cache = TargetCache::new(4, RetargetOptions::default());
    let hdl = models::model("ref").unwrap().hdl;
    const THREADS: usize = 8;

    let targets: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| scope.spawn(|| cache.get_or_retarget(hdl).unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Everyone got the same key and literally the same artifact.
    let (key0, first) = &targets[0];
    for (key, target) in &targets {
        assert_eq!(key, key0);
        assert!(Arc::ptr_eq(target, first), "one artifact, shared");
    }

    // The counters prove the retarget ran exactly once: one miss did the
    // work, every other thread was served from the ready entry (after
    // waiting behind the in-flight retarget, when it arrived early).
    let stats = cache.stats();
    assert_eq!(stats.retargets, 1, "{stats:?}");
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert_eq!(stats.hits, (THREADS - 1) as u64, "{stats:?}");
    assert!(stats.inflight_waits <= (THREADS - 1) as u64, "{stats:?}");
}

#[test]
fn failed_retargets_are_not_cached() {
    let cache = TargetCache::new(4, RetargetOptions::default());
    assert!(cache.get_or_retarget("processor syntax error {").is_err());
    let after_first = cache.stats().retargets;
    assert_eq!(after_first, 1);
    // The failure was not cached: a retry runs the retarget again.
    assert!(cache.get_or_retarget("processor syntax error {").is_err());
    assert_eq!(cache.stats().retargets, 2);
    assert!(cache.keys().is_empty());
}

#[test]
fn eviction_follows_least_recent_use() {
    let cache = TargetCache::new(2, RetargetOptions::default());
    let a = models::model("demo").unwrap().hdl;
    let b = models::model("manocpu").unwrap().hdl;
    let c = models::model("bass_boost").unwrap().hdl;
    let (ka, _) = cache.get_or_retarget(a).unwrap();
    let (kb, _) = cache.get_or_retarget(b).unwrap();
    assert_eq!(cache.keys(), vec![kb, ka], "most recently used first");

    // Touch `a` so `b` becomes the LRU victim.
    cache.get_or_retarget(a).unwrap();
    let (kc, _) = cache.get_or_retarget(c).unwrap();
    assert_eq!(cache.keys(), vec![kc, ka], "b was evicted");
    assert_eq!(cache.stats().evictions, 1);

    // The evicted model is gone from key-addressed lookup but comes back
    // (with a fresh retarget) through content addressing.
    assert!(cache.get(kb).is_none());
    let retargets_before = cache.stats().retargets;
    cache.get_or_retarget(b).unwrap();
    assert_eq!(cache.stats().retargets, retargets_before + 1);
}

#[test]
fn content_addressing_survives_reformatting() {
    let cache = TargetCache::new(2, RetargetOptions::default());
    let hdl = models::model("demo").unwrap().hdl;
    let reformatted: String = hdl
        .lines()
        .map(|l| format!("  {}\r\n", l.trim_end()))
        .collect();
    assert_eq!(model_key(hdl), model_key(&reformatted));
    let (k1, _) = cache.get_or_retarget(hdl).unwrap();
    let (k2, _) = cache.get_or_retarget(&reformatted).unwrap();
    assert_eq!(k1, k2);
    assert_eq!(cache.stats().retargets, 1);
}
