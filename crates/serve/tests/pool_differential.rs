//! Differential guarantee of the session pool: a warmed (reset) session
//! produces byte-identical output to a fresh session, for every model ×
//! kernel pair — successes compare listings and code size, failures
//! compare the full structured error.

use record_core::{CompileRequest, Record, RetargetOptions};
use record_serve::SessionPool;
use record_targets::{kernels, models};
use std::sync::Arc;

#[test]
fn pooled_sessions_match_fresh_sessions_everywhere() {
    for model in models::models() {
        let target = Arc::new(
            Record::retarget(model.hdl, &RetargetOptions::default())
                .unwrap_or_else(|e| panic!("{} retargets: {e}", model.name)),
        );
        let pool = SessionPool::new(Arc::clone(&target), 2);

        // Warm the pool: one checkout compiles something and goes back.
        {
            let mut warm = pool.checkout();
            let first = kernels::kernels()[0];
            let _ = warm.compile(&CompileRequest::new(first.source, first.function));
        }
        assert_eq!(pool.idle_len(), 1, "{}: pages returned", model.name);

        for kernel in kernels::kernels() {
            let request = CompileRequest::new(kernel.source, kernel.function);
            let fresh = target.session().compile(&request);
            let pooled = {
                let mut session = pool.checkout();
                session.compile(&request)
            };
            match (&fresh, &pooled) {
                (Ok(f), Ok(p)) => {
                    assert_eq!(
                        f.ops, p.ops,
                        "{}/{}: pooled RT ops differ",
                        model.name, kernel.name
                    );
                    assert_eq!(
                        f.schedule, p.schedule,
                        "{}/{}: pooled schedule differs",
                        model.name, kernel.name
                    );
                    assert_eq!(
                        target.listing(f),
                        target.listing(p),
                        "{}/{}: pooled listing differs",
                        model.name,
                        kernel.name
                    );
                }
                (Err(f), Err(p)) => {
                    assert_eq!(f, p, "{}/{}: pooled error differs", model.name, kernel.name)
                }
                _ => panic!(
                    "{}/{}: fresh {:?} but pooled {:?}",
                    model.name,
                    kernel.name,
                    fresh.as_ref().map(|_| "ok"),
                    pooled.as_ref().map(|_| "ok"),
                ),
            }
        }

        let stats = pool.stats();
        assert!(stats.reused > 0, "{}: pool reuse happened", model.name);
    }
}

#[test]
fn mid_session_reset_replays_identical_output() {
    let model = models::model("tms320c25").unwrap();
    let target = Record::retarget(model.hdl, &RetargetOptions::default()).unwrap();
    let kernels = kernels::kernels();
    let reference: Vec<_> = kernels
        .iter()
        .map(|k| {
            target
                .session()
                .compile(&CompileRequest::new(k.source, k.function))
                .unwrap()
        })
        .collect();
    // One session, reset between kernels: every compile must replay the
    // fresh-session output exactly.
    let mut session = target.session();
    for (kernel, fresh) in kernels.iter().zip(&reference) {
        session.reset();
        let again = session
            .compile(&CompileRequest::new(kernel.source, kernel.function))
            .unwrap();
        assert_eq!(again.ops, fresh.ops, "{}", kernel.name);
        assert_eq!(again.schedule, fresh.schedule, "{}", kernel.name);
    }
}
