//! A blocking client for the compile service.
//!
//! One TCP connection, one in-flight request at a time (the protocol is
//! strictly request/response in order).  Typed wrappers cover the wire
//! operations; [`Client::request`] sends a raw [`Json`] line for anything
//! else.  Every response carries the server-assigned `request_id`
//! (surfaced on the summaries) for correlating with the server's access
//! log and flight recorder.
//!
//! Admission rejections and transport failures close the connection, so
//! retrying means reconnecting: [`call_with_retry`] runs an operation
//! against a fresh connection per attempt, backing off exponentially
//! between attempts with deterministic jitter ([`RetryPolicy`]).

use crate::digest::render_key;
use crate::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures: transport, framing, or structured errors
/// reported by the server.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure (also raised when the server closes mid-request).
    Io(std::io::Error),
    /// The response line was not valid protocol JSON.
    Protocol(String),
    /// Admission control rejected the connection.
    Overloaded,
    /// The request's deadline expired server-side; `phase` names the last
    /// completed compile phase.
    Timeout {
        /// Last completed phase.
        phase: String,
        /// Human-readable description.
        message: String,
    },
    /// Any other structured server error (`kind` from the wire:
    /// `unknown-key`, `pipeline`, `compile`, `protocol`).
    Remote {
        /// The error kind slug.
        kind: String,
        /// Human-readable description.
        message: String,
        /// Failure class for `compile` errors (e.g. `selector-gap`).
        class: Option<String>,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport: {e}"),
            ServeError::Protocol(m) => write!(f, "bad response: {m}"),
            ServeError::Overloaded => write!(f, "server overloaded"),
            ServeError::Timeout { phase, message } => {
                write!(f, "deadline exceeded after `{phase}`: {message}")
            }
            ServeError::Remote { kind, message, .. } => write!(f, "{kind}: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl ServeError {
    /// Whether a retry on a fresh connection could plausibly succeed:
    /// admission rejections (`overloaded`) and transport failures.
    /// Structured server errors (`compile`, `timeout`, `internal`, ...)
    /// are deterministic and not worth retrying.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServeError::Overloaded | ServeError::Io(_))
    }
}

/// Bounded exponential backoff with deterministic jitter.
///
/// The delay before retry `r` (0-based) is drawn from
/// `[step/2, step]` where `step = min(base_delay_ms << r, max_delay_ms)`;
/// the draw is a pure function of `seed` and `r` (SplitMix64), so a given
/// policy always produces the same schedule — reproducible tests, no
/// cross-process `Instant`/entropy dependence, and distinct seeds still
/// de-synchronize clients that got rejected together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff step before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Backoff step ceiling, in milliseconds.
    pub max_delay_ms: u64,
    /// Jitter seed; vary per client to spread synchronized retries.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 10,
            max_delay_ms: 250,
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `retry` (0-based), in milliseconds.
    /// Deterministic: same policy, same retry, same delay.
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        let step = self
            .base_delay_ms
            .saturating_mul(1u64 << retry.min(20))
            .min(self.max_delay_ms);
        let jitter = splitmix64(self.seed.wrapping_add(u64::from(retry)));
        step / 2 + jitter % (step / 2 + 1)
    }
}

/// SplitMix64: a tiny, well-mixed pure PRNG step (jitter source).
fn splitmix64(index: u64) -> u64 {
    let mut z = index.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `op` against a fresh connection, retrying (with the policy's
/// backoff) on [retryable](ServeError::is_retryable) failures.
///
/// Each attempt reconnects: overloaded servers reject at admission and
/// close the connection, so the old socket is useless by the time a
/// retry makes sense.
///
/// # Errors
///
/// The last attempt's error once `max_attempts` is exhausted, or the
/// first non-retryable error.
pub fn call_with_retry<T>(
    addr: impl ToSocketAddrs,
    policy: &RetryPolicy,
    mut op: impl FnMut(&mut Client) -> Result<T, ServeError>,
) -> Result<T, ServeError> {
    let mut retry = 0;
    loop {
        let result = Client::connect(&addr)
            .map_err(ServeError::Io)
            .and_then(|mut client| op(&mut client));
        match result {
            Ok(value) => return Ok(value),
            Err(e) if e.is_retryable() && retry + 1 < policy.max_attempts.max(1) => {
                std::thread::sleep(std::time::Duration::from_millis(policy.backoff_ms(retry)));
                retry += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Result of a `retarget` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetargetSummary {
    /// Content key for later `key`-addressed requests.
    pub key: String,
    /// Processor name from the model.
    pub processor: String,
    /// Grammar rule count.
    pub rules: u64,
    /// Server-assigned correlation id of this request.
    pub request_id: Option<String>,
}

/// Result of a successful `compile` request (or batch item).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileSummary {
    /// Content key of the artifact that compiled this kernel.
    pub key: String,
    /// Vertical RT operation count.
    pub ops: u64,
    /// Code size in instruction words.
    pub code_size: u64,
    /// Assembly listing, when the request asked for one.
    pub listing: Option<String>,
    /// Server-assigned correlation id of this request (absent on batch
    /// items — the id belongs to the batch response line).
    pub request_id: Option<String>,
}

/// How a compile request names its processor model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Model<'a> {
    /// Inline HDL (the server retargets on a miss).
    Hdl(&'a str),
    /// A rendered content key from a [`RetargetSummary`].
    Key(&'a str),
}

impl Model<'_> {
    fn field(&self) -> (&'static str, Json) {
        match self {
            Model::Hdl(hdl) => ("hdl", Json::str(*hdl)),
            Model::Key(key) => ("key", Json::str(*key)),
        }
    }
}

/// One kernel to compile, builder-style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileSpec<'a> {
    source: &'a str,
    function: &'a str,
    deadline_ms: Option<u64>,
    listing: bool,
    baseline: bool,
    inject_panic: Option<&'a str>,
}

impl<'a> CompileSpec<'a> {
    /// Compile `function` of `source` under default options.
    pub fn new(source: &'a str, function: &'a str) -> CompileSpec<'a> {
        CompileSpec {
            source,
            function,
            deadline_ms: None,
            listing: false,
            baseline: false,
            inject_panic: None,
        }
    }

    /// Sets a per-request deadline in milliseconds.
    pub fn deadline_ms(mut self, ms: u64) -> CompileSpec<'a> {
        self.deadline_ms = Some(ms);
        self
    }

    /// Requests the assembly listing in the response.
    pub fn listing(mut self, on: bool) -> CompileSpec<'a> {
        self.listing = on;
        self
    }

    /// Selects the naive baseline compiler.
    pub fn baseline(mut self, on: bool) -> CompileSpec<'a> {
        self.baseline = on;
        self
    }

    /// Fault injection: asks the server to panic on entering the named
    /// compile phase (testing/chaos only; proves panic containment).
    pub fn inject_panic(mut self, phase: &'a str) -> CompileSpec<'a> {
        self.inject_panic = Some(phase);
        self
    }

    fn fields(&self) -> Vec<(String, Json)> {
        let mut fields = vec![
            ("source".to_owned(), Json::str(self.source)),
            ("function".to_owned(), Json::str(self.function)),
        ];
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_owned(), Json::num(ms)));
        }
        if self.listing {
            fields.push(("listing".to_owned(), Json::Bool(true)));
        }
        let mut options = Vec::new();
        if self.baseline {
            options.push(("baseline", Json::Bool(true)));
        }
        if let Some(phase) = self.inject_panic {
            options.push(("inject_panic", Json::str(phase)));
        }
        if !options.is_empty() {
            fields.push(("options".to_owned(), Json::obj(options)));
        }
        fields
    }
}

/// A blocking connection to a compile server.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Sends one raw request line and returns the (possibly `ok:false`)
    /// response object; structured server errors become [`ServeError`]s.
    ///
    /// # Errors
    ///
    /// Transport, framing and server-reported errors.
    pub fn request(&mut self, request: &Json) -> Result<Json, ServeError> {
        self.writer.write_all(format!("{request}\n").as_bytes())?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let response = json::parse(line.trim_end()).map_err(ServeError::Protocol)?;
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(response),
            Some(false) => Err(remote_error(&response)),
            None => Err(ServeError::Protocol("response missing `ok`".to_owned())),
        }
    }

    /// Retargets `hdl` (or hits the server's cache).
    ///
    /// # Errors
    ///
    /// Transport and server errors (`pipeline` for retarget failures).
    pub fn retarget(&mut self, hdl: &str) -> Result<RetargetSummary, ServeError> {
        let response = self.request(&Json::obj(vec![
            ("op", Json::str("retarget")),
            ("hdl", Json::str(hdl)),
        ]))?;
        Ok(RetargetSummary {
            key: str_field(&response, "key")?,
            processor: str_field(&response, "processor")?,
            rules: num_field(&response, "rules")?,
            request_id: opt_str_field(&response, "request_id"),
        })
    }

    /// Compiles one kernel.
    ///
    /// # Errors
    ///
    /// Transport and server errors; deadline expiry surfaces as
    /// [`ServeError::Timeout`].
    pub fn compile(
        &mut self,
        model: &Model<'_>,
        spec: &CompileSpec<'_>,
    ) -> Result<CompileSummary, ServeError> {
        let mut fields = vec![("op".to_owned(), Json::str("compile"))];
        let (k, v) = model.field();
        fields.push((k.to_owned(), v));
        fields.extend(spec.fields());
        let response = self.request(&Json::Obj(fields))?;
        compile_summary(&response)
    }

    /// Compiles several kernels on one warm server-side session; per-item
    /// failures come back as per-item `Err`s, not a batch failure.
    ///
    /// # Errors
    ///
    /// Transport errors and batch-level server errors (`unknown-key`,
    /// `pipeline`, `overloaded`).
    pub fn batch_compile(
        &mut self,
        model: &Model<'_>,
        specs: &[CompileSpec<'_>],
    ) -> Result<Vec<Result<CompileSummary, ServeError>>, ServeError> {
        let mut fields = vec![("op".to_owned(), Json::str("batch-compile"))];
        let (k, v) = model.field();
        fields.push((k.to_owned(), v));
        fields.push((
            "items".to_owned(),
            Json::Arr(specs.iter().map(|s| Json::Obj(s.fields())).collect()),
        ));
        let response = self.request(&Json::Obj(fields))?;
        let results = response
            .get("results")
            .and_then(Json::as_arr)
            .ok_or_else(|| ServeError::Protocol("batch response missing `results`".to_owned()))?;
        Ok(results
            .iter()
            .map(|item| match item.get("ok").and_then(Json::as_bool) {
                Some(true) => compile_summary(item),
                _ => Err(remote_error(item)),
            })
            .collect())
    }

    /// Fetches the server's cache/pool/request counters.
    ///
    /// # Errors
    ///
    /// Transport and framing errors.
    pub fn stats(&mut self) -> Result<Json, ServeError> {
        self.request(&Json::obj(vec![("op", Json::str("stats"))]))
    }

    /// Dumps the server's slow-request flight recorder: every retained
    /// trace with its request id, function and latency, oldest first.
    ///
    /// # Errors
    ///
    /// Transport and framing errors, and `no-recorder` when the server
    /// runs with the flight recorder disabled.
    pub fn debug_traces(&mut self) -> Result<Vec<crate::SlowTrace>, ServeError> {
        let response = self.request(&Json::obj(vec![("op", Json::str("debug-traces"))]))?;
        let traces = response
            .get("traces")
            .and_then(Json::as_arr)
            .ok_or_else(|| ServeError::Protocol("response missing `traces`".to_owned()))?;
        traces
            .iter()
            .map(|t| {
                Ok(crate::SlowTrace {
                    request_id: str_field(t, "request_id")?,
                    function: str_field(t, "function")?,
                    latency_ns: num_field(t, "latency_ns")?,
                    chrome_json: str_field(t, "trace")?,
                })
            })
            .collect()
    }
}

fn str_field(v: &Json, key: &str) -> Result<String, ServeError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| ServeError::Protocol(format!("response missing `{key}`")))
}

fn num_field(v: &Json, key: &str) -> Result<u64, ServeError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ServeError::Protocol(format!("response missing `{key}`")))
}

fn opt_str_field(v: &Json, key: &str) -> Option<String> {
    v.get(key).and_then(Json::as_str).map(str::to_owned)
}

fn compile_summary(response: &Json) -> Result<CompileSummary, ServeError> {
    Ok(CompileSummary {
        key: str_field(response, "key")?,
        ops: num_field(response, "ops")?,
        code_size: num_field(response, "code_size")?,
        listing: response
            .get("listing")
            .and_then(Json::as_str)
            .map(str::to_owned),
        request_id: opt_str_field(response, "request_id"),
    })
}

fn remote_error(response: &Json) -> ServeError {
    let error = response.get("error");
    let field = |key: &str| {
        error
            .and_then(|e| e.get(key))
            .and_then(Json::as_str)
            .map(str::to_owned)
    };
    let kind = field("kind").unwrap_or_else(|| "protocol".to_owned());
    let message = field("message").unwrap_or_default();
    match kind.as_str() {
        "overloaded" => ServeError::Overloaded,
        "timeout" => ServeError::Timeout {
            phase: field("phase").unwrap_or_default(),
            message,
        },
        _ => ServeError::Remote {
            kind,
            message,
            class: field("class"),
        },
    }
}

/// Convenience: the rendered content key for `hdl`, computed locally
/// (identical to the server's, same normalization and digest).
pub fn local_key(hdl: &str) -> String {
    render_key(crate::digest::model_key(hdl))
}
