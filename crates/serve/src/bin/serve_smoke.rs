//! CI smoke test for the compile service: starts a server on a loopback
//! socket, retargets, batch-compiles on a warm session, checks cache
//! hits, proves a worker survives an injected mid-compile panic, drives
//! a deliberately overloaded request, rides out that overload with the
//! client retry policy, scrapes `GET /metrics` while eight concurrent
//! clients compile (validating the Prometheus exposition shape), and
//! dumps the slow-request flight recorder through the `debug-traces`
//! op.  Exits non-zero with a message on any failure.

use record_core::validate_chrome_json_shape;
use record_serve::{
    call_with_retry, Client, CompileSpec, Json, Model, RetryPolicy, ServeError, Server,
    ServerConfig,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

// A minimal accumulator machine (same shape as record-core's unit-test
// model); the smoke test is about the service plumbing, not codegen.
const TINY: &str = r#"
    module Acc {
        in d: bit(8);
        ctrl en: bit(1);
        out q: bit(8);
        register q = d when en == 1;
    }
    module Ram {
        in addr: bit(3);
        in din: bit(8);
        ctrl w: bit(1);
        out dout: bit(8);
        memory cells[8]: bit(8);
        read dout = cells[addr];
        write cells[addr] = din when w == 1;
    }
    processor Tiny {
        instruction word: bit(8);
        parts { acc: Acc; ram: Ram; }
        connections {
            acc.d = ram.dout;
            acc.en = I[7];
            ram.addr = I[2:0];
            ram.din = acc.q;
            ram.w = I[6];
        }
    }
"#;

/// Kernels the concurrent clients cycle through.
const SOURCES: [(&str, &str); 2] = [
    ("int x, y; void f() { x = y; }", "f"),
    ("int a, b, c; void g() { a = b; c = a; }", "g"),
];

fn main() {
    // The fault-injection check below panics *on purpose* inside a
    // contained worker; keep that expected unwind out of the CI log
    // while still printing anything unexpected.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("injected panic"));
        if !injected {
            default_hook(info);
        }
    }));

    // Metrics sidecar on, slow threshold zero so *every* compile lands in
    // the flight recorder, and enough workers/queue for the eight
    // concurrent scrape-phase clients plus the main connection.
    let config = ServerConfig {
        workers: 12,
        queue_depth: 16,
        metrics_addr: Some("127.0.0.1:0".to_owned()),
        slow_threshold_ms: Some(0),
        trace_ring: 32,
        ..ServerConfig::default()
    };
    let handle = Server::start("127.0.0.1:0", config).expect("bind loopback");
    let addr = handle.addr();
    let metrics_addr = handle.metrics_addr().expect("metrics listener is on");
    let mut client = Client::connect(addr).expect("connect");

    // Retarget, then again: second one must be a cache hit (same key).
    let first = client.retarget(TINY).expect("retarget");
    let second = client.retarget(TINY).expect("retarget again");
    assert_eq!(first.key, second.key, "content key is stable");
    assert_eq!(first.processor, "Tiny");
    // Every wire response carries a request id, and ids never repeat.
    let id_a = first.request_id.clone().expect("retarget request id");
    let id_b = second.request_id.clone().expect("retarget request id");
    assert_ne!(id_a, id_b, "request ids are unique");

    // Batch compile by key on one warm session.
    let specs = [
        CompileSpec::new(SOURCES[0].0, SOURCES[0].1).listing(true),
        CompileSpec::new(SOURCES[1].0, SOURCES[1].1),
        CompileSpec::new("int x; void bad() { x = ; }", "bad"),
    ];
    let results = client
        .batch_compile(&Model::Key(&first.key), &specs)
        .expect("batch");
    assert_eq!(results.len(), 3);
    let ok = results[0].as_ref().expect("first kernel compiles");
    assert!(ok.code_size > 0 && ok.listing.is_some());
    assert!(results[1].is_ok(), "second kernel compiles");
    assert!(
        matches!(&results[2], Err(ServeError::Remote { kind, .. }) if kind == "compile"),
        "syntax error is a structured compile failure"
    );

    // A zero deadline must come back as a structured timeout.
    let err = client
        .compile(
            &Model::Key(&first.key),
            &CompileSpec::new(SOURCES[0].0, SOURCES[0].1).deadline_ms(0),
        )
        .expect_err("zero deadline");
    assert!(matches!(err, ServeError::Timeout { .. }), "{err}");

    // An injected mid-compile panic must surface as a structured
    // `internal` error on the wire — and the worker must survive it: the
    // same connection compiles normally right after.
    let err = client
        .compile(
            &Model::Key(&first.key),
            &CompileSpec::new(SOURCES[0].0, SOURCES[0].1).inject_panic("emit"),
        )
        .expect_err("injected panic");
    assert!(
        matches!(&err, ServeError::Remote { kind, message, .. }
            if kind == "internal" && message.contains("injected panic")),
        "expected structured internal error, got: {err}"
    );
    let ok = client
        .compile(
            &Model::Key(&first.key),
            &CompileSpec::new(SOURCES[0].0, SOURCES[0].1),
        )
        .expect("worker serves normally after a contained panic");
    assert!(ok.code_size > 0);
    assert!(ok.request_id.is_some(), "compile summary carries its id");

    // Stats prove the cache coalesced: one retarget, several hits.
    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("cache section");
    assert_eq!(cache.get("retargets").and_then(Json::as_u64), Some(1));
    assert!(cache.get("hits").and_then(Json::as_u64).unwrap_or(0) >= 2);
    assert!(
        stats.get("request_id").and_then(Json::as_str).is_some(),
        "stats response carries a request id: {stats}"
    );

    metrics_under_load_check(addr, metrics_addr, &first.key);
    debug_traces_check(&mut client);

    drop(client);
    overload_check();
    handle.shutdown();
    println!("serve smoke OK");
}

/// Scrapes `/metrics` repeatedly while eight concurrent clients compile,
/// validating the exposition shape every time, then checks the final
/// counter values against what the load must have produced.
fn metrics_under_load_check(addr: SocketAddr, metrics_addr: SocketAddr, key: &str) {
    const CLIENTS: usize = 8;
    const COMPILES_PER_CLIENT: usize = 6;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let key = key.to_owned();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("scrape-phase connect");
                for i in 0..COMPILES_PER_CLIENT {
                    let (source, function) = SOURCES[(c + i) % SOURCES.len()];
                    let ok = client
                        .compile(&Model::Key(&key), &CompileSpec::new(source, function))
                        .expect("scrape-phase compile");
                    assert!(ok.code_size > 0);
                }
            })
        })
        .collect();

    // The scrape endpoint must stay valid while every worker is busy.
    for _ in 0..5 {
        validate_exposition(&scrape_metrics(metrics_addr));
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    for worker in workers {
        worker.join().expect("scrape-phase client");
    }

    // Final scrape: the counters reflect the load that just ran.
    let text = scrape_metrics(metrics_addr);
    validate_exposition(&text);
    let served = sample_value(&text, "record_requests_served_total ");
    assert!(
        served >= (CLIENTS * COMPILES_PER_CLIENT) as i64,
        "served {served} requests"
    );
    assert!(
        sample_value(&text, "record_cache_hits_total ") >= CLIENTS as i64,
        "concurrent compiles by key must hit the cache"
    );
    assert!(
        sample_value(&text, "record_cache_retargets_total ") == 1,
        "still exactly one retarget"
    );
    assert!(
        sample_value(&text, "record_slow_traces_total ") >= 1,
        "zero threshold must have recorded slow traces"
    );
    assert!(
        text.contains("record_failures_total{class="),
        "the syntax-error compile must show up as a failure class:\n{text}"
    );
    assert!(
        sample_value(&text, "record_request_latency_ns_count ") >= served,
        "every served request is one latency observation"
    );
}

/// One plain-HTTP `GET /metrics` against the sidecar listener; returns
/// the exposition body after checking status and content type.
fn scrape_metrics(metrics_addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(metrics_addr).expect("connect metrics");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n")
        .expect("write metrics request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read metrics response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("HTTP header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "metrics status: {head}");
    assert!(
        head.to_ascii_lowercase()
            .contains("text/plain; version=0.0.4"),
        "exposition content type: {head}"
    );
    body.to_owned()
}

/// Structural validation of the Prometheus text exposition: every sample
/// belongs to a declared family (HELP + TYPE, in that order), histogram
/// series are cumulative and end in `le="+Inf"`, and `+Inf` always
/// equals the `_count` sample of the same series.
fn validate_exposition(text: &str) {
    let mut helped: Vec<&str> = Vec::new();
    let mut types: HashMap<&str, &str> = HashMap::new();
    // series key (name + labels minus `le`) -> (last cumulative, +Inf).
    let mut buckets: HashMap<String, (i64, Option<i64>)> = HashMap::new();
    let mut counts: HashMap<String, i64> = HashMap::new();

    for line in text.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            helped.push(rest.split(' ').next().expect("HELP has a name"));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("TYPE has a name");
            let kind = parts.next().expect("TYPE has a kind");
            assert!(helped.contains(&name), "TYPE before HELP: {line}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE: {line}"
            );
            types.insert(name, kind);
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let value: i64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value: {line}"));
        let name = series.split('{').next().unwrap();
        if types.contains_key(name) {
            continue; // plain counter / gauge / family sample
        }
        // Histogram-suffixed sample: must resolve to a histogram family.
        let (base, suffix) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| name.strip_suffix(s).map(|b| (b, *s)))
            .unwrap_or_else(|| panic!("sample of undeclared family: {line}"));
        assert_eq!(
            types.get(base).copied(),
            Some("histogram"),
            "suffixed sample of a non-histogram family: {line}"
        );
        match suffix {
            "_bucket" => {
                let labels = series
                    .strip_prefix(name)
                    .unwrap()
                    .trim_start_matches('{')
                    .trim_end_matches('}');
                let (rest, le) = match labels.split_once("le=\"") {
                    Some((prefix, le)) => (
                        prefix.trim_end_matches(','),
                        le.trim_end_matches('"').to_owned(),
                    ),
                    None => panic!("bucket without le: {line}"),
                };
                let series_key = format!("{base}{{{rest}}}");
                let entry = buckets.entry(series_key).or_insert((0, None));
                assert!(
                    entry.1.is_none(),
                    "bucket after le=\"+Inf\" in {base}: {line}"
                );
                assert!(
                    value >= entry.0,
                    "non-cumulative bucket in {base}: {line} after {}",
                    entry.0
                );
                entry.0 = value;
                if le == "+Inf" {
                    entry.1 = Some(value);
                }
            }
            "_count" => {
                let labels = series
                    .strip_prefix(name)
                    .unwrap()
                    .trim_start_matches('{')
                    .trim_end_matches('}');
                counts.insert(format!("{base}{{{labels}}}"), value);
            }
            _ => {} // `_sum`: any integer is fine
        }
    }

    for (series, (_, inf)) in &buckets {
        let inf = inf.unwrap_or_else(|| panic!("{series} has no le=\"+Inf\" bucket"));
        assert_eq!(
            counts.get(series).copied(),
            Some(inf),
            "{series}: +Inf bucket disagrees with _count"
        );
    }

    // The full serving-layer schema is present regardless of load.
    for name in [
        "record_cache_hits_total",
        "record_cache_misses_total",
        "record_cache_retargets_total",
        "record_cache_inflight_waits_total",
        "record_cache_evictions_total",
        "record_pool_sessions_created_total",
        "record_pool_sessions_reused_total",
        "record_pool_sessions_returned_total",
        "record_pool_sessions_dropped_total",
        "record_requests_served_total",
        "record_requests_rejected_total",
        "record_slow_traces_total",
        "record_failures_total",
        "record_cache_entries",
        "record_pools",
        "record_queue_depth",
        "record_inflight_requests",
        "record_request_latency_ns",
        "record_compile_phase_latency_ns",
        "record_retarget_phase_latency_ns",
    ] {
        assert!(types.contains_key(name), "family `{name}` missing");
    }
}

/// Reads the value of an unlabeled sample line (`prefix` includes the
/// trailing space, so `foo ` cannot match `foo_bar `).
fn sample_value(text: &str, prefix: &str) -> i64 {
    text.lines()
        .find_map(|l| l.strip_prefix(prefix))
        .unwrap_or_else(|| panic!("no sample `{prefix}`"))
        .parse()
        .unwrap_or_else(|_| panic!("bad sample `{prefix}`"))
}

/// Dumps the flight recorder over the wire: with a zero slow threshold
/// every compile so far was captured, so the ring must hold well-formed
/// Chrome traces attributed to real request ids.
fn debug_traces_check(client: &mut Client) {
    let traces = client.debug_traces().expect("debug-traces");
    assert!(!traces.is_empty(), "zero threshold but empty recorder");
    assert!(traces.len() <= 32, "ring exceeded its bound");
    for trace in &traces {
        assert_eq!(trace.request_id.len(), 16, "id: {}", trace.request_id);
        assert!(
            trace.request_id.chars().all(|c| c.is_ascii_hexdigit()),
            "id: {}",
            trace.request_id
        );
        assert!(!trace.function.is_empty(), "trace has its function");
        validate_chrome_json_shape(&trace.chrome_json)
            .unwrap_or_else(|e| panic!("slow trace for {}: {e}", trace.function));
    }
}

/// Drives a tiny server (1 worker, queue depth 1) into overload: one
/// connection parks the worker, one fills the queue, the third must be
/// rejected with an `overloaded` line — which still carries a request
/// id, so rejected calls stay attributable in the access log.
fn overload_check() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let handle = Server::start("127.0.0.1:0", config).expect("bind loopback");
    let addr = handle.addr();

    // Park the single worker: connect and send nothing (the worker blocks
    // reading the first request line).
    let parked = TcpStream::connect(addr).expect("park worker");
    std::thread::sleep(std::time::Duration::from_millis(100));
    // Fill the queue.
    let queued = TcpStream::connect(addr).expect("fill queue");
    std::thread::sleep(std::time::Duration::from_millis(100));

    // This one must be rejected at admission.
    let mut rejected = TcpStream::connect(addr).expect("third connection");
    rejected
        .write_all(b"{\"op\":\"stats\"}\n")
        .expect("write on rejected connection");
    let mut line = String::new();
    BufReader::new(&rejected)
        .read_line(&mut line)
        .expect("read rejection");
    assert!(
        line.contains("overloaded"),
        "expected overloaded rejection, got: {line}"
    );
    assert!(
        line.contains("request_id"),
        "rejection must carry a request id, got: {line}"
    );

    // The retry policy rides out the overload: the parked connections
    // are released during the first backoff, so a later attempt lands.
    let mut parked = Some((parked, queued));
    let mut attempts = 0u32;
    let policy = RetryPolicy {
        max_attempts: 5,
        base_delay_ms: 10,
        max_delay_ms: 100,
        ..RetryPolicy::default()
    };
    let stats = call_with_retry(addr, &policy, |client| {
        attempts += 1;
        if attempts == 2 {
            // Free the worker and the queue slot between attempts.
            parked.take();
        }
        client.stats()
    })
    .expect("retry must recover once the overload clears");
    assert!(attempts >= 2, "first attempt must have been rejected");
    assert!(stats.get("server").is_some(), "stats response: {stats}");

    handle.shutdown();
}
