//! CI smoke test for the compile service: starts a server on a loopback
//! socket, retargets, batch-compiles on a warm session, checks cache
//! hits, proves a worker survives an injected mid-compile panic, drives
//! a deliberately overloaded request, and rides out that overload with
//! the client retry policy.  Exits non-zero with a message on any
//! failure.

use record_serve::{
    call_with_retry, Client, CompileSpec, Json, Model, RetryPolicy, ServeError, Server,
    ServerConfig,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

// A minimal accumulator machine (same shape as record-core's unit-test
// model); the smoke test is about the service plumbing, not codegen.
const TINY: &str = r#"
    module Acc {
        in d: bit(8);
        ctrl en: bit(1);
        out q: bit(8);
        register q = d when en == 1;
    }
    module Ram {
        in addr: bit(3);
        in din: bit(8);
        ctrl w: bit(1);
        out dout: bit(8);
        memory cells[8]: bit(8);
        read dout = cells[addr];
        write cells[addr] = din when w == 1;
    }
    processor Tiny {
        instruction word: bit(8);
        parts { acc: Acc; ram: Ram; }
        connections {
            acc.d = ram.dout;
            acc.en = I[7];
            ram.addr = I[2:0];
            ram.din = acc.q;
            ram.w = I[6];
        }
    }
"#;

fn main() {
    // The fault-injection check below panics *on purpose* inside a
    // contained worker; keep that expected unwind out of the CI log
    // while still printing anything unexpected.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("injected panic"));
        if !injected {
            default_hook(info);
        }
    }));

    let handle = Server::start("127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");

    // Retarget, then again: second one must be a cache hit (same key).
    let first = client.retarget(TINY).expect("retarget");
    let second = client.retarget(TINY).expect("retarget again");
    assert_eq!(first.key, second.key, "content key is stable");
    assert_eq!(first.processor, "Tiny");

    // Batch compile by key on one warm session.
    let specs = [
        CompileSpec::new("int x, y; void f() { x = y; }", "f").listing(true),
        CompileSpec::new("int a, b, c; void g() { a = b; c = a; }", "g"),
        CompileSpec::new("int x; void bad() { x = ; }", "bad"),
    ];
    let results = client
        .batch_compile(&Model::Key(&first.key), &specs)
        .expect("batch");
    assert_eq!(results.len(), 3);
    let ok = results[0].as_ref().expect("first kernel compiles");
    assert!(ok.code_size > 0 && ok.listing.is_some());
    assert!(results[1].is_ok(), "second kernel compiles");
    assert!(
        matches!(&results[2], Err(ServeError::Remote { kind, .. }) if kind == "compile"),
        "syntax error is a structured compile failure"
    );

    // A zero deadline must come back as a structured timeout.
    let err = client
        .compile(
            &Model::Key(&first.key),
            &CompileSpec::new("int x, y; void f() { x = y; }", "f").deadline_ms(0),
        )
        .expect_err("zero deadline");
    assert!(matches!(err, ServeError::Timeout { .. }), "{err}");

    // An injected mid-compile panic must surface as a structured
    // `internal` error on the wire — and the worker must survive it: the
    // same connection compiles normally right after.
    let err = client
        .compile(
            &Model::Key(&first.key),
            &CompileSpec::new("int x, y; void f() { x = y; }", "f").inject_panic("emit"),
        )
        .expect_err("injected panic");
    assert!(
        matches!(&err, ServeError::Remote { kind, message, .. }
            if kind == "internal" && message.contains("injected panic")),
        "expected structured internal error, got: {err}"
    );
    let ok = client
        .compile(
            &Model::Key(&first.key),
            &CompileSpec::new("int x, y; void f() { x = y; }", "f"),
        )
        .expect("worker serves normally after a contained panic");
    assert!(ok.code_size > 0);

    // Stats prove the cache coalesced: one retarget, several hits.
    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("cache section");
    assert_eq!(cache.get("retargets").and_then(Json::as_u64), Some(1));
    assert!(cache.get("hits").and_then(Json::as_u64).unwrap_or(0) >= 2);

    drop(client);
    overload_check();
    handle.shutdown();
    println!("serve smoke OK");
}

/// Drives a tiny server (1 worker, queue depth 1) into overload: one
/// connection parks the worker, one fills the queue, the third must be
/// rejected with an `overloaded` line.
fn overload_check() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let handle = Server::start("127.0.0.1:0", config).expect("bind loopback");
    let addr = handle.addr();

    // Park the single worker: connect and send nothing (the worker blocks
    // reading the first request line).
    let parked = TcpStream::connect(addr).expect("park worker");
    std::thread::sleep(std::time::Duration::from_millis(100));
    // Fill the queue.
    let queued = TcpStream::connect(addr).expect("fill queue");
    std::thread::sleep(std::time::Duration::from_millis(100));

    // This one must be rejected at admission.
    let mut rejected = TcpStream::connect(addr).expect("third connection");
    rejected
        .write_all(b"{\"op\":\"stats\"}\n")
        .expect("write on rejected connection");
    let mut line = String::new();
    BufReader::new(&rejected)
        .read_line(&mut line)
        .expect("read rejection");
    assert!(
        line.contains("overloaded"),
        "expected overloaded rejection, got: {line}"
    );

    // The retry policy rides out the overload: the parked connections
    // are released during the first backoff, so a later attempt lands.
    let mut parked = Some((parked, queued));
    let mut attempts = 0u32;
    let policy = RetryPolicy {
        max_attempts: 5,
        base_delay_ms: 10,
        max_delay_ms: 100,
        ..RetryPolicy::default()
    };
    let stats = call_with_retry(addr, &policy, |client| {
        attempts += 1;
        if attempts == 2 {
            // Free the worker and the queue slot between attempts.
            parked.take();
        }
        client.stats()
    })
    .expect("retry must recover once the overload clears");
    assert!(attempts >= 2, "first attempt must have been rejected");
    assert!(stats.get("server").is_some(), "stats response: {stats}");

    handle.shutdown();
}
