//! Content-addressed cache of frozen retarget artifacts.
//!
//! Retargeting is the expensive step (milliseconds) and its product — a
//! frozen, `Send + Sync` [`Target`] — is immutable, so the service
//! retargets each distinct model exactly once and shares the artifact via
//! `Arc`.  Keys are content digests of the normalized HDL source
//! ([`crate::digest::model_key`]); a re-indented copy of a model is the
//! same model.
//!
//! Concurrency contract: for each key there is at most one retarget in
//! flight.  The first requester inserts an in-flight marker and runs the
//! retarget *outside* the lock; concurrent requesters for the same key
//! block on a condvar and receive the same `Arc` when it lands.  A failed
//! retarget clears the marker and wakes the waiters, who retry (and
//! typically fail the same way, each seeing the real error).

use crate::digest::{model_key, ModelKey};
use crate::metrics::CacheCounters;
use record_core::{PipelineError, Record, RetargetOptions, Target};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Counters describing cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a ready entry.
    pub hits: u64,
    /// Lookups that found nothing and started a retarget.
    pub misses: u64,
    /// Retargets actually run (misses minus in-flight coalescing, plus
    /// retries after failures).
    pub retargets: u64,
    /// Waits behind another requester's in-flight retarget (one per
    /// waiter, however long it waits).
    pub inflight_waits: u64,
    /// Ready entries discarded to respect the capacity bound.
    pub evictions: u64,
}

enum Entry {
    /// Retargeted and ready to share; `last_used` orders LRU eviction.
    Ready { target: Arc<Target>, last_used: u64 },
    /// A retarget for this key is running on some requester's thread.
    InFlight,
}

struct CacheState {
    map: HashMap<ModelKey, Entry>,
    /// Logical clock for LRU ordering (bumped on every touch).
    tick: u64,
}

/// A bounded, content-addressed store of retargeted compilers.
///
/// Behaviour counters record through a [`CacheCounters`] view — either a
/// private standalone registry ([`TargetCache::new`]) or a server's
/// shared [`crate::metrics::ServeMetrics`] registry
/// ([`TargetCache::with_counters`]), so the `stats` op and the
/// `/metrics` exposition read the very same numbers.
pub struct TargetCache {
    capacity: usize,
    options: RetargetOptions,
    counters: CacheCounters,
    state: Mutex<CacheState>,
    cv: Condvar,
}

impl std::fmt::Debug for TargetCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl TargetCache {
    /// A cache holding at most `capacity` ready artifacts (clamped to at
    /// least 1), all retargeted under `options`.
    pub fn new(capacity: usize, options: RetargetOptions) -> TargetCache {
        TargetCache::with_counters(capacity, options, CacheCounters::standalone())
    }

    /// Like [`TargetCache::new`], recording into the given counter view
    /// (a server passes its shared registry's view here).
    pub fn with_counters(
        capacity: usize,
        options: RetargetOptions,
        counters: CacheCounters,
    ) -> TargetCache {
        TargetCache {
            capacity: capacity.max(1),
            options,
            counters,
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                tick: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// The artifact for `hdl`, retargeting at most once per content key
    /// no matter how many threads ask concurrently.
    ///
    /// # Errors
    ///
    /// Propagates retargeting failures ([`PipelineError`]); failures are
    /// not cached, so a later call retries.
    pub fn get_or_retarget(&self, hdl: &str) -> Result<(ModelKey, Arc<Target>), PipelineError> {
        let key = model_key(hdl);
        let mut waited = false;
        let mut state = self.state.lock().expect("cache lock poisoned");
        loop {
            let ready = match state.map.get(&key) {
                Some(Entry::Ready { target, .. }) => Some(Some(Arc::clone(target))),
                Some(Entry::InFlight) => Some(None),
                None => None,
            };
            match ready {
                Some(Some(target)) => {
                    self.counters.hit();
                    state.tick += 1;
                    let tick = state.tick;
                    if let Some(Entry::Ready { last_used, .. }) = state.map.get_mut(&key) {
                        *last_used = tick;
                    }
                    return Ok((key, target));
                }
                Some(None) => {
                    if !waited {
                        self.counters.inflight_wait();
                        waited = true;
                    }
                    state = self.cv.wait(state).expect("cache lock poisoned");
                }
                None => {
                    self.counters.miss();
                    self.counters.retarget();
                    state.map.insert(key, Entry::InFlight);
                    drop(state);

                    // The expensive part runs without the lock; other keys
                    // proceed, same-key requesters park on the condvar.
                    // Contained: a panicking retarget must clear the
                    // in-flight marker and report a structured error, not
                    // leave same-key waiters parked forever on a dead
                    // worker.
                    let retargeted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        Record::retarget(hdl, &self.options)
                    }))
                    .unwrap_or_else(|payload| {
                        Err(PipelineError::Internal(record_core::panic_message(payload)))
                    });

                    let mut state = self.state.lock().expect("cache lock poisoned");
                    match retargeted {
                        Ok(target) => {
                            self.counters.retarget_report(&target.report().report);
                            let target = Arc::new(target);
                            state.tick += 1;
                            let tick = state.tick;
                            state.map.insert(
                                key,
                                Entry::Ready {
                                    target: Arc::clone(&target),
                                    last_used: tick,
                                },
                            );
                            self.evict_to_capacity(&mut state);
                            self.sync_entries(&state);
                            self.cv.notify_all();
                            return Ok((key, target));
                        }
                        Err(e) => {
                            state.map.remove(&key);
                            self.cv.notify_all();
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// A ready artifact by key (`None` when absent or still in flight);
    /// counts as a hit or miss like [`TargetCache::get_or_retarget`].
    pub fn get(&self, key: ModelKey) -> Option<Arc<Target>> {
        let mut state = self.state.lock().expect("cache lock poisoned");
        state.tick += 1;
        let tick = state.tick;
        match state.map.get_mut(&key) {
            Some(Entry::Ready { target, last_used }) => {
                *last_used = tick;
                let target = Arc::clone(target);
                self.counters.hit();
                Some(target)
            }
            _ => {
                self.counters.miss();
                None
            }
        }
    }

    /// Evicts least-recently-used ready entries until the bound holds.
    /// In-flight markers are never evicted (their requester will insert
    /// over them) and do not count against capacity.
    fn evict_to_capacity(&self, state: &mut CacheState) {
        loop {
            let ready = state
                .map
                .values()
                .filter(|e| matches!(e, Entry::Ready { .. }))
                .count();
            if ready <= self.capacity {
                return;
            }
            let victim = state
                .map
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Ready { last_used, .. } => Some((*last_used, *k)),
                    Entry::InFlight => None,
                })
                .min()
                .map(|(_, k)| k);
            if let Some(k) = victim {
                state.map.remove(&k);
                self.counters.eviction();
            } else {
                return;
            }
        }
    }

    /// Publishes the ready-entry count to the entries gauge.
    fn sync_entries(&self, state: &CacheState) {
        let ready = state
            .map
            .values()
            .filter(|e| matches!(e, Entry::Ready { .. }))
            .count();
        self.counters.set_entries(ready);
    }

    /// Keys of ready entries, most recently used first (diagnostics and
    /// eviction-order tests).
    pub fn keys(&self) -> Vec<ModelKey> {
        let state = self.state.lock().expect("cache lock poisoned");
        let mut keys: Vec<(u64, ModelKey)> = state
            .map
            .iter()
            .filter_map(|(k, e)| match e {
                Entry::Ready { last_used, .. } => Some((*last_used, *k)),
                Entry::InFlight => None,
            })
            .collect();
        keys.sort_unstable_by_key(|&(last_used, _)| std::cmp::Reverse(last_used));
        keys.into_iter().map(|(_, k)| k).collect()
    }

    /// A snapshot of the behaviour counters (merged from the registry;
    /// the same numbers the `/metrics` exposition reports).
    pub fn stats(&self) -> CacheStats {
        self.counters.snapshot()
    }

    /// Ready entries currently cached.
    pub fn entries(&self) -> usize {
        let state = self.state.lock().expect("cache lock poisoned");
        state
            .map
            .values()
            .filter(|e| matches!(e, Entry::Ready { .. }))
            .count()
    }

    /// The counters as a [`record_probe::Report`] (the same vocabulary the
    /// rest of the pipeline reports in).
    pub fn report(&self) -> record_probe::Report {
        let stats = self.stats();
        let mut report = record_probe::Report::with_capacity(0, 5);
        report.count("cache.hits", stats.hits);
        report.count("cache.misses", stats.misses);
        report.count("cache.retargets", stats.retargets);
        report.count("cache.inflight-waits", stats.inflight_waits);
        report.count("cache.evictions", stats.evictions);
        report
    }
}
