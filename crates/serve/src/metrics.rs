//! The serving layer's metric schema, plus the slow-request flight
//! recorder and the NDJSON access log.
//!
//! One [`ServeMetrics`] per server instance owns the
//! [`MetricsRegistry`] and every slot id.  It is the *single source of
//! truth* for service counters: [`crate::TargetCache`] and
//! [`crate::SessionPool`] record through views ([`CacheCounters`],
//! [`PoolCounters`]) over this registry, the NDJSON `stats` op reads the
//! merged values back out of it, and the `/metrics` HTTP listener
//! renders the same registry in Prometheus text exposition format —
//! three read paths, one set of numbers.
//!
//! Recording is lock-free on the request path: each worker thread gets
//! its own [`MetricsShard`] at startup and every counter bump or
//! histogram observation is a relaxed atomic op.  Only rare events
//! (per-class failure counts) and scrape-time merging touch a mutex.

use crate::json::Json;
use record_core::{FailureClass, Report};
use record_probe::metrics::{
    CounterId, FamilyId, GaugeId, HistogramId, MetricsBuilder, MetricsRegistry, MetricsShard,
};
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Compile phase labels, in pipeline order (the same vocabulary as
/// [`record_core::CompilePhase`] plus the select/emit split the
/// [`Report`] records).
const COMPILE_PHASES: [&str; 7] = [
    "parse", "lower", "bind", "select", "emit", "allocate", "compact",
];

/// Retarget phase labels, in pipeline order.
const RETARGET_PHASES: [&str; 6] = [
    "parse",
    "extract",
    "template-gen",
    "rule-gen",
    "selector-gen",
    "freeze",
];

/// The full metric schema of one server instance.
#[derive(Debug)]
pub struct ServeMetrics {
    registry: MetricsRegistry,
    /// Shard for increments that do not happen on a worker thread (the
    /// accept loop, the cache, the pools).  Shared-shard increments are
    /// still lock-free, just potentially contended.
    base: Arc<MetricsShard>,
    cache_hits: CounterId,
    cache_misses: CounterId,
    cache_retargets: CounterId,
    cache_inflight_waits: CounterId,
    cache_evictions: CounterId,
    pool_created: CounterId,
    pool_reused: CounterId,
    pool_returned: CounterId,
    pool_dropped: CounterId,
    served: CounterId,
    rejected: CounterId,
    slow_traces: CounterId,
    cache_entries: GaugeId,
    pool_count: GaugeId,
    queue_depth: GaugeId,
    inflight: GaugeId,
    request_latency: HistogramId,
    compile_phase: Vec<(&'static str, HistogramId)>,
    retarget_phase: Arc<Vec<(&'static str, HistogramId)>>,
    failures: FamilyId,
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// Builds the schema and its base shard.
    pub fn new() -> ServeMetrics {
        let mut b = MetricsBuilder::new();
        let cache_hits = b.counter(
            "record_cache_hits_total",
            "Artifact-cache lookups served from a ready entry",
            &[],
        );
        let cache_misses = b.counter(
            "record_cache_misses_total",
            "Artifact-cache lookups that found nothing",
            &[],
        );
        let cache_retargets = b.counter(
            "record_cache_retargets_total",
            "Retargets actually run (misses minus in-flight coalescing)",
            &[],
        );
        let cache_inflight_waits = b.counter(
            "record_cache_inflight_waits_total",
            "Waits behind another requester's in-flight retarget",
            &[],
        );
        let cache_evictions = b.counter(
            "record_cache_evictions_total",
            "Ready artifacts discarded to respect the capacity bound",
            &[],
        );
        let pool_created = b.counter(
            "record_pool_sessions_created_total",
            "Sessions opened cold (no idle pages available)",
            &[],
        );
        let pool_reused = b.counter(
            "record_pool_sessions_reused_total",
            "Sessions rebuilt warm from pooled pages",
            &[],
        );
        let pool_returned = b.counter(
            "record_pool_sessions_returned_total",
            "Sessions whose pages went back to the pool on drop",
            &[],
        );
        let pool_dropped = b.counter(
            "record_pool_sessions_dropped_total",
            "Sessions dropped (pool full or poisoned by a contained panic)",
            &[],
        );
        let served = b.counter(
            "record_requests_served_total",
            "Requests handled (all ops, success or failure)",
            &[],
        );
        let rejected = b.counter(
            "record_requests_rejected_total",
            "Connections rejected by admission control",
            &[],
        );
        let slow_traces = b.counter(
            "record_slow_traces_total",
            "Requests whose latency crossed the flight-recorder threshold",
            &[],
        );
        let cache_entries = b.gauge(
            "record_cache_entries",
            "Ready artifacts currently cached",
            &[],
        );
        let pool_count = b.gauge("record_pools", "Session pools currently open", &[]);
        let queue_depth = b.gauge(
            "record_queue_depth",
            "Connections waiting in the admission queue",
            &[],
        );
        let inflight = b.gauge(
            "record_inflight_requests",
            "Requests currently being handled by workers",
            &[],
        );
        let request_latency = b.histogram(
            "record_request_latency_ns",
            "End-to-end request handling latency in nanoseconds",
            &[],
        );
        let compile_phase = COMPILE_PHASES
            .iter()
            .map(|&phase| {
                (
                    phase,
                    b.histogram(
                        "record_compile_phase_latency_ns",
                        "Per-phase compile latency in nanoseconds",
                        &[("phase", phase)],
                    ),
                )
            })
            .collect();
        let retarget_phase = Arc::new(
            RETARGET_PHASES
                .iter()
                .map(|&phase| {
                    (
                        phase,
                        b.histogram(
                            "record_retarget_phase_latency_ns",
                            "Per-phase retarget latency in nanoseconds",
                            &[("phase", phase)],
                        ),
                    )
                })
                .collect::<Vec<_>>(),
        );
        let failures = b.counter_family(
            "record_failures_total",
            "Compile failures by failure class (phase/kind)",
            "class",
        );
        let registry = b.build();
        let base = registry.shard();
        ServeMetrics {
            registry,
            base,
            cache_hits,
            cache_misses,
            cache_retargets,
            cache_inflight_waits,
            cache_evictions,
            pool_created,
            pool_reused,
            pool_returned,
            pool_dropped,
            served,
            rejected,
            slow_traces,
            cache_entries,
            pool_count,
            queue_depth,
            inflight,
            request_latency,
            compile_phase,
            retarget_phase,
            failures,
        }
    }

    /// The underlying registry (scrape rendering, gauges).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// A fresh recording shard for one worker thread.
    pub fn worker_shard(&self) -> Arc<MetricsShard> {
        self.registry.shard()
    }

    /// The cache's view over this registry.
    pub fn cache_counters(&self) -> CacheCounters {
        CacheCounters {
            registry: self.registry.clone(),
            shard: Arc::clone(&self.base),
            hits: self.cache_hits,
            misses: self.cache_misses,
            retargets: self.cache_retargets,
            inflight_waits: self.cache_inflight_waits,
            evictions: self.cache_evictions,
            entries: self.cache_entries,
            retarget_phase: Arc::clone(&self.retarget_phase),
        }
    }

    /// The pools' view over this registry.  Every pool of one server
    /// shares this view, so the counters aggregate across pools — the
    /// same aggregation the `stats` op always reported.
    pub fn pool_counters(&self) -> PoolCounters {
        PoolCounters {
            registry: self.registry.clone(),
            shard: Arc::clone(&self.base),
            created: self.pool_created,
            reused: self.pool_reused,
            returned: self.pool_returned,
            dropped: self.pool_dropped,
        }
    }

    /// Counts one handled request and observes its end-to-end latency.
    pub fn record_request(&self, shard: &MetricsShard, latency_ns: u64) {
        shard.incr(self.served);
        shard.observe(self.request_latency, latency_ns);
    }

    /// Counts one admission rejection (accept-loop thread; base shard).
    pub fn record_rejection(&self) {
        self.base.incr(self.rejected);
    }

    /// Counts one flight-recorder capture.
    pub fn record_slow_trace(&self, shard: &MetricsShard) {
        shard.incr(self.slow_traces);
    }

    /// Observes every phase of a compile [`Report`] into the per-phase
    /// latency histograms.
    pub fn record_compile_phases(&self, shard: &MetricsShard, report: &Report) {
        for p in &report.phases {
            if let Some(&(_, id)) = self
                .compile_phase
                .iter()
                .find(|(label, _)| *label == p.label)
            {
                shard.observe(id, p.ns);
            }
        }
    }

    /// Counts one classified compile failure (rare path; takes the
    /// family mutex).
    pub fn record_failure(&self, class: &FailureClass) {
        self.registry.incr_family(self.failures, &class.to_string());
    }

    /// Sets the pool-count gauge.
    pub fn set_pool_count(&self, n: usize) {
        self.registry.gauge_set(self.pool_count, n as i64);
    }

    /// Sets the admission-queue depth gauge.
    pub fn set_queue_depth(&self, n: usize) {
        self.registry.gauge_set(self.queue_depth, n as i64);
    }

    /// Adjusts the inflight-requests gauge.
    pub fn inflight_add(&self, delta: i64) {
        self.registry.gauge_add(self.inflight, delta);
    }

    /// Merged served/rejected counters (the `stats` op's `server`
    /// section).
    pub fn server_counters(&self) -> (u64, u64) {
        (
            self.registry.counter_value(self.served),
            self.registry.counter_value(self.rejected),
        )
    }

    /// Renders the whole registry in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }
}

/// The [`crate::TargetCache`]'s counter view: increments land on the
/// shared registry, snapshots merge back out of it.
#[derive(Debug, Clone)]
pub struct CacheCounters {
    registry: MetricsRegistry,
    shard: Arc<MetricsShard>,
    hits: CounterId,
    misses: CounterId,
    retargets: CounterId,
    inflight_waits: CounterId,
    evictions: CounterId,
    entries: GaugeId,
    retarget_phase: Arc<Vec<(&'static str, HistogramId)>>,
}

impl CacheCounters {
    /// A standalone view over a private registry, for caches used
    /// outside a server (tests, tools).
    pub fn standalone() -> CacheCounters {
        ServeMetrics::new().cache_counters()
    }

    pub(crate) fn hit(&self) {
        self.shard.incr(self.hits);
    }

    pub(crate) fn miss(&self) {
        self.shard.incr(self.misses);
    }

    pub(crate) fn retarget(&self) {
        self.shard.incr(self.retargets);
    }

    pub(crate) fn inflight_wait(&self) {
        self.shard.incr(self.inflight_waits);
    }

    pub(crate) fn eviction(&self) {
        self.shard.incr(self.evictions);
    }

    pub(crate) fn set_entries(&self, n: usize) {
        self.registry.gauge_set(self.entries, n as i64);
    }

    /// Observes the phases of one *actually executed* retarget into the
    /// per-phase latency histograms.  Lives on the cache's view because
    /// only the cache knows a lookup ran the pipeline rather than
    /// hitting (or coalescing onto) an existing artifact.
    pub(crate) fn retarget_report(&self, report: &Report) {
        for p in &report.phases {
            if let Some(&(_, id)) = self
                .retarget_phase
                .iter()
                .find(|(label, _)| *label == p.label)
            {
                self.shard.observe(id, p.ns);
            }
        }
    }

    /// The merged counter values.
    pub fn snapshot(&self) -> crate::CacheStats {
        crate::CacheStats {
            hits: self.registry.counter_value(self.hits),
            misses: self.registry.counter_value(self.misses),
            retargets: self.registry.counter_value(self.retargets),
            inflight_waits: self.registry.counter_value(self.inflight_waits),
            evictions: self.registry.counter_value(self.evictions),
        }
    }
}

/// The [`crate::SessionPool`]s' counter view.  Pools sharing a view
/// (every pool of one server) report shared totals.
#[derive(Debug, Clone)]
pub struct PoolCounters {
    registry: MetricsRegistry,
    shard: Arc<MetricsShard>,
    created: CounterId,
    reused: CounterId,
    returned: CounterId,
    dropped: CounterId,
}

impl PoolCounters {
    /// A standalone view over a private registry, for pools used outside
    /// a server.
    pub fn standalone() -> PoolCounters {
        ServeMetrics::new().pool_counters()
    }

    pub(crate) fn created(&self) {
        self.shard.incr(self.created);
    }

    pub(crate) fn reused(&self) {
        self.shard.incr(self.reused);
    }

    pub(crate) fn returned(&self) {
        self.shard.incr(self.returned);
    }

    pub(crate) fn dropped(&self) {
        self.shard.incr(self.dropped);
    }

    /// The merged counter values.
    pub fn snapshot(&self) -> crate::PoolStats {
        crate::PoolStats {
            created: self.registry.counter_value(self.created),
            reused: self.registry.counter_value(self.reused),
            returned: self.registry.counter_value(self.returned),
            dropped: self.registry.counter_value(self.dropped),
        }
    }
}

/// One captured slow request: its correlation id and the full Chrome
/// trace of its compile, ready for Perfetto.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowTrace {
    /// Correlation id of the request that crossed the threshold.
    pub request_id: String,
    /// The function that was being compiled.
    pub function: String,
    /// End-to-end latency of the request, in nanoseconds.
    pub latency_ns: u64,
    /// Chrome trace-event JSON of the compile (Perfetto-loadable).
    pub chrome_json: String,
}

/// A bounded ring of [`SlowTrace`]s: requests slower than the threshold
/// get their full trace captured here for postmortems, oldest evicted
/// first.  Dump it over the wire with the `debug-traces` op.
#[derive(Debug)]
pub struct FlightRecorder {
    threshold_ns: u64,
    capacity: usize,
    ring: Mutex<VecDeque<SlowTrace>>,
}

impl FlightRecorder {
    /// A recorder capturing requests slower than `threshold_ns`, keeping
    /// the most recent `capacity` traces (clamped to at least 1).
    pub fn new(threshold_ns: u64, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            threshold_ns,
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// The capture threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Records one slow request, evicting the oldest beyond capacity.
    pub fn record(&self, trace: SlowTrace) {
        let mut ring = self.ring.lock().expect("flight recorder lock");
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The retained traces, oldest first.
    pub fn dump(&self) -> Vec<SlowTrace> {
        self.ring
            .lock()
            .expect("flight recorder lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Retained trace count.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight recorder lock").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A per-request NDJSON access log: one JSON object per line, flushed
/// per line so tail -f works mid-request-storm.
pub struct AccessLog {
    sink: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessLog").finish_non_exhaustive()
    }
}

impl AccessLog {
    /// An access log writing to stderr.
    pub fn stderr() -> AccessLog {
        AccessLog::to_writer(Box::new(std::io::stderr()))
    }

    /// An access log writing to an arbitrary sink (tests).
    pub fn to_writer(sink: Box<dyn Write + Send>) -> AccessLog {
        AccessLog {
            sink: Mutex::new(sink),
        }
    }

    /// Writes one NDJSON line.  Log I/O failures are swallowed — the log
    /// must never fail a request.
    pub fn write_line(&self, entry: &Json) {
        let mut sink = self.sink.lock().expect("access log lock");
        let _ = writeln!(sink, "{entry}");
        let _ = sink.flush();
    }
}

/// Request-id generation: a per-server sequence fed through SplitMix64
/// (a bijection, so ids never collide within a process) and salted with
/// the server's start time so ids from restarts do not repeat either.
#[derive(Debug)]
pub struct RequestIds {
    seq: AtomicU64,
    salt: u64,
}

impl Default for RequestIds {
    fn default() -> RequestIds {
        RequestIds::new()
    }
}

impl RequestIds {
    /// A generator salted with the current trace-epoch offset.
    pub fn new() -> RequestIds {
        RequestIds {
            seq: AtomicU64::new(0),
            salt: splitmix64(record_probe::now_ns() | 1),
        }
    }

    /// The next id: 16 lowercase hex digits.
    pub fn next_id(&self) -> String {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        format!("{:016x}", splitmix64(seq) ^ self.salt)
    }
}

/// SplitMix64: a tiny, well-mixed bijective PRNG step.
fn splitmix64(index: u64) -> u64 {
    let mut z = index.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_recorder_ring_is_bounded() {
        let recorder = FlightRecorder::new(1_000_000, 2);
        for i in 0..5u64 {
            recorder.record(SlowTrace {
                request_id: format!("{i:016x}"),
                function: "f".to_owned(),
                latency_ns: i,
                chrome_json: "{}".to_owned(),
            });
        }
        let dump = recorder.dump();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].latency_ns, 3, "oldest beyond capacity evicted");
        assert_eq!(dump[1].latency_ns, 4);
    }

    #[test]
    fn request_ids_are_distinct_hex() {
        let ids = RequestIds::new();
        let a = ids.next_id();
        let b = ids.next_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn exposition_contains_every_family() {
        let metrics = ServeMetrics::new();
        let shard = metrics.worker_shard();
        metrics.record_request(&shard, 1_500);
        metrics.record_failure(
            &record_core::CompileError::NoDataMemory {
                processor: "p".to_owned(),
            }
            .classify(),
        );
        let text = metrics.render_prometheus();
        for family in [
            "record_cache_hits_total",
            "record_cache_misses_total",
            "record_cache_retargets_total",
            "record_cache_inflight_waits_total",
            "record_cache_evictions_total",
            "record_pool_sessions_created_total",
            "record_pool_sessions_reused_total",
            "record_requests_served_total",
            "record_requests_rejected_total",
            "record_slow_traces_total",
            "record_cache_entries",
            "record_pools",
            "record_queue_depth",
            "record_inflight_requests",
            "record_request_latency_ns",
            "record_compile_phase_latency_ns",
            "record_retarget_phase_latency_ns",
            "record_failures_total",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        assert!(text.contains("record_failures_total{class=\"bind/no-data-memory\"} 1"));
        assert!(text.contains("record_request_latency_ns_count 1"));
    }

    #[test]
    fn stats_views_read_what_counters_wrote() {
        let metrics = ServeMetrics::new();
        let cache = metrics.cache_counters();
        cache.hit();
        cache.hit();
        cache.miss();
        cache.retarget();
        let pools = metrics.pool_counters();
        pools.created();
        pools.reused();
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses, snap.retargets), (2, 1, 1));
        let snap = pools.snapshot();
        assert_eq!((snap.created, snap.reused), (1, 1));
    }
}
