//! `record-serve` — run the compile service from the command line.
//!
//! ```text
//! record-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!              [--cache-capacity N] [--pool-max-idle N]
//! ```
//!
//! Serves the newline-delimited JSON protocol (see `record_serve::proto`)
//! until killed.

use record_serve::{Server, ServerConfig};

fn main() {
    let mut addr = "127.0.0.1:7457".to_owned();
    let mut config = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{arg} needs {what}")))
        };
        match arg.as_str() {
            "--addr" => addr = next("HOST:PORT"),
            "--workers" => config.workers = parse(&next("N"), "--workers"),
            "--queue-depth" => config.queue_depth = parse(&next("N"), "--queue-depth"),
            "--cache-capacity" => config.cache_capacity = parse(&next("N"), "--cache-capacity"),
            "--pool-max-idle" => config.pool_max_idle = parse(&next("N"), "--pool-max-idle"),
            other => fail(&format!("unknown argument `{other}`")),
        }
    }

    let handle = match Server::start(&addr, config) {
        Ok(handle) => handle,
        Err(e) => fail(&format!("cannot bind `{addr}`: {e}")),
    };
    println!("record-serve listening on {}", handle.addr());
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

fn parse(s: &str, flag: &str) -> usize {
    s.parse()
        .unwrap_or_else(|_| fail(&format!("{flag} needs a number, got `{s}`")))
}

fn fail(message: &str) -> ! {
    eprintln!("record-serve: {message}");
    eprintln!(
        "usage: record-serve [--addr HOST:PORT] [--workers N] [--queue-depth N] \
         [--cache-capacity N] [--pool-max-idle N]"
    );
    std::process::exit(2);
}
