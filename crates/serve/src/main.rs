//! `record-serve` — run the compile service from the command line.
//!
//! ```text
//! record-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!              [--cache-capacity N] [--pool-max-idle N]
//!              [--metrics-addr HOST:PORT] [--slow-threshold-ms N|off]
//!              [--trace-ring N] [--access-log]
//! ```
//!
//! Serves the newline-delimited JSON protocol (see `record_serve::proto`)
//! until killed.  With `--metrics-addr`, a second plain-HTTP listener
//! serves `GET /metrics` in Prometheus text exposition format; with
//! `--access-log`, one NDJSON line per request goes to stderr.

use record_serve::{Server, ServerConfig};

fn main() {
    let mut addr = "127.0.0.1:7457".to_owned();
    let mut config = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{arg} needs {what}")))
        };
        match arg.as_str() {
            "--addr" => addr = next("HOST:PORT"),
            "--workers" => config.workers = parse(&next("N"), "--workers"),
            "--queue-depth" => config.queue_depth = parse(&next("N"), "--queue-depth"),
            "--cache-capacity" => config.cache_capacity = parse(&next("N"), "--cache-capacity"),
            "--pool-max-idle" => config.pool_max_idle = parse(&next("N"), "--pool-max-idle"),
            "--metrics-addr" => config.metrics_addr = Some(next("HOST:PORT")),
            "--slow-threshold-ms" => {
                let v = next("N|off");
                config.slow_threshold_ms = match v.as_str() {
                    "off" => None,
                    n => Some(parse(n, "--slow-threshold-ms") as u64),
                };
            }
            "--trace-ring" => config.trace_ring = parse(&next("N"), "--trace-ring"),
            "--access-log" => config.access_log = true,
            other => fail(&format!("unknown argument `{other}`")),
        }
    }

    let handle = match Server::start(&addr, config) {
        Ok(handle) => handle,
        Err(e) => fail(&format!("cannot bind `{addr}`: {e}")),
    };
    println!("record-serve listening on {}", handle.addr());
    if let Some(metrics) = handle.metrics_addr() {
        println!("record-serve metrics on http://{metrics}/metrics");
    }
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

fn parse(s: &str, flag: &str) -> usize {
    s.parse()
        .unwrap_or_else(|_| fail(&format!("{flag} needs a number, got `{s}`")))
}

fn fail(message: &str) -> ! {
    eprintln!("record-serve: {message}");
    eprintln!(
        "usage: record-serve [--addr HOST:PORT] [--workers N] [--queue-depth N] \
         [--cache-capacity N] [--pool-max-idle N] [--metrics-addr HOST:PORT] \
         [--slow-threshold-ms N|off] [--trace-ring N] [--access-log]"
    );
    std::process::exit(2);
}
