//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, in order.
//! Requests name an operation in `"op"`:
//!
//! * `{"op":"retarget","hdl":"..."}` — retarget (or hit the cache) and
//!   return the content key.
//! * `{"op":"compile", "hdl"|"key":..., "source":..., "function":...,
//!   "options"?:{...}, "deadline_ms"?:N, "listing"?:bool}` — compile one
//!   kernel against the (cached) artifact.
//! * `{"op":"batch-compile", "hdl"|"key":..., "items":[...]}` — compile
//!   several kernels on one warm session.
//! * `{"op":"stats"}` — cache/pool/server counters.
//! * `{"op":"debug-traces"}` — dump the slow-request flight recorder:
//!   the retained Chrome traces with their request ids and latencies.
//!
//! Responses are `{"ok":true, ...}` or `{"ok":false, "error":{"kind":...,
//! "message":...}}`, and the server appends a `request_id` field to
//! *every* response line — including `overloaded` rejections, `timeout`
//! and `internal` errors — so clients, the access log and the flight
//! recorder all correlate on one id.  Error kinds: `protocol`
//! (unparseable request), `overloaded` (admission control rejected the
//! connection), `timeout` (per-request deadline exceeded; carries
//! `phase`), `unknown-key` (compile by key missed the cache), `pipeline`
//! (retarget failed), `compile` (structured compile failure; carries
//! `class`, `phase` and the diagnostic fields), `internal` (the compiler
//! panicked; contained by the session boundary, carries `class` and
//! `phase` like `compile`), `no-recorder` (`debug-traces` with the
//! flight recorder disabled).

use crate::digest::{parse_key, ModelKey};
use crate::json::Json;
use record_core::{CompileError, CompileOptions, PipelineError};

/// How a request names the processor model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelRef {
    /// Inline HDL source (retargets on a cache miss).
    Hdl(String),
    /// A content key from an earlier `retarget` response (never
    /// retargets; misses report `unknown-key`).
    Key(ModelKey),
}

/// One kernel to compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileItem {
    /// Mini-C translation unit.
    pub source: String,
    /// Function to compile.
    pub function: String,
    /// Compile options (deadline included, converted from `deadline_ms`).
    pub options: CompileOptions,
    /// Also render the assembly listing into the response.
    pub listing: bool,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Retarget {
        hdl: String,
    },
    Compile {
        model: ModelRef,
        item: CompileItem,
    },
    BatchCompile {
        model: ModelRef,
        items: Vec<CompileItem>,
    },
    Stats,
    DebugTraces,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable description, reported to the client as a `protocol`
/// error.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = crate::json::parse(line)?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field `op`")?;
    match op {
        "retarget" => Ok(Request::Retarget {
            hdl: req_str(&v, "hdl")?,
        }),
        "compile" => Ok(Request::Compile {
            model: model_ref(&v)?,
            item: compile_item(&v)?,
        }),
        "batch-compile" => {
            let items = v
                .get("items")
                .and_then(Json::as_arr)
                .ok_or("missing array field `items`")?;
            Ok(Request::BatchCompile {
                model: model_ref(&v)?,
                items: items.iter().map(compile_item).collect::<Result<_, _>>()?,
            })
        }
        "stats" => Ok(Request::Stats),
        "debug-traces" => Ok(Request::DebugTraces),
        other => Err(format!("unknown op `{other}`")),
    }
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn model_ref(v: &Json) -> Result<ModelRef, String> {
    match (v.get("hdl"), v.get("key")) {
        (Some(hdl), None) => Ok(ModelRef::Hdl(
            hdl.as_str()
                .ok_or("field `hdl` must be a string")?
                .to_owned(),
        )),
        (None, Some(key)) => {
            let key = key.as_str().ok_or("field `key` must be a string")?;
            Ok(ModelRef::Key(
                parse_key(key).ok_or_else(|| format!("malformed key `{key}`"))?,
            ))
        }
        _ => Err("exactly one of `hdl` or `key` is required".to_owned()),
    }
}

fn compile_item(v: &Json) -> Result<CompileItem, String> {
    let mut options = CompileOptions::default();
    if let Some(o) = v.get("options") {
        for (field, slot) in [
            ("baseline", &mut options.baseline as &mut bool),
            ("compaction", &mut options.compaction),
            ("allocate_registers", &mut options.allocate_registers),
        ] {
            if let Some(b) = o.get(field) {
                *slot = b
                    .as_bool()
                    .ok_or_else(|| format!("option `{field}` must be a boolean"))?;
            }
        }
        if let Some(p) = o.get("inject_panic") {
            let label = p.as_str().ok_or("option `inject_panic` must be a string")?;
            options.inject_panic = Some(
                record_core::CompilePhase::from_label(label)
                    .ok_or_else(|| format!("option `inject_panic`: unknown phase `{label}`"))?,
            );
        }
    }
    if let Some(ms) = v.get("deadline_ms") {
        let ms = ms
            .as_u64()
            .ok_or("`deadline_ms` must be a non-negative integer")?;
        options.deadline_ns = Some(ms.saturating_mul(1_000_000));
    }
    let listing = match v.get("listing") {
        Some(b) => b.as_bool().ok_or("`listing` must be a boolean")?,
        None => false,
    };
    Ok(CompileItem {
        source: req_str(v, "source")?,
        function: req_str(v, "function")?,
        options,
        listing,
    })
}

/// Builds an `{"ok":false}` response with a bare error kind.
pub fn error_response(kind: &str, message: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj(vec![
                ("kind", Json::str(kind)),
                ("message", Json::str(message)),
            ]),
        ),
    ])
}

/// Builds the error response for a retarget failure.
pub fn pipeline_error_response(e: &PipelineError) -> Json {
    error_response("pipeline", &e.to_string())
}

/// Builds the error response for a compile failure: `timeout` for
/// deadline expiry, `compile` (with the full diagnostic) otherwise.
pub fn compile_error_response(e: &CompileError) -> Json {
    let class = e.classify();
    let kind = match e {
        CompileError::DeadlineExceeded { .. } => "timeout",
        CompileError::Internal { .. } => "internal",
        _ => "compile",
    };
    let mut error = vec![
        ("kind".to_owned(), Json::str(kind)),
        ("message".to_owned(), Json::str(e.to_string())),
        ("class".to_owned(), Json::str(class.kind)),
        ("phase".to_owned(), Json::str(class.phase.to_string())),
    ];
    if let Some(d) = e.diagnostic() {
        if let Some((line, col)) = d.span {
            error.push((
                "span".to_owned(),
                Json::Arr(vec![Json::num(u64::from(line)), Json::num(u64::from(col))]),
            ));
        }
        if let Some(i) = d.rt_index {
            error.push(("rt_index".to_owned(), Json::num(i as u64)));
        }
        if let Some(s) = &d.storage {
            error.push(("storage".to_owned(), Json::str(s.clone())));
        }
        if let Some(op) = d.op {
            error.push(("op".to_owned(), Json::str(op)));
        }
        if let Some(rid) = &d.request_id {
            error.push(("request_id".to_owned(), Json::str(rid.clone())));
        }
    }
    Json::Obj(vec![
        ("ok".to_owned(), Json::Bool(false)),
        ("error".to_owned(), Json::Obj(error)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::render_key;

    #[test]
    fn parses_compile_requests() {
        let line = r#"{"op":"compile","hdl":"processor p {}","source":"void f(){}","function":"f","options":{"compaction":false},"deadline_ms":250,"listing":true}"#;
        let Request::Compile { model, item } = parse_request(line).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(model, ModelRef::Hdl("processor p {}".to_owned()));
        assert_eq!(item.function, "f");
        assert!(!item.options.compaction);
        assert!(!item.options.baseline);
        assert_eq!(item.options.deadline_ns, Some(250_000_000));
        assert!(item.listing);
    }

    #[test]
    fn parses_key_references() {
        let key = crate::digest::model_key("processor p {}");
        let line = format!(
            r#"{{"op":"batch-compile","key":"{}","items":[{{"source":"s","function":"f"}}]}}"#,
            render_key(key)
        );
        let Request::BatchCompile { model, items } = parse_request(&line).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(model, ModelRef::Key(key));
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].options, record_core::CompileOptions::default());
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            r#"{"op":"warp"}"#,
            r#"{"op":"compile","source":"s","function":"f"}"#,
            r#"{"op":"compile","hdl":"h","key":"0000000000000000","source":"s","function":"f"}"#,
            r#"{"op":"compile","hdl":"h","source":"s","function":"f","deadline_ms":-1}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
    }
}
