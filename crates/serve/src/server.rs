//! The request server: TCP accept loop, bounded admission queue, worker
//! pool.
//!
//! Layering: each worker serves whole connections; each request resolves
//! its model through the [`TargetCache`] (retarget-once, shared `Arc`s)
//! and compiles on a session checked out of that target's [`SessionPool`]
//! (warm overlay pages).  Admission control is explicit: when the pending
//! queue is full, new connections get an `overloaded` error line instead
//! of an invisible wait, so callers can shed load or back off.

use crate::cache::TargetCache;
use crate::digest::{render_key, ModelKey};
use crate::json::Json;
use crate::pool::SessionPool;
use crate::proto::{
    compile_error_response, error_response, parse_request, pipeline_error_response, CompileItem,
    ModelRef, Request,
};
use record_core::{CompileRequest, RetargetOptions, Target};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Connections allowed to wait for a worker; beyond this, admission
    /// control rejects with `overloaded`.
    pub queue_depth: usize,
    /// Retarget artifacts kept ready (LRU beyond this).
    pub cache_capacity: usize,
    /// Idle warm sessions kept per target.
    pub pool_max_idle: usize,
    /// Options every retarget runs under.
    pub retarget: RetargetOptions,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            cache_capacity: 8,
            pool_max_idle: 4,
            retarget: RetargetOptions::default(),
        }
    }
}

struct Shared {
    cache: TargetCache,
    pools: Mutex<HashMap<ModelKey, Arc<SessionPool>>>,
    pool_max_idle: usize,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    queue_depth: usize,
    shutdown: AtomicBool,
    /// Requests handled (all ops, success or failure).
    served: AtomicU64,
    /// Connections rejected by admission control.
    rejected: AtomicU64,
}

/// The compile service.  See [`Server::start`].
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds `addr` and starts serving; returns a handle owning the
    /// accept and worker threads.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn start(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: TargetCache::new(config.cache_capacity, config.retarget.clone()),
            pools: Mutex::new(HashMap::new()),
            pool_max_idle: config.pool_max_idle.max(1),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_depth: config.queue_depth.max(1),
            shutdown: AtomicBool::new(false),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });

        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        Ok(ServerHandle {
            addr: local,
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

/// A running server; shuts down (joining all threads) on
/// [`ServerHandle::shutdown`] or drop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stops accepting, drains the admission queue
    /// (every already-accepted connection is served until it closes or
    /// goes idle), then joins all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop with a throwaway connection and the
        // workers through the condvar.
        let _ = TcpStream::connect(self.addr);
        self.shared.queue_cv.notify_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let mut queue = shared.queue.lock().expect("queue lock poisoned");
        if queue.len() >= shared.queue_depth {
            drop(queue);
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let line = format!(
                "{}\n",
                error_response("overloaded", "admission queue full, retry later")
            );
            let _ = stream.write_all(line.as_bytes());
            // Dropping the stream closes the connection.
        } else {
            queue.push_back(stream);
            drop(queue);
            shared.queue_cv.notify_one();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        // Drain order matters for graceful shutdown: a queued connection
        // is always popped and served before the shutdown flag is
        // consulted, so flipping the flag never strands an admitted
        // client — workers exit only once the queue is empty.
        let stream = {
            let mut queue = shared.queue.lock().expect("queue lock poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_cv.wait(queue).expect("queue lock poisoned");
            }
        };
        serve_connection(shared, stream);
    }
}

fn serve_connection(shared: &Shared, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // A short read timeout keeps shutdown bounded: a worker parked on an
    // idle connection re-checks the flag a few times a second instead of
    // blocking in `read` until the peer closes.
    let _ = read_half.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        // Reassemble one line across timeouts: `read_line` appends, so a
        // partial line survives the retry.
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return,
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(line.trim_end()) {
            Ok(request) => handle_request(shared, &request),
            Err(message) => error_response("protocol", &message),
        };
        shared.served.fetch_add(1, Ordering::Relaxed);
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .is_err()
        {
            return;
        }
        // No shutdown check here: during a drain, requests the client has
        // already pipelined still get answered.  The connection ends when
        // the client closes it or goes idle past the read timeout (the
        // timeout arm above re-checks the flag), so drains stay bounded.
    }
}

fn handle_request(shared: &Shared, request: &Request) -> Json {
    match request {
        Request::Retarget { hdl } => match shared.cache.get_or_retarget(hdl) {
            Ok((key, target)) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("key", Json::str(render_key(key))),
                ("processor", Json::str(target.report().processor.clone())),
                ("rules", Json::num(target.report().rules as u64)),
                (
                    "templates",
                    Json::num(target.report().templates_extended as u64),
                ),
            ]),
            Err(e) => pipeline_error_response(&e),
        },
        Request::Compile { model, item } => match resolve(shared, model) {
            Ok((key, target)) => {
                let pool = pool_for(shared, key, &target);
                let mut session = pool.checkout();
                compile_response(key, &mut session, item)
            }
            Err(response) => response,
        },
        Request::BatchCompile { model, items } => match resolve(shared, model) {
            Ok((key, target)) => {
                let pool = pool_for(shared, key, &target);
                let mut session = pool.checkout();
                let mut results = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        // Roll the warm session back so every item sees
                        // fresh-session (byte-identical) output.
                        session.reset();
                    }
                    results.push(compile_response(key, &mut session, item));
                }
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("results", Json::Arr(results)),
                ])
            }
            Err(response) => response,
        },
        Request::Stats => stats_response(shared),
    }
}

fn resolve(shared: &Shared, model: &ModelRef) -> Result<(ModelKey, Arc<Target>), Json> {
    match model {
        ModelRef::Hdl(hdl) => shared
            .cache
            .get_or_retarget(hdl)
            .map_err(|e| pipeline_error_response(&e)),
        ModelRef::Key(key) => shared
            .cache
            .get(*key)
            .map(|target| (*key, target))
            .ok_or_else(|| {
                error_response(
                    "unknown-key",
                    &format!("no cached artifact for key `{}`", render_key(*key)),
                )
            }),
    }
}

fn pool_for(shared: &Shared, key: ModelKey, target: &Arc<Target>) -> Arc<SessionPool> {
    let mut pools = shared.pools.lock().expect("pools lock poisoned");
    Arc::clone(
        pools.entry(key).or_insert_with(|| {
            Arc::new(SessionPool::new(Arc::clone(target), shared.pool_max_idle))
        }),
    )
}

fn compile_response(
    key: ModelKey,
    session: &mut record_core::CompileSession<'_>,
    item: &CompileItem,
) -> Json {
    let request =
        CompileRequest::new(&item.source, &item.function).with_options(item.options.clone());
    match session.compile(&request) {
        Ok(kernel) => {
            let mut fields = vec![
                ("ok".to_owned(), Json::Bool(true)),
                ("key".to_owned(), Json::str(render_key(key))),
                ("function".to_owned(), Json::str(item.function.clone())),
                ("ops".to_owned(), Json::num(kernel.ops.len() as u64)),
                ("code_size".to_owned(), Json::num(kernel.code_size() as u64)),
            ];
            if item.listing {
                fields.push((
                    "listing".to_owned(),
                    Json::str(session.target().listing(&kernel)),
                ));
            }
            Json::Obj(fields)
        }
        Err(e) => compile_error_response(&e),
    }
}

fn stats_response(shared: &Shared) -> Json {
    let cache = shared.cache.stats();
    let pools = shared.pools.lock().expect("pools lock poisoned");
    let mut created = 0;
    let mut reused = 0;
    let mut returned = 0;
    let mut dropped = 0;
    for pool in pools.values() {
        let s = pool.stats();
        created += s.created;
        reused += s.reused;
        returned += s.returned;
        dropped += s.dropped;
    }
    let pool_count = pools.len() as u64;
    drop(pools);
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        (
            "cache",
            Json::obj(vec![
                ("hits", Json::num(cache.hits)),
                ("misses", Json::num(cache.misses)),
                ("retargets", Json::num(cache.retargets)),
                ("inflight_waits", Json::num(cache.inflight_waits)),
                ("evictions", Json::num(cache.evictions)),
                ("entries", Json::num(shared.cache.keys().len() as u64)),
            ]),
        ),
        (
            "pools",
            Json::obj(vec![
                ("count", Json::num(pool_count)),
                ("created", Json::num(created)),
                ("reused", Json::num(reused)),
                ("returned", Json::num(returned)),
                ("dropped", Json::num(dropped)),
            ]),
        ),
        (
            "server",
            Json::obj(vec![
                ("served", Json::num(shared.served.load(Ordering::Relaxed))),
                (
                    "rejected",
                    Json::num(shared.rejected.load(Ordering::Relaxed)),
                ),
            ]),
        ),
    ])
}
