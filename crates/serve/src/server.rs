//! The request server: TCP accept loop, bounded admission queue, worker
//! pool.
//!
//! Layering: each worker serves whole connections; each request resolves
//! its model through the [`TargetCache`] (retarget-once, shared `Arc`s)
//! and compiles on a session checked out of that target's [`SessionPool`]
//! (warm overlay pages).  Admission control is explicit: when the pending
//! queue is full, new connections get an `overloaded` error line instead
//! of an invisible wait, so callers can shed load or back off.
//!
//! Observability: every counter, gauge and latency histogram of the
//! service lives in one [`ServeMetrics`] registry.  Workers record into
//! per-thread lock-free shards; the optional `/metrics` HTTP listener
//! ([`ServerConfig::metrics_addr`]) and the NDJSON `stats` op both read
//! the merged registry.  Every response line carries a `request_id`, the
//! same id the optional NDJSON access log and the slow-request
//! [`FlightRecorder`] key their entries by — a slow request's full
//! Chrome trace is retrievable over the wire with the `debug-traces` op.

use crate::cache::TargetCache;
use crate::digest::{render_key, ModelKey};
use crate::json::Json;
use crate::metrics::{AccessLog, FlightRecorder, RequestIds, ServeMetrics, SlowTrace};
use crate::pool::SessionPool;
use crate::proto::{
    compile_error_response, error_response, parse_request, pipeline_error_response, CompileItem,
    ModelRef, Request,
};
use record_core::{CompileRequest, MetricsShard, RetargetOptions, Target};
use record_probe::now_ns;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Connections allowed to wait for a worker; beyond this, admission
    /// control rejects with `overloaded`.
    pub queue_depth: usize,
    /// Retarget artifacts kept ready (LRU beyond this).
    pub cache_capacity: usize,
    /// Idle warm sessions kept per target.
    pub pool_max_idle: usize,
    /// Options every retarget runs under.
    pub retarget: RetargetOptions,
    /// Bind address for the plain-HTTP metrics listener (`GET /metrics`
    /// in Prometheus text exposition format); `None` disables it.
    pub metrics_addr: Option<String>,
    /// Flight-recorder threshold: compiles slower than this capture
    /// their full Chrome trace into the bounded trace ring.  `None`
    /// disables capture entirely (no collector is installed).
    pub slow_threshold_ms: Option<u64>,
    /// Slow traces retained (oldest evicted first).
    pub trace_ring: usize,
    /// Emit one NDJSON access-log line per request to stderr.
    pub access_log: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            cache_capacity: 8,
            pool_max_idle: 4,
            retarget: RetargetOptions::default(),
            metrics_addr: None,
            slow_threshold_ms: Some(1_000),
            trace_ring: 16,
            access_log: false,
        }
    }
}

struct Shared {
    cache: TargetCache,
    pools: Mutex<HashMap<ModelKey, Arc<SessionPool>>>,
    pool_max_idle: usize,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    queue_depth: usize,
    shutdown: AtomicBool,
    metrics: ServeMetrics,
    recorder: Option<FlightRecorder>,
    access_log: Option<AccessLog>,
    ids: RequestIds,
}

/// Per-request context threaded through the handlers: which server,
/// which worker shard to record on, which correlation id.
struct RequestCtx<'a> {
    shared: &'a Shared,
    shard: &'a MetricsShard,
    request_id: &'a str,
}

/// The compile service.  See [`Server::start`].
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds `addr` (and the metrics listener, when configured) and
    /// starts serving; returns a handle owning the accept and worker
    /// threads.
    ///
    /// # Errors
    ///
    /// I/O errors from binding either listener.
    pub fn start(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let metrics = ServeMetrics::new();
        let shared = Arc::new(Shared {
            cache: TargetCache::with_counters(
                config.cache_capacity,
                config.retarget.clone(),
                metrics.cache_counters(),
            ),
            pools: Mutex::new(HashMap::new()),
            pool_max_idle: config.pool_max_idle.max(1),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_depth: config.queue_depth.max(1),
            shutdown: AtomicBool::new(false),
            recorder: config
                .slow_threshold_ms
                .map(|ms| FlightRecorder::new(ms.saturating_mul(1_000_000), config.trace_ring)),
            access_log: config.access_log.then(AccessLog::stderr),
            ids: RequestIds::new(),
            metrics,
        });

        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        let metrics_thread = match metrics_listener {
            Some(listener) => {
                let addr = listener.local_addr()?;
                let shared = Arc::clone(&shared);
                Some((
                    addr,
                    std::thread::spawn(move || metrics_loop(&listener, &shared)),
                ))
            }
            None => None,
        };

        Ok(ServerHandle {
            addr: local,
            shared,
            accept: Some(accept),
            workers,
            metrics: metrics_thread,
        })
    }
}

/// A running server; shuts down (joining all threads) on
/// [`ServerHandle::shutdown`] or drop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Option<(SocketAddr, JoinHandle<()>)>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics-listener address, when one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(|(addr, _)| *addr)
    }

    /// Graceful shutdown: stops accepting, drains the admission queue
    /// (every already-accepted connection is served until it closes or
    /// goes idle), then joins all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loops with throwaway connections and the
        // workers through the condvar.
        let _ = TcpStream::connect(self.addr);
        if let Some((addr, _)) = &self.metrics {
            let _ = TcpStream::connect(addr);
        }
        self.shared.queue_cv.notify_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some((_, thread)) = self.metrics.take() {
            let _ = thread.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let mut queue = shared.queue.lock().expect("queue lock poisoned");
        if queue.len() >= shared.queue_depth {
            drop(queue);
            shared.metrics.record_rejection();
            // Rejections carry a request id too: a client that logs the
            // error line can still be correlated with the access log.
            let request_id = shared.ids.next_id();
            let mut stream = stream;
            let response = with_request_id(
                error_response("overloaded", "admission queue full, retry later"),
                &request_id,
            );
            if let Some(log) = &shared.access_log {
                log.write_line(&access_entry(&request_id, "rejected", &response, 0));
            }
            let _ = stream.write_all(format!("{response}\n").as_bytes());
            // Dropping the stream closes the connection.
        } else {
            queue.push_back(stream);
            shared.metrics.set_queue_depth(queue.len());
            drop(queue);
            shared.queue_cv.notify_one();
        }
    }
}

fn worker_loop(shared: &Shared) {
    // Each worker records on its own lock-free shard; the registry
    // merges shards only when somebody reads (stats op, /metrics).
    let shard = shared.metrics.worker_shard();
    loop {
        // Drain order matters for graceful shutdown: a queued connection
        // is always popped and served before the shutdown flag is
        // consulted, so flipping the flag never strands an admitted
        // client — workers exit only once the queue is empty.
        let stream = {
            let mut queue = shared.queue.lock().expect("queue lock poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    shared.metrics.set_queue_depth(queue.len());
                    break stream;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_cv.wait(queue).expect("queue lock poisoned");
            }
        };
        serve_connection(shared, &shard, stream);
    }
}

fn serve_connection(shared: &Shared, shard: &MetricsShard, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // A short read timeout keeps shutdown bounded: a worker parked on an
    // idle connection re-checks the flag a few times a second instead of
    // blocking in `read` until the peer closes.
    let _ = read_half.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        // Reassemble one line across timeouts: `read_line` appends, so a
        // partial line survives the retry.
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return,
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let request_id = shared.ids.next_id();
        let start = now_ns();
        shared.metrics.inflight_add(1);
        let (op, response) = match parse_request(line.trim_end()) {
            Ok(request) => {
                let ctx = RequestCtx {
                    shared,
                    shard,
                    request_id: &request_id,
                };
                (op_name(&request), handle_request(&ctx, &request))
            }
            Err(message) => ("invalid", error_response("protocol", &message)),
        };
        shared.metrics.inflight_add(-1);
        let response = with_request_id(response, &request_id);
        let latency_ns = now_ns().saturating_sub(start);
        shared.metrics.record_request(shard, latency_ns);
        if let Some(log) = &shared.access_log {
            log.write_line(&access_entry(&request_id, op, &response, latency_ns));
        }
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .is_err()
        {
            return;
        }
        // No shutdown check here: during a drain, requests the client has
        // already pipelined still get answered.  The connection ends when
        // the client closes it or goes idle past the read timeout (the
        // timeout arm above re-checks the flag), so drains stay bounded.
    }
}

/// Appends the correlation id to a response object.
fn with_request_id(mut response: Json, request_id: &str) -> Json {
    if let Json::Obj(fields) = &mut response {
        fields.push(("request_id".to_owned(), Json::str(request_id)));
    }
    response
}

/// The access-log vocabulary for a request.
fn op_name(request: &Request) -> &'static str {
    match request {
        Request::Retarget { .. } => "retarget",
        Request::Compile { .. } => "compile",
        Request::BatchCompile { .. } => "batch-compile",
        Request::Stats => "stats",
        Request::DebugTraces => "debug-traces",
    }
}

/// One NDJSON access-log line: timestamp, correlation id, op, outcome,
/// latency, and the error kind when the request failed.
fn access_entry(request_id: &str, op: &str, response: &Json, latency_ns: u64) -> Json {
    let ok = response.get("ok").and_then(Json::as_bool).unwrap_or(false);
    let mut fields = vec![
        ("ts_ns".to_owned(), Json::num(now_ns())),
        ("request_id".to_owned(), Json::str(request_id)),
        ("op".to_owned(), Json::str(op)),
        ("ok".to_owned(), Json::Bool(ok)),
        ("latency_ns".to_owned(), Json::num(latency_ns)),
    ];
    if let Some(kind) = response
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
    {
        fields.push(("error_kind".to_owned(), Json::str(kind)));
    }
    Json::Obj(fields)
}

fn handle_request(ctx: &RequestCtx<'_>, request: &Request) -> Json {
    let shared = ctx.shared;
    match request {
        Request::Retarget { hdl } => match shared.cache.get_or_retarget(hdl) {
            Ok((key, target)) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("key", Json::str(render_key(key))),
                ("processor", Json::str(target.report().processor.clone())),
                ("rules", Json::num(target.report().rules as u64)),
                (
                    "templates",
                    Json::num(target.report().templates_extended as u64),
                ),
            ]),
            Err(e) => pipeline_error_response(&e),
        },
        Request::Compile { model, item } => match resolve(shared, model) {
            Ok((key, target)) => {
                let pool = pool_for(shared, key, &target);
                let mut session = pool.checkout();
                compile_response(ctx, key, &mut session, item)
            }
            Err(response) => response,
        },
        Request::BatchCompile { model, items } => match resolve(shared, model) {
            Ok((key, target)) => {
                let pool = pool_for(shared, key, &target);
                let mut session = pool.checkout();
                let mut results = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        // Roll the warm session back so every item sees
                        // fresh-session (byte-identical) output.
                        session.reset();
                    }
                    results.push(compile_response(ctx, key, &mut session, item));
                }
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("results", Json::Arr(results)),
                ])
            }
            Err(response) => response,
        },
        Request::Stats => stats_response(shared),
        Request::DebugTraces => debug_traces_response(shared),
    }
}

fn resolve(shared: &Shared, model: &ModelRef) -> Result<(ModelKey, Arc<Target>), Json> {
    match model {
        ModelRef::Hdl(hdl) => shared
            .cache
            .get_or_retarget(hdl)
            .map_err(|e| pipeline_error_response(&e)),
        ModelRef::Key(key) => shared
            .cache
            .get(*key)
            .map(|target| (*key, target))
            .ok_or_else(|| {
                error_response(
                    "unknown-key",
                    &format!("no cached artifact for key `{}`", render_key(*key)),
                )
            }),
    }
}

fn pool_for(shared: &Shared, key: ModelKey, target: &Arc<Target>) -> Arc<SessionPool> {
    let mut pools = shared.pools.lock().expect("pools lock poisoned");
    let pool = Arc::clone(pools.entry(key).or_insert_with(|| {
        Arc::new(SessionPool::with_counters(
            Arc::clone(target),
            shared.pool_max_idle,
            shared.metrics.pool_counters(),
        ))
    }));
    shared.metrics.set_pool_count(pools.len());
    pool
}

fn compile_response(
    ctx: &RequestCtx<'_>,
    key: ModelKey,
    session: &mut record_core::CompileSession<'_>,
    item: &CompileItem,
) -> Json {
    let shared = ctx.shared;
    let request =
        CompileRequest::new(&item.source, &item.function).with_options(item.options.clone());
    // The flight recorder needs the span stream of every compile that
    // *might* be slow, which is all of them — so when it is armed, every
    // compile traces.  Tracing is observation-only (the differential
    // test in `tests/probe_differential.rs` holds traced output
    // byte-identical to untraced), so this cannot change results.
    if shared.recorder.is_some() {
        session.install_collector(0);
    }
    let start = now_ns();
    let result = session.compile(&request);
    let elapsed_ns = now_ns().saturating_sub(start);
    let trace = session.take_trace();
    match &result {
        Ok(kernel) => shared
            .metrics
            .record_compile_phases(ctx.shard, &kernel.report),
        Err(e) => shared.metrics.record_failure(&e.classify()),
    }
    if let (Some(recorder), Some(trace)) = (&shared.recorder, trace) {
        if elapsed_ns >= recorder.threshold_ns() {
            recorder.record(SlowTrace {
                request_id: ctx.request_id.to_owned(),
                function: item.function.clone(),
                latency_ns: elapsed_ns,
                chrome_json: trace.to_chrome_json("record-serve"),
            });
            shared.metrics.record_slow_trace(ctx.shard);
        }
    }
    match result {
        Ok(kernel) => {
            let mut fields = vec![
                ("ok".to_owned(), Json::Bool(true)),
                ("key".to_owned(), Json::str(render_key(key))),
                ("function".to_owned(), Json::str(item.function.clone())),
                ("ops".to_owned(), Json::num(kernel.ops.len() as u64)),
                ("code_size".to_owned(), Json::num(kernel.code_size() as u64)),
            ];
            if item.listing {
                fields.push((
                    "listing".to_owned(),
                    Json::str(session.target().listing(&kernel)),
                ));
            }
            Json::Obj(fields)
        }
        Err(mut e) => {
            e.set_request_id(ctx.request_id);
            compile_error_response(&e)
        }
    }
}

fn stats_response(shared: &Shared) -> Json {
    // Every number below is a read of the shared metrics registry — the
    // same registry `/metrics` renders — so the two surfaces can never
    // disagree.
    let cache = shared.cache.stats();
    let pool_count = shared.pools.lock().expect("pools lock poisoned").len() as u64;
    let pools = shared.metrics.pool_counters().snapshot();
    let (served, rejected) = shared.metrics.server_counters();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        (
            "cache",
            Json::obj(vec![
                ("hits", Json::num(cache.hits)),
                ("misses", Json::num(cache.misses)),
                ("retargets", Json::num(cache.retargets)),
                ("inflight_waits", Json::num(cache.inflight_waits)),
                ("evictions", Json::num(cache.evictions)),
                ("entries", Json::num(shared.cache.entries() as u64)),
            ]),
        ),
        (
            "pools",
            Json::obj(vec![
                ("count", Json::num(pool_count)),
                ("created", Json::num(pools.created)),
                ("reused", Json::num(pools.reused)),
                ("returned", Json::num(pools.returned)),
                ("dropped", Json::num(pools.dropped)),
            ]),
        ),
        (
            "server",
            Json::obj(vec![
                ("served", Json::num(served)),
                ("rejected", Json::num(rejected)),
            ]),
        ),
    ])
}

fn debug_traces_response(shared: &Shared) -> Json {
    match &shared.recorder {
        None => error_response(
            "no-recorder",
            "flight recorder disabled (slow_threshold_ms unset)",
        ),
        Some(recorder) => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("threshold_ns", Json::num(recorder.threshold_ns())),
            (
                "traces",
                Json::Arr(
                    recorder
                        .dump()
                        .into_iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("request_id".to_owned(), Json::str(t.request_id)),
                                ("function".to_owned(), Json::str(t.function)),
                                ("latency_ns".to_owned(), Json::num(t.latency_ns)),
                                // The Chrome trace travels as a JSON
                                // *string*: dump it to a file and load it
                                // in Perfetto as-is.
                                ("trace".to_owned(), Json::str(t.chrome_json)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

/// The metrics listener: a deliberately minimal HTTP/1.1 responder —
/// one request per connection, `GET /metrics` only, `Connection: close`.
/// Scrapers (Prometheus, curl) need nothing more, and keeping it trivial
/// keeps it off the compile path entirely.
fn metrics_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        serve_metrics_request(shared, &mut stream);
    }
}

fn serve_metrics_request(shared: &Shared, stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the headers; the response does not depend on them.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = if path == "/metrics" || path.starts_with("/metrics?") {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            shared.metrics.render_prometheus(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; the only route is /metrics\n".to_owned(),
        )
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
}
