//! A minimal JSON value, parser and printer.
//!
//! The wire protocol is newline-delimited JSON; keeping the codec in-tree
//! (like the vendored `criterion`/`proptest` shims) keeps the service
//! zero-dependency.  Only what the protocol needs is implemented: objects
//! keep insertion order, numbers are `f64`, and the printer always emits
//! a single line (strings escape control characters, so embedded newlines
//! never break the framing).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (the protocol never has enough keys for a
    /// map to win).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (`None` for absent keys and non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor for an object literal.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an integer value.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a one-line description with the byte offset of the failure.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 near offset {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at offset {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs: the protocol never emits
                            // them, but accept well-formed ones anyway.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err("unpaired surrogate".to_owned());
                                }
                                self.pos += 2;
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("truncated \\u escape")?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| "bad \\u escape".to_owned())?;
                                self.pos += 4;
                                0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                code
                            };
                            out.push(char::from_u32(c).ok_or("invalid codepoint")?);
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                }
                _ => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let cases = [
            r#"{"op":"compile","deadline_ms":250,"listing":true}"#,
            r#"{"ok":false,"error":{"kind":"timeout","message":"a\nb"}}"#,
            r#"[1,-2,3.5,null,true,false,"x"]"#,
            r#"{}"#,
        ];
        for case in cases {
            let v = parse(case).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v, "{case}");
        }
    }

    #[test]
    fn escapes_survive_the_wire() {
        let v = Json::str("tab\there \"quoted\" back\\slash\nnewline");
        let printed = v.to_string();
        assert!(!printed.contains('\n'), "framing-safe: {printed}");
        assert_eq!(parse(&printed).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "nul", "\"open", "{\"a\" 1}", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }
}
