//! Content addressing for HDL processor models.
//!
//! The artifact cache keys on *what the model says*, not how it is
//! formatted: the source is normalized (line endings, indentation, blank
//! lines, interior whitespace runs) before hashing, so re-serialized or
//! re-indented copies of one model hit the same cache entry.  Comments
//! are kept — the HDL grammar has none, so stripping would guess.

/// A content digest of a normalized HDL model.
pub type ModelKey = u64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Digests `hdl` under whitespace normalization (FNV-1a over the
/// normalized bytes; a separator byte between lines keeps
/// concatenation-ambiguous inputs apart).
pub fn model_key(hdl: &str) -> ModelKey {
    let mut h = FNV_OFFSET;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    };
    for line in hdl.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut pending_space = false;
        for b in line.bytes() {
            if b == b' ' || b == b'\t' {
                pending_space = true;
            } else {
                if pending_space {
                    eat(b' ');
                    pending_space = false;
                }
                eat(b);
            }
        }
        eat(b'\n');
    }
    h
}

/// Renders a key the way the wire protocol and logs show it.
pub fn render_key(key: ModelKey) -> String {
    format!("{key:016x}")
}

/// Parses a key rendered by [`render_key`].
pub fn parse_key(s: &str) -> Option<ModelKey> {
    (s.len() == 16).then(|| ModelKey::from_str_radix(s, 16).ok())?
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_does_not_change_the_key() {
        let a = "processor p {\n  reg ac[16];\n}\n";
        let b = "\r\n processor   p {\r\n\treg ac[16];\n\n }";
        assert_eq!(model_key(a), model_key(b));
    }

    #[test]
    fn content_changes_the_key() {
        let a = "processor p { reg ac[16]; }";
        let b = "processor p { reg ac[8]; }";
        assert_ne!(model_key(a), model_key(b));
        // Joining two lines is a different model than keeping them apart.
        assert_ne!(model_key("ab\ncd"), model_key("abcd"));
    }

    #[test]
    fn keys_render_and_parse() {
        let k = model_key("processor p {}");
        assert_eq!(parse_key(&render_key(k)), Some(k));
        assert_eq!(parse_key("xyz"), None);
        assert_eq!(parse_key(""), None);
    }
}
