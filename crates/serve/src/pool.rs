//! A pool of warm compilation sessions over one frozen artifact.
//!
//! Opening a session is cheap but not free: the BDD overlay arena, its
//! hash tables and the symbol interner all start empty and grow on
//! demand, so the first compilation of every session pays the growth
//! path.  The pool keeps the *pages* of finished sessions
//! ([`record_core::SessionPages`] — capacity with cleared contents) and
//! rebuilds warm sessions from them, skipping the growth.  Because reset
//! pages replay identical handles for identical operation sequences,
//! pooled output is byte-identical to fresh-session output — the
//! differential test in `tests/pool_differential.rs` holds this.

use crate::metrics::PoolCounters;
use record_core::{CompileSession, SessionPages, Target};
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex};

/// Counters describing pool behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Sessions opened cold (no idle pages available).
    pub created: u64,
    /// Sessions rebuilt from pooled pages.
    pub reused: u64,
    /// Sessions whose pages went back to the pool on drop.
    pub returned: u64,
    /// Sessions dropped because the pool was full or the session was
    /// poisoned by a contained panic.
    pub dropped: u64,
}

/// A bounded pool of reusable session pages for one target.
///
/// Behaviour counters record through a [`PoolCounters`] view — a private
/// standalone registry ([`SessionPool::new`]) or a server's shared
/// registry ([`SessionPool::with_counters`]); every pool of one server
/// shares the view, so server-side stats aggregate across pools.
#[derive(Debug)]
pub struct SessionPool {
    target: Arc<Target>,
    idle: Mutex<Vec<SessionPages>>,
    max_idle: usize,
    counters: PoolCounters,
}

impl SessionPool {
    /// A pool over `target` retaining at most `max_idle` idle page sets.
    pub fn new(target: Arc<Target>, max_idle: usize) -> SessionPool {
        SessionPool::with_counters(target, max_idle, PoolCounters::standalone())
    }

    /// Like [`SessionPool::new`], recording into the given counter view.
    pub fn with_counters(
        target: Arc<Target>,
        max_idle: usize,
        counters: PoolCounters,
    ) -> SessionPool {
        SessionPool {
            target,
            idle: Mutex::new(Vec::new()),
            max_idle,
            counters,
        }
    }

    /// The artifact this pool compiles against.
    pub fn target(&self) -> &Arc<Target> {
        &self.target
    }

    /// Checks a session out: warm (rebuilt from pooled pages) when idle
    /// pages exist, cold otherwise.  The session returns its pages to the
    /// pool when the guard drops.
    pub fn checkout(&self) -> PooledSession<'_> {
        let pages = self.idle.lock().expect("pool lock poisoned").pop();
        let session = match pages {
            Some(pages) => {
                self.counters.reused();
                self.target.session_from(pages)
            }
            None => {
                self.counters.created();
                self.target.session()
            }
        };
        PooledSession {
            pool: self,
            session: Some(session),
        }
    }

    /// Idle page sets currently held.
    pub fn idle_len(&self) -> usize {
        self.idle.lock().expect("pool lock poisoned").len()
    }

    /// A snapshot of the behaviour counters (merged from the registry;
    /// aggregated across every pool sharing the counter view).
    pub fn stats(&self) -> PoolStats {
        self.counters.snapshot()
    }

    fn checkin(&self, session: CompileSession<'_>) {
        // A poisoned session panicked mid-compile: its overlay tables may
        // be mid-mutation, so its pages never re-enter circulation.
        if session.poisoned() {
            self.counters.dropped();
            return;
        }
        let pages = session.into_pages();
        let mut idle = self.idle.lock().expect("pool lock poisoned");
        if idle.len() < self.max_idle {
            idle.push(pages);
            self.counters.returned();
        } else {
            self.counters.dropped();
        }
    }
}

/// A checked-out session; derefs to [`CompileSession`] and returns its
/// pages to the pool on drop.
#[derive(Debug)]
pub struct PooledSession<'p> {
    pool: &'p SessionPool,
    session: Option<CompileSession<'p>>,
}

impl<'p> Deref for PooledSession<'p> {
    type Target = CompileSession<'p>;

    fn deref(&self) -> &CompileSession<'p> {
        self.session.as_ref().expect("session present until drop")
    }
}

impl<'p> DerefMut for PooledSession<'p> {
    fn deref_mut(&mut self) -> &mut CompileSession<'p> {
        self.session.as_mut().expect("session present until drop")
    }
}

impl Drop for PooledSession<'_> {
    fn drop(&mut self) {
        if let Some(session) = self.session.take() {
            self.pool.checkin(session);
        }
    }
}
