//! `record-serve` — the compile service layer.
//!
//! PRs 1-6 made retargeting produce a frozen, shareable artifact and
//! compilation a pure function over it.  This crate turns that shape
//! into a long-running service:
//!
//! ```text
//!  client ──TCP──▶ admission queue ──▶ worker ──▶ TargetCache ──▶ SessionPool
//!                  (bounded; excess       │        retarget once    warm overlay
//!                   → `overloaded`)       │        per model key    pages per target
//!                                         ▼
//!                                  newline-delimited JSON responses
//! ```
//!
//! * [`TargetCache`] — content-addressed artifact cache: one retarget per
//!   distinct (normalized) HDL model, concurrent requesters coalesce onto
//!   a single in-flight retarget, ready artifacts share via `Arc`, LRU
//!   eviction beyond capacity.
//! * [`SessionPool`] — warm [`record_core::CompileSession`]s: finished
//!   sessions return their overlay pages (capacity, not contents) and
//!   later checkouts skip the arena growth path.  Pooled output is
//!   byte-identical to fresh-session output.
//! * [`Server`] / [`Client`] — a `std::net` TCP server (thread pool,
//!   bounded admission queue, per-request deadlines checked at compile
//!   phase boundaries) and its blocking client.
//! * Fault tolerance — compiler panics are contained at the session and
//!   retarget boundaries (`catch_unwind`) and surface as structured
//!   `internal` errors on the wire; poisoned sessions are discarded, not
//!   pooled.  Shutdown drains the admission queue before closing, and
//!   [`call_with_retry`] gives clients bounded exponential backoff with
//!   deterministic jitter on `overloaded`/transport failures.
//! * Observability — one [`ServeMetrics`] registry holds every service
//!   counter, gauge and latency histogram (recorded on lock-free
//!   per-worker shards, merged at read time); the cache, the pools, the
//!   `stats` op and the optional `GET /metrics` HTTP listener are all
//!   views over it.  Every response carries a `request_id`, the
//!   optional NDJSON access log and the slow-request [`FlightRecorder`]
//!   key by it, and the `debug-traces` op dumps retained Chrome traces
//!   over the wire.
//!
//! Like the rest of the workspace, the crate has no external
//! dependencies; the JSON codec is in-tree ([`Json`] / [`parse_json`]).

mod cache;
mod client;
mod digest;
mod json;
mod metrics;
mod pool;
mod proto;
mod server;

pub use cache::{CacheStats, TargetCache};
pub use client::{
    call_with_retry, local_key, Client, CompileSpec, CompileSummary, Model, RetargetSummary,
    RetryPolicy, ServeError,
};
pub use digest::{model_key, parse_key, render_key, ModelKey};
pub use json::{parse as parse_json, Json};
pub use metrics::{
    AccessLog, CacheCounters, FlightRecorder, PoolCounters, RequestIds, ServeMetrics, SlowTrace,
};
pub use pool::{PoolStats, PooledSession, SessionPool};
pub use proto::{parse_request, CompileItem, ModelRef, Request};
pub use server::{Server, ServerConfig, ServerHandle};
