//! Ablations from DESIGN.md:
//!  A. commutative extension on/off — effect on retargeting cost (the
//!     code-size effect is printed by `figure2 --no-commutativity`);
//!  B. compaction on/off on the horizontal `demo` machine.

use criterion::{criterion_group, criterion_main, Criterion};
use record_core::{CompileRequest, Record, RetargetOptions};
use record_rtl::{ExtensionOptions, TransformLibrary};
use record_targets::models;

fn bench_commutativity(c: &mut Criterion) {
    let model = models::model("tms320c25").expect("model exists");
    let mut g = c.benchmark_group("ablation/commutativity");
    g.sample_size(10);
    g.bench_function("on", |b| {
        b.iter(|| Record::retarget(model.hdl, &RetargetOptions::default()).expect("retargets"));
    });
    g.bench_function("off", |b| {
        let options = RetargetOptions {
            extension: ExtensionOptions {
                commutativity: false,
                max_variants_per_template: 16,
                library: TransformLibrary::empty(),
            },
            ..Default::default()
        };
        b.iter(|| Record::retarget(model.hdl, &options).expect("retargets"));
    });
    g.finish();
}

fn bench_compaction(c: &mut Criterion) {
    let model = models::model("demo").expect("model exists");
    let target = Record::retarget(model.hdl, &Default::default()).expect("retargets");
    // Both subtrees of the subtraction compute the same expression into
    // different registers: on the horizontal demo format the two ALU
    // operations pack into one word.
    let src = "int a, x; void f() { x = (a + a) - (a + a); }";
    let mut g = c.benchmark_group("ablation/compaction");
    g.sample_size(20);
    g.bench_function("with-compaction", |b| {
        b.iter(|| {
            target
                .compile(&CompileRequest::new(src, "f"))
                .expect("compiles")
        });
    });
    g.bench_function("without-compaction", |b| {
        b.iter(|| {
            target
                .compile(&CompileRequest::new(src, "f").compaction(false))
                .expect("compiles")
        });
    });
    // Print the code-size ablation once (criterion measures time; the size
    // delta is the interesting number for DESIGN.md).
    let with = target
        .compile(&CompileRequest::new(src, "f"))
        .expect("compiles");
    let without = target
        .compile(&CompileRequest::new(src, "f").compaction(false))
        .expect("compiles");
    println!(
        "\nablation B (demo machine): {} words compacted vs {} vertical RTs\n",
        with.code_size(),
        without.code_size()
    );
    g.finish();
}

criterion_group!(benches, bench_commutativity, bench_compaction);
criterion_main!(benches);
