//! Table 3 benchmark: full retargeting time per processor model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_retargeting(c: &mut Criterion) {
    let mut g = c.benchmark_group("retarget");
    g.sample_size(10);
    for model in record_bench::all_models() {
        g.bench_with_input(BenchmarkId::from_parameter(model.name), &model, |b, m| {
            b.iter(|| record_bench::retarget(m, &Default::default()).expect("retargets"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_retargeting);
criterion_main!(benches);
