//! Register-allocation benchmark: time of the value-placement phase alone
//! per Figure 2 kernel, plus full compiles with the phase on vs off.
//! Memory-traffic reduction itself is reported by the `figure2` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use record_core::{CompileRequest, Record};
use record_targets::{kernels, models};

fn bench_allocation_phase(c: &mut Criterion) {
    let model = models::model("tms320c25").expect("model exists");
    let target = Record::retarget(model.hdl, &Default::default()).expect("retargets");
    let mut g = c.benchmark_group("regalloc/phase");
    g.sample_size(20);
    for k in kernels::kernels() {
        // Pre-compile once without allocation; the bench then measures the
        // rewriting pass in isolation.
        let unalloc = target
            .compile(
                &CompileRequest::new(k.source, k.function)
                    .compaction(false)
                    .allocate_registers(false),
            )
            .expect("compiles");
        let flat = record_ir::lower(&record_ir::parse(k.source).unwrap(), k.function).unwrap();
        // The pool is part of the frozen artifact now: no re-discovery.
        let pool = target.register_pool().expect("data memory").clone();
        let liveness = record_regalloc::Liveness::analyze(&flat);
        let layout = record_regalloc::MemLayout::from_binding(&unalloc.binding);
        g.bench_with_input(
            BenchmarkId::from_parameter(k.name),
            &unalloc.ops,
            |b, ops| {
                b.iter(|| {
                    record_regalloc::allocate(
                        ops,
                        &pool,
                        &liveness,
                        layout,
                        &record_regalloc::AllocOptions::default(),
                    )
                });
            },
        );
    }
    g.finish();
}

fn bench_compile_with_and_without(c: &mut Criterion) {
    let model = models::model("tms320c25").expect("model exists");
    let target = Record::retarget(model.hdl, &Default::default()).expect("retargets");
    let mut g = c.benchmark_group("regalloc/compile");
    g.sample_size(20);
    for k in [
        kernels::kernel("dot_product").unwrap(),
        kernels::kernel("fir").unwrap(),
    ] {
        g.bench_with_input(BenchmarkId::new("alloc-on", k.name), &k, |b, k| {
            b.iter(|| {
                target
                    .compile(&CompileRequest::new(k.source, k.function))
                    .expect("compiles")
            });
        });
        g.bench_with_input(BenchmarkId::new("alloc-off", k.name), &k, |b, k| {
            b.iter(|| {
                target
                    .compile(&CompileRequest::new(k.source, k.function).allocate_registers(false))
                    .expect("compiles")
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_allocation_phase,
    bench_compile_with_and_without
);
criterion_main!(benches);
