//! Figure 2 benchmark: kernel compilation time on the TMS320C25-like
//! model, RECORD pipeline vs naive baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use record_core::{CompileRequest, Record};
use record_targets::{kernels, models};

fn bench_codegen(c: &mut Criterion) {
    let model = models::model("tms320c25").expect("model exists");
    let target = Record::retarget(model.hdl, &Default::default()).expect("retargets");
    let mut g = c.benchmark_group("codegen");
    g.sample_size(20);
    for k in kernels::kernels() {
        g.bench_with_input(BenchmarkId::new("record", k.name), &k, |b, k| {
            b.iter(|| {
                target
                    .compile(&CompileRequest::new(k.source, k.function))
                    .expect("compiles")
            });
        });
        g.bench_with_input(BenchmarkId::new("baseline", k.name), &k, |b, k| {
            b.iter(|| {
                target
                    .compile(
                        &CompileRequest::new(k.source, k.function)
                            .baseline(true)
                            .compaction(false),
                    )
                    .expect("compiles")
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_codegen);
criterion_main!(benches);
