//! Batch-compilation benchmark: the ten DSPstone kernels on the
//! TMS320C25-like model, compiled sequentially (`Target::compile` in a
//! loop) vs fanned out across threads (`Target::compile_batch`).
//!
//! The speedup line printed at the end is the acceptance number for the
//! frozen-artifact redesign: on a multi-core runner the batch path is
//! expected to be ≥2× faster than sequential.  On a single-core runner
//! `compile_batch` degrades to the sequential loop (one worker), so the
//! ratio reported there is ~1× — the number is recorded in the bench
//! output, not gated anywhere.

use criterion::{criterion_group, criterion_main, Criterion};
use record_core::{CompileRequest, Record};
use record_targets::{kernels, models};
use std::time::Instant;

fn bench_batch_vs_sequential(c: &mut Criterion) {
    let model = models::model("tms320c25").expect("model exists");
    let target = Record::retarget(model.hdl, &Default::default()).expect("retargets");
    let requests: Vec<CompileRequest<'_>> = kernels::kernels()
        .iter()
        .map(|k| CompileRequest::new(k.source, k.function))
        .collect();

    let mut g = c.benchmark_group("batch");
    g.sample_size(20);
    g.bench_function("sequential/10-kernels", |b| {
        b.iter(|| {
            requests
                .iter()
                .map(|r| target.compile(r).expect("compiles"))
                .collect::<Vec<_>>()
        });
    });
    g.bench_function("compile_batch/10-kernels", |b| {
        b.iter(|| target.compile_batch(&requests));
    });
    g.finish();

    // The headline ratio, measured directly so it lands in the bench
    // output regardless of how the harness reports per-benchmark times.
    let rounds = 10;
    let t0 = Instant::now();
    for _ in 0..rounds {
        for r in &requests {
            target.compile(r).expect("compiles");
        }
    }
    let sequential = t0.elapsed();
    let t1 = Instant::now();
    for _ in 0..rounds {
        target.compile_batch(&requests);
    }
    let batch = t1.elapsed();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\nbatch speedup: sequential {sequential:.2?} / compile_batch {batch:.2?} = {:.2}x \
         over {} kernels x {rounds} rounds on {cores} core(s)",
        sequential.as_secs_f64() / batch.as_secs_f64(),
        requests.len(),
    );
    if cores == 1 {
        println!("(single-core runner: the >=2x target applies to multi-core runners)");
    }
}

criterion_group!(benches, bench_batch_vs_sequential);
criterion_main!(benches);
