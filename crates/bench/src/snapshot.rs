//! The recorded perf trajectory: machine-timed medians plus
//! machine-independent counters, serialized as `BENCH_*.json`.
//!
//! `cargo run --release -p record-bench --bin perf_snapshot` measures
//! retargeting per model and compilation per kernel x model pair and
//! writes the snapshot JSON.  Two kinds of data live side by side:
//!
//! * **medians** (`median_ns`) — wall-clock, machine-dependent, the
//!   numbers future perf PRs diff against;
//! * **counters** (BDD node count, template/rule counts, emitted op and
//!   instruction-word counts, op-cache hit rate, unique-table probe
//!   length) — deterministic for a given source tree, so CI can fail a
//!   perf PR that silently changes *semantics* while claiming to only
//!   change *speed* (see [`counter_drift`]).
//!
//! The crate has no serde (offline build), so this module carries a
//! minimal JSON writer and a minimal recursive-descent parser — enough
//! for the snapshot schema and nothing else.

use record_core::{CompileRequest, Histogram, Record, Report, RetargetOptions};
use record_targets::{control_kernels, kernels, models};
use std::fmt::Write as _;
use std::time::Instant;

/// The schema this tree measures and writes.
///
/// v2 over v1: per-phase median times (`"phases"`) on every row, and a
/// failure taxonomy (`fail_phase`/`fail_kind`/`fail_message`, from
/// [`record_core::CompileError::classify`]) on every `ok: false` compile
/// row.  v3 over v2: latency percentiles (`p50_ns`/`p95_ns`/`p99_ns`/
/// `max_ns`) on every timed row, read off a log-bucketed
/// [`record_core::Histogram`] over the per-iteration samples — like the
/// medians they are machine-dependent and *reported*, never gated.
/// `--check` accepts all versions; the failure-class gate only applies
/// against v2+ snapshots.
pub const SCHEMA: &str = "record-perf-snapshot/v3";

/// Tail-latency summary of one measurement series (v3 rows).
///
/// Percentiles come off a log₂-bucketed [`Histogram`], so they carry
/// bucket resolution (the bucket's upper bound, clamped to the exact
/// max) — the same readout the serving layer's `/metrics` histograms
/// report, which keeps bench rows and fleet dashboards comparable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

/// The percentile readout over one series of nanosecond samples.
fn latency_summary(samples: &[u128]) -> LatencySummary {
    let mut h = Histogram::new();
    for &s in samples {
        h.observe(u64::try_from(s).unwrap_or(u64::MAX));
    }
    LatencySummary {
        p50_ns: h.percentile(0.50),
        p95_ns: h.percentile(0.95),
        p99_ns: h.percentile(0.99),
        max_ns: h.max,
    }
}

/// One retargeting measurement.
#[derive(Debug, Clone)]
pub struct RetargetRow {
    pub model: &'static str,
    pub median_ns: u128,
    /// Tail latency over the measured runs (machine-dependent, not
    /// gated).
    pub latency: LatencySummary,
    /// Per-phase median times over the measured runs, in recording
    /// order (`parse`, `extract`, `template-gen`, `rule-gen`,
    /// `selector-gen`, `freeze`).
    pub phases: Vec<(&'static str, u128)>,
    /// Frozen BDD node count after retargeting (counter).
    pub bdd_nodes: usize,
    /// Extended template count (counter).
    pub templates: usize,
    /// Grammar rule count (counter).
    pub rules: usize,
    /// Retarget-time op-cache hit rate (counter, deterministic).
    pub op_cache_hit_rate: f64,
    /// Retarget-time unique-table mean probe length (counter,
    /// deterministic).
    pub unique_avg_probe_len: f64,
}

/// One compilation measurement (kernel x model).
#[derive(Debug, Clone)]
pub struct CompileRow {
    pub model: &'static str,
    pub kernel: &'static str,
    /// `false` when the kernel does not compile on this model (e.g. the
    /// data path lacks an operator); timings and counters are zero then
    /// and the `fail_*` fields say why.
    pub ok: bool,
    pub median_ns: u128,
    /// Tail latency over the measured runs (machine-dependent, not
    /// gated; zero on failure).
    pub latency: LatencySummary,
    /// Per-phase median times over the measured runs (`parse`, `lower`,
    /// `bind`, `select`, `emit`, `allocate`, `compact`); empty on
    /// failure.
    pub phases: Vec<(&'static str, u128)>,
    /// Emitted vertical RT ops (counter).
    pub ops: usize,
    /// Compacted instruction words (counter).
    pub words: usize,
    /// Session-local BDD nodes created by one compile (counter).
    pub scratch_nodes: usize,
    /// Session op-cache hit rate over one compile (counter).
    pub op_cache_hit_rate: f64,
    /// Phase the compile died in (label of
    /// [`record_core::CompilePhase`]); `None` when `ok`.
    pub fail_phase: Option<&'static str>,
    /// Failure-kind slug from [`record_core::FailureClass`], e.g.
    /// `missing-hardware(mul)` or `selector-gap`; `None` when `ok`.
    pub fail_kind: Option<String>,
    /// Human-readable error text; `None` when `ok`.
    pub fail_message: Option<String>,
}

/// A full snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub iters: usize,
    pub retarget: Vec<RetargetRow>,
    pub compile: Vec<CompileRow>,
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Per-phase medians over the reports of the measured runs, keeping the
/// first report's phase order.
fn phase_medians(reports: &[Report]) -> Vec<(&'static str, u128)> {
    let mut labels: Vec<&'static str> = Vec::new();
    for report in reports {
        for p in &report.phases {
            if !labels.contains(&p.label) {
                labels.push(p.label);
            }
        }
    }
    labels
        .into_iter()
        .map(|label| {
            let samples = reports
                .iter()
                .map(|r| r.phase_ns(label).unwrap_or(0) as u128)
                .collect();
            (label, median_ns(samples))
        })
        .collect()
}

/// Measures the snapshot: `iters` timed runs per measurement, median
/// reported.
pub fn measure(iters: usize) -> Snapshot {
    let iters = iters.max(1);
    let options = RetargetOptions::default();
    let mut retarget = Vec::new();
    let mut compile = Vec::new();
    for model in models() {
        let mut samples = Vec::with_capacity(iters);
        let mut reports = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            let target = Record::retarget(model.hdl, &options).expect("model retargets");
            std::hint::black_box(&target);
            samples.push(t.elapsed().as_nanos());
            reports.push(target.report().report.clone());
        }
        let target = Record::retarget(model.hdl, &options).expect("model retargets");
        retarget.push(RetargetRow {
            model: model.name,
            latency: latency_summary(&samples),
            median_ns: median_ns(samples),
            phases: phase_medians(&reports),
            bdd_nodes: target.manager().node_count(),
            templates: target.report().templates_extended,
            rules: target.report().rules,
            op_cache_hit_rate: target.manager().op_cache_hit_rate(),
            unique_avg_probe_len: target.manager().unique_avg_probe_len(),
        });
        // Straight-line kernels first (their rows are the regression
        // pins), then the control-flow kernels: on targets without a
        // program counter those fail with the `no-branch-path` class,
        // which the v2 failure-taxonomy gate records per pair.
        for kernel in kernels().into_iter().chain(control_kernels()) {
            let request = CompileRequest::new(kernel.source, kernel.function);
            // Counters via an explicit session (one compile, then read
            // the session gauges).
            let mut session = target.session();
            match session.compile(&request) {
                Ok(k) => {
                    let mut samples = Vec::with_capacity(iters);
                    let mut reports = Vec::with_capacity(iters);
                    for _ in 0..iters {
                        let t = Instant::now();
                        let timed = target.compile(&request).expect("compiles");
                        std::hint::black_box(&timed);
                        samples.push(t.elapsed().as_nanos());
                        reports.push(timed.report);
                    }
                    compile.push(CompileRow {
                        model: model.name,
                        kernel: kernel.name,
                        ok: true,
                        latency: latency_summary(&samples),
                        median_ns: median_ns(samples),
                        phases: phase_medians(&reports),
                        ops: k.ops.len(),
                        words: k.schedule.as_ref().map_or(0, |s| s.len()),
                        scratch_nodes: session.scratch_nodes(),
                        op_cache_hit_rate: session.bdd_op_cache_hit_rate(),
                        fail_phase: None,
                        fail_kind: None,
                        fail_message: None,
                    });
                }
                Err(e) => {
                    let class = e.classify();
                    compile.push(CompileRow {
                        model: model.name,
                        kernel: kernel.name,
                        ok: false,
                        median_ns: 0,
                        latency: LatencySummary::default(),
                        phases: Vec::new(),
                        ops: 0,
                        words: 0,
                        scratch_nodes: 0,
                        op_cache_hit_rate: 0.0,
                        fail_phase: Some(class.phase.label()),
                        fail_kind: Some(class.kind),
                        fail_message: Some(e.to_string()),
                    });
                }
            }
        }
    }
    Snapshot {
        iters,
        retarget,
        compile,
    }
}

/// Escapes a string per JSON rules (the Rust `{:?}` escaper writes
/// `\u{..}` for non-ASCII, which JSON does not accept).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a phase list as a JSON object in recording order.
fn phases_json(phases: &[(&'static str, u128)]) -> String {
    let inner: Vec<String> = phases
        .iter()
        .map(|(label, ns)| format!("{}: {ns}", json_str(label)))
        .collect();
    format!("{{{}}}", inner.join(", "))
}

/// Renders the v3 percentile members of one row.
fn latency_json(l: &LatencySummary) -> String {
    format!(
        "\"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}",
        l.p50_ns, l.p95_ns, l.p99_ns, l.max_ns
    )
}

impl Snapshot {
    /// Serializes the snapshot; `pre_pr` is an optional raw JSON value
    /// (typically carried over from the previous snapshot file) recording
    /// the numbers this tree was measured against.
    pub fn to_json(&self, pre_pr: Option<&str>) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(out, "  \"iters\": {},", self.iters);
        if let Some(raw) = pre_pr {
            let _ = writeln!(out, "  \"pre_pr\": {},", raw.trim());
        }
        out.push_str("  \"retarget\": [\n");
        for (i, r) in self.retarget.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"model\": {:?}, \"median_ns\": {}, {}, \"phases\": {}, \"bdd_nodes\": {}, \"templates\": {}, \"rules\": {}, \"op_cache_hit_rate\": {:.4}, \"unique_avg_probe_len\": {:.4}}}",
                r.model, r.median_ns, latency_json(&r.latency), phases_json(&r.phases), r.bdd_nodes, r.templates, r.rules, r.op_cache_hit_rate, r.unique_avg_probe_len
            );
            out.push_str(if i + 1 < self.retarget.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"compile\": [\n");
        for (i, c) in self.compile.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"model\": {:?}, \"kernel\": {:?}, \"ok\": {}, \"median_ns\": {}, {}, \"phases\": {}, \"ops\": {}, \"words\": {}, \"scratch_nodes\": {}, \"op_cache_hit_rate\": {:.4}",
                c.model, c.kernel, c.ok, c.median_ns, latency_json(&c.latency), phases_json(&c.phases), c.ops, c.words, c.scratch_nodes, c.op_cache_hit_rate
            );
            if let (Some(phase), Some(kind)) = (c.fail_phase, &c.fail_kind) {
                let _ = write!(
                    out,
                    ", \"fail_phase\": {}, \"fail_kind\": {}, \"fail_message\": {}",
                    json_str(phase),
                    json_str(kind),
                    json_str(c.fail_message.as_deref().unwrap_or("")),
                );
            }
            out.push('}');
            out.push_str(if i + 1 < self.compile.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (no serde in the offline build).
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a position-annotated message on malformed input.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                members.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        None => Err("unexpected end of input".into()),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    // Collect raw bytes and validate UTF-8 once at the end, so multi-byte
    // characters in the input survive intact.
    let mut out: Vec<u8> = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return String::from_utf8(out).map_err(|_| "string is not valid UTF-8".into()),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("bad escape")?;
                *pos += 1;
                match esc {
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'u' => {
                        let cp = parse_hex4(b, pos)?;
                        // Combine a UTF-16 surrogate pair if present.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                *pos += 2;
                                let lo = parse_hex4(b, pos)?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(cp)
                        };
                        let ch = ch.ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            other => out.push(other),
        }
    }
    Err("unterminated string".into())
}

/// Parses exactly four hex digits (the payload of a `\uXXXX` escape).
fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    let digits = b
        .get(*pos..*pos + 4)
        .and_then(|d| std::str::from_utf8(d).ok())
        .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
    let cp = u32::from_str_radix(digits, 16)
        .map_err(|_| format!("bad \\u escape `{digits}` at byte {pos}"))?;
    *pos += 4;
    Ok(cp)
}

// ---------------------------------------------------------------------------
// Counter drift check (the CI bench-smoke gate).
// ---------------------------------------------------------------------------

/// Schema version of a parsed snapshot (`1` for
/// `record-perf-snapshot/v1`, and so on).
///
/// # Errors
///
/// A message naming the unrecognized schema string.
pub fn schema_version(checked_in: &Json) -> Result<u32, String> {
    let schema = checked_in
        .get("schema")
        .and_then(Json::as_str)
        .unwrap_or("<missing>");
    schema
        .strip_prefix("record-perf-snapshot/v")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("unrecognized snapshot schema `{schema}`"))
}

/// Compares the machine-independent counters of a freshly measured
/// snapshot against a checked-in snapshot file, returning human-readable
/// drift findings (empty = no drift).
///
/// Only counters are compared — medians are machine-dependent and may
/// move freely; hit rates and probe lengths are deterministic but are
/// *reported*, not gated, because improving them is this trajectory's
/// whole point.  The comparison is bidirectional: a snapshot row with no
/// measured counterpart (a model or kernel silently dropped from the
/// suite) is drift too.
///
/// Version-gated: v1 snapshots (no failure taxonomy) get the counter
/// checks only; against v2 snapshots every failing pair's
/// `fail_phase`/`fail_kind` classification is gated too, so a pair
/// cannot silently change *why* it fails.
pub fn counter_drift(measured: &Snapshot, checked_in: &Json) -> Vec<String> {
    let mut drift = Vec::new();
    let version = match schema_version(checked_in) {
        Ok(v) => v,
        Err(e) => return vec![e],
    };
    // Snapshot rows the measurement no longer produces.
    for (section, key2) in [("retarget", None), ("compile", Some("kernel"))] {
        for row in checked_in
            .get(section)
            .and_then(Json::as_arr)
            .unwrap_or(&[])
        {
            let model = row.get("model").and_then(Json::as_str).unwrap_or("?");
            let kernel = key2.map(|k| row.get(k).and_then(Json::as_str).unwrap_or("?"));
            let found = match kernel {
                None => measured.retarget.iter().any(|r| r.model == model),
                Some(kernel) => measured
                    .compile
                    .iter()
                    .any(|c| c.model == model && c.kernel == kernel),
            };
            if !found {
                drift.push(match kernel {
                    None => format!("snapshot model `{model}` was not measured (dropped?)"),
                    Some(k) => {
                        format!("snapshot compile `{model}`/`{k}` was not measured (dropped?)")
                    }
                });
            }
        }
    }
    let num = |obj: &Json, key: &str| obj.get(key).and_then(Json::as_num);
    let empty = [];
    let rows = checked_in
        .get("retarget")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    for r in &measured.retarget {
        let Some(row) = rows
            .iter()
            .find(|row| row.get("model").and_then(Json::as_str) == Some(r.model))
        else {
            drift.push(format!("model `{}` missing from snapshot", r.model));
            continue;
        };
        for (name, got) in [
            ("bdd_nodes", r.bdd_nodes as f64),
            ("templates", r.templates as f64),
            ("rules", r.rules as f64),
        ] {
            let want = num(row, name);
            if want != Some(got) {
                drift.push(format!(
                    "{}: {name} drifted: measured {got}, snapshot {want:?}",
                    r.model
                ));
            }
        }
    }
    let rows = checked_in
        .get("compile")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    for c in &measured.compile {
        let Some(row) = rows.iter().find(|row| {
            row.get("model").and_then(Json::as_str) == Some(c.model)
                && row.get("kernel").and_then(Json::as_str) == Some(c.kernel)
        }) else {
            drift.push(format!(
                "compile `{}`/`{}` missing from snapshot",
                c.model, c.kernel
            ));
            continue;
        };
        let ok = row.get("ok") == Some(&Json::Bool(true));
        if ok != c.ok {
            drift.push(format!(
                "{}/{}: compile outcome drifted: snapshot ok={ok} -> measured ok={}",
                c.model, c.kernel, c.ok
            ));
            continue;
        }
        for (name, got) in [("ops", c.ops as f64), ("words", c.words as f64)] {
            let want = num(row, name);
            if want != Some(got) {
                drift.push(format!(
                    "{}/{}: {name} drifted: snapshot {want:?} -> measured {got}",
                    c.model, c.kernel
                ));
            }
        }
        // The failure-class gate (v2 snapshots only): a pair that fails
        // for a *different reason* than recorded is semantic drift even
        // though the pass/fail table looks unchanged.
        if version >= 2 && !c.ok {
            let want_phase = row.get("fail_phase").and_then(Json::as_str).unwrap_or("?");
            let want_kind = row.get("fail_kind").and_then(Json::as_str).unwrap_or("?");
            let got_phase = c.fail_phase.unwrap_or("?");
            let got_kind = c.fail_kind.as_deref().unwrap_or("?");
            if (want_phase, want_kind) != (got_phase, got_kind) {
                drift.push(format!(
                    "{}/{}: failure class drifted: snapshot {want_phase}/{want_kind} -> \
                     measured {got_phase}/{got_kind}",
                    c.model, c.kernel
                ));
            }
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            iters: 2,
            retarget: vec![RetargetRow {
                model: "demo",
                median_ns: 123,
                latency: LatencySummary {
                    p50_ns: 123,
                    p95_ns: 127,
                    p99_ns: 127,
                    max_ns: 125,
                },
                phases: vec![("parse", 60), ("extract", 50)],
                bdd_nodes: 45,
                templates: 6,
                rules: 7,
                op_cache_hit_rate: 0.5,
                unique_avg_probe_len: 1.25,
            }],
            compile: vec![
                CompileRow {
                    model: "demo",
                    kernel: "fir",
                    ok: true,
                    median_ns: 999,
                    latency: LatencySummary {
                        p50_ns: 1023,
                        p95_ns: 1023,
                        p99_ns: 1023,
                        max_ns: 1001,
                    },
                    phases: vec![("select", 500), ("emit", 400)],
                    ops: 10,
                    words: 8,
                    scratch_nodes: 3,
                    op_cache_hit_rate: 0.75,
                    fail_phase: None,
                    fail_kind: None,
                    fail_message: None,
                },
                CompileRow {
                    model: "demo",
                    kernel: "matmul",
                    ok: false,
                    median_ns: 0,
                    latency: LatencySummary::default(),
                    phases: Vec::new(),
                    ops: 0,
                    words: 0,
                    scratch_nodes: 0,
                    op_cache_hit_rate: 0.0,
                    fail_phase: Some("select"),
                    fail_kind: Some("missing-hardware(mul)".to_owned()),
                    fail_message: Some("no rule for `mul`".to_owned()),
                },
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let snap = sample_snapshot();
        let json = snap.to_json(Some("{\"note\": \"seed\"}"));
        let parsed = parse_json(&json).expect("parses");
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(schema_version(&parsed), Ok(3));
        assert_eq!(
            parsed
                .get("pre_pr")
                .and_then(|p| p.get("note"))
                .and_then(Json::as_str),
            Some("seed")
        );
        // Phases and the failure taxonomy survive the round trip.
        let rows = parsed.get("compile").and_then(Json::as_arr).unwrap();
        assert_eq!(
            rows[0]
                .get("phases")
                .and_then(|p| p.get("select"))
                .and_then(Json::as_num),
            Some(500.0)
        );
        assert_eq!(
            rows[1].get("fail_kind").and_then(Json::as_str),
            Some("missing-hardware(mul)")
        );
        // v3 percentile members ride on every timed row.
        assert_eq!(rows[0].get("p50_ns").and_then(Json::as_num), Some(1023.0));
        assert_eq!(rows[0].get("max_ns").and_then(Json::as_num), Some(1001.0));
        let retargets = parsed.get("retarget").and_then(Json::as_arr).unwrap();
        assert_eq!(
            retargets[0].get("p95_ns").and_then(Json::as_num),
            Some(127.0)
        );
        // No drift against itself.
        assert!(counter_drift(&snap, &parsed).is_empty());
        // A counter change is caught.
        let mut other = snap.clone();
        other.retarget[0].bdd_nodes = 46;
        let findings = counter_drift(&other, &parsed);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("bdd_nodes"));
        // Dropping a measured row is caught too (the gate is
        // bidirectional).
        let mut dropped = snap.clone();
        dropped.compile.clear();
        let findings = counter_drift(&dropped, &parsed);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].contains("was not measured"));
    }

    #[test]
    fn failure_class_drift_is_gated_on_v2_only() {
        let snap = sample_snapshot();
        let parsed = parse_json(&snap.to_json(None)).expect("parses");
        // Same pair still fails, but for a different reason: caught.
        let mut reclassified = snap.clone();
        reclassified.compile[1].fail_kind = Some("selector-gap".to_owned());
        let findings = counter_drift(&reclassified, &parsed);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].contains("missing-hardware(mul) -> measured select/selector-gap"),
            "{findings:?}"
        );
        // The same comparison against a v1 snapshot (no fail_* members)
        // is not gated: v1 recorded no classes to hold the tree to.
        let v1_json = snap
            .to_json(None)
            .replace(SCHEMA, "record-perf-snapshot/v1");
        let v1 = parse_json(&v1_json).expect("parses");
        assert!(counter_drift(&reclassified, &v1).is_empty());
        // An unknown schema is itself a finding, not a silent pass.
        let bad = parse_json("{\"schema\": \"something-else\"}").expect("parses");
        let findings = counter_drift(&snap, &bad);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("unrecognized"));
    }

    #[test]
    fn strings_survive_unicode_and_escapes() {
        // Multi-byte UTF-8 straight through.
        let parsed = parse_json("{\"note\": \"em — dash\"}").expect("parses");
        assert_eq!(parsed.get("note").and_then(Json::as_str), Some("em — dash"));
        // \uXXXX escapes, including a surrogate pair.
        let parsed = parse_json(r#"{"s": "a\u00e9b \ud83d\ude00"}"#).expect("parses");
        assert_eq!(
            parsed.get("s").and_then(Json::as_str),
            Some("a\u{e9}b \u{1F600}")
        );
    }
}
