//! Benchmark harness: regenerates the paper's Table 3 and Figure 2.
//!
//! * `cargo run -p record-bench --bin table3` prints the retargeting-time
//!   table (template counts + per-phase times for all six processors).
//! * `cargo run -p record-bench --bin figure2` prints the relative code
//!   size chart data (hand-written = 100 %) for the ten DSPstone kernels on
//!   the TMS320C25-like model, baseline compiler vs RECORD.
//! * `cargo bench -p record-bench` measures retargeting and compilation
//!   with criterion, plus the ablations called out in DESIGN.md.

use record_core::{mem_traffic, CompileError, CompileRequest, Record, RetargetOptions, Target};
use record_targets::{kernels, models, Kernel, TargetModel};

pub mod snapshot;

/// One Figure 2 data point.
#[derive(Debug, Clone)]
pub struct Figure2Row {
    pub kernel: &'static str,
    pub hand_ops: usize,
    pub record_size: usize,
    pub baseline_size: usize,
    /// Data-memory reads+writes of the allocated RECORD code.
    pub record_mem: usize,
    /// Data-memory reads+writes with the register allocator off.
    pub unalloc_mem: usize,
    /// Data-memory reads+writes of the baseline compiler's code.
    pub baseline_mem: usize,
    /// Identity reloads the allocator removed.
    pub reloads_eliminated: usize,
    /// Dead stores the allocator removed.
    pub stores_eliminated: usize,
    /// Residencies lost while still live (reloads forced to stay).
    pub spills: usize,
}

impl Figure2Row {
    /// RECORD bar height in percent (hand-written = 100).
    pub fn record_pct(&self) -> f64 {
        100.0 * self.record_size as f64 / self.hand_ops as f64
    }

    /// Baseline-compiler bar height in percent.
    pub fn baseline_pct(&self) -> f64 {
        100.0 * self.baseline_size as f64 / self.hand_ops as f64
    }

    /// Memory-traffic reduction of allocation in percent of the
    /// unallocated traffic.
    pub fn mem_reduction_pct(&self) -> f64 {
        if self.unalloc_mem == 0 {
            return 0.0;
        }
        100.0 * (self.unalloc_mem - self.record_mem) as f64 / self.unalloc_mem as f64
    }
}

/// Retargets a model (convenience wrapper).
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn retarget(
    model: &TargetModel,
    options: &RetargetOptions,
) -> Result<Target, record_core::PipelineError> {
    Record::retarget(model.hdl, options)
}

/// Compiles one kernel both ways on an already-retargeted C25 target.
///
/// # Errors
///
/// Propagates compile errors.
// `CompileError` outweighs `Figure2Row`; it is the workspace-wide error
// type and not worth boxing for this one reporting helper.
#[allow(clippy::result_large_err)]
pub fn figure2_row(target: &Target, kernel: &Kernel) -> Result<Figure2Row, CompileError> {
    let rec = target.compile(&CompileRequest::new(kernel.source, kernel.function))?;
    // Only the vertical op list is read from this variant, so skip the
    // compaction pass.
    let unalloc = target.compile(
        &CompileRequest::new(kernel.source, kernel.function)
            .compaction(false)
            .allocate_registers(false),
    )?;
    let base = target.compile(
        &CompileRequest::new(kernel.source, kernel.function)
            .baseline(true)
            .compaction(false),
    )?;
    let dm = target.data_memory()?;
    let traffic = |ops: &[record_core::RtOp]| {
        let (r, w) = mem_traffic(ops, dm);
        r + w
    };
    let alloc = rec.alloc.clone().unwrap_or_default();
    Ok(Figure2Row {
        kernel: kernel.name,
        hand_ops: kernel.hand_ops,
        record_size: rec.code_size(),
        baseline_size: base.code_size(),
        record_mem: traffic(&rec.ops),
        unalloc_mem: traffic(&unalloc.ops),
        baseline_mem: traffic(&base.ops),
        reloads_eliminated: alloc.reloads_eliminated,
        stores_eliminated: alloc.stores_eliminated,
        spills: alloc.spills,
    })
}

/// Computes the full Figure 2 dataset.
///
/// # Errors
///
/// Propagates retargeting and compile errors (boxed: the two phases fail
/// with different types).
#[allow(clippy::result_large_err)]
pub fn figure2(options: &RetargetOptions) -> Result<Vec<Figure2Row>, Box<dyn std::error::Error>> {
    let model = models::model("tms320c25").expect("c25 model exists");
    let target = Record::retarget(model.hdl, options)?;
    Ok(kernels::kernels()
        .iter()
        .map(|k| figure2_row(&target, k))
        .collect::<Result<Vec<_>, _>>()?)
}

/// All models, for Table 3 sweeps.
pub fn all_models() -> [TargetModel; 6] {
    models::models()
}
