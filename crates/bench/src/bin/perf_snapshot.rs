//! Measures the perf snapshot (`BENCH_*.json`): retargeting time per
//! model, compile time per kernel x model pair, and the
//! machine-independent counters future perf PRs are gated on.
//!
//! ```text
//! perf_snapshot [--iters N] [--out FILE] [--check FILE] [--carry-pre-pr FILE] [--phases]
//! ```
//!
//! * `--iters N` — timed runs per measurement (median reported);
//!   default 20.  CI uses a tiny count because it only reads counters.
//! * `--out FILE` — write the snapshot JSON there (stdout otherwise).
//! * `--carry-pre-pr FILE` — copy the `"pre_pr"` member of an existing
//!   snapshot into the new one, so the trajectory keeps its anchor when
//!   refreshed.
//! * `--check FILE` — compare measured counters (BDD node count,
//!   template/rule counts, emitted ops/words) and, against a v2
//!   snapshot, the failure class of every `ok: false` pair, against a
//!   checked-in snapshot; exit non-zero on drift.  This is the
//!   bench-smoke gate: perf PRs must not silently change semantics.
//! * `--phases` — print human-readable per-phase median tables (one per
//!   model retarget, one per compiling kernel x model pair) instead of
//!   the snapshot JSON.

use record_bench::snapshot::{counter_drift, measure, parse_json, Json};
use record_core::{PhaseNs, Report};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut iters = 20usize;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut carry: Option<String> = None;
    let mut phases = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--iters" => iters = value("--iters").parse().expect("--iters takes a number"),
            "--out" => out = Some(value("--out")),
            "--check" => check = Some(value("--check")),
            "--carry-pre-pr" => carry = Some(value("--carry-pre-pr")),
            "--phases" => phases = true,
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: perf_snapshot [--iters N] [--out FILE] [--check FILE] [--carry-pre-pr FILE] [--phases]");
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!("measuring perf snapshot ({iters} iters per point)...");
    let snap = measure(iters);

    if phases {
        let table = |title: &str, medians: &[(&'static str, u128)]| {
            let report = Report {
                phases: medians
                    .iter()
                    .map(|&(label, ns)| PhaseNs {
                        label,
                        ns: ns as u64,
                    })
                    .collect(),
                counters: Vec::new(),
            };
            print!("{}", report.render_table(title));
        };
        for r in &snap.retarget {
            table(
                &format!("retarget {} (median of {iters})", r.model),
                &r.phases,
            );
        }
        for c in &snap.compile {
            if c.ok {
                table(
                    &format!("compile {}/{} (median of {iters})", c.model, c.kernel),
                    &c.phases,
                );
            } else {
                println!(
                    "compile {}/{}: FAILS {}/{}",
                    c.model,
                    c.kernel,
                    c.fail_phase.unwrap_or("?"),
                    c.fail_kind.as_deref().unwrap_or("?")
                );
            }
        }
        return ExitCode::SUCCESS;
    }

    if let Some(path) = check {
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read snapshot `{path}`: {e}"));
        let checked_in = parse_json(&src).unwrap_or_else(|e| panic!("bad snapshot `{path}`: {e}"));
        let drift = counter_drift(&snap, &checked_in);
        if drift.is_empty() {
            eprintln!(
                "counters match `{path}` ({} retarget rows, {} compile rows)",
                snap.retarget.len(),
                snap.compile.len()
            );
            return ExitCode::SUCCESS;
        }
        eprintln!("counter drift against `{path}`:");
        for d in &drift {
            eprintln!("  {d}");
        }
        eprintln!(
            "(if the change is intentional, refresh the snapshot: \
             cargo run --release -p record-bench --bin perf_snapshot -- \
             --carry-pre-pr {path} --out {path})"
        );
        return ExitCode::FAILURE;
    }

    // Carry the trajectory anchor forward, if asked.
    let pre_pr_raw = carry.map(|path| {
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read snapshot `{path}`: {e}"));
        let parsed = parse_json(&src).unwrap_or_else(|e| panic!("bad snapshot `{path}`: {e}"));
        render_raw(
            parsed
                .get("pre_pr")
                .unwrap_or_else(|| panic!("`{path}` has no pre_pr member")),
        )
    });
    let json = snap.to_json(pre_pr_raw.as_deref());
    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write `{path}`: {e}"));
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

/// Re-renders a parsed JSON value (used to carry `pre_pr` forward).
fn render_raw(v: &Json) -> String {
    match v {
        Json::Null => "null".into(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Json::Str(s) => format!("{s:?}"),
        Json::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render_raw).collect();
            format!("[{}]", inner.join(", "))
        }
        Json::Obj(members) => {
            let inner: Vec<String> = members
                .iter()
                .map(|(k, v)| format!("{k:?}: {}", render_raw(v)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}
