//! Regenerates the paper's Figure 2: relative code size (hand-written =
//! 100 %) on the TMS320C25-like model, baseline compiler (the paper's TI C
//! compiler bar) vs RECORD.
//!
//! Pass `--no-commutativity` to reproduce ablation A from DESIGN.md.

use record_core::RetargetOptions;
use record_rtl::{ExtensionOptions, TransformLibrary};

fn main() {
    let no_comm = std::env::args().any(|a| a == "--no-commutativity");
    let mut options = RetargetOptions::default();
    if no_comm {
        options.extension = ExtensionOptions {
            commutativity: false,
            max_variants_per_template: 16,
            library: TransformLibrary::standard(),
        };
        println!("(ablation: commutative extension disabled)");
    }
    println!("Figure 2: relative code size, hand-written = 100% (TMS320C25-like)");
    println!(
        "{:<18} {:>6} {:>8} {:>8} {:>10} {:>10}",
        "kernel", "hand", "record", "baseline", "record%", "baseline%"
    );
    match record_bench::figure2(&options) {
        Ok(rows) => {
            for r in &rows {
                println!(
                    "{:<18} {:>6} {:>8} {:>8} {:>9.0}% {:>9.0}%",
                    r.kernel,
                    r.hand_ops,
                    r.record_size,
                    r.baseline_size,
                    r.record_pct(),
                    r.baseline_pct()
                );
            }
            let avg_r: f64 = rows.iter().map(Figure2RowExt::rp).sum::<f64>() / rows.len() as f64;
            let avg_b: f64 = rows.iter().map(Figure2RowExt::bp).sum::<f64>() / rows.len() as f64;
            println!("{:<18} {:>6} {:>8} {:>8} {:>9.0}% {:>9.0}%", "average", "", "", "", avg_r, avg_b);
        }
        Err(e) => println!("FAILED: {e}"),
    }
    println!();
    println!("paper shape: RECORD bars near 100%, below the target-specific compiler");
    println!("on every kernel; largest compiler overheads on MAC-dominated kernels.");
}

trait Figure2RowExt {
    fn rp(&self) -> f64;
    fn bp(&self) -> f64;
}
impl Figure2RowExt for record_bench::Figure2Row {
    fn rp(&self) -> f64 {
        self.record_pct()
    }
    fn bp(&self) -> f64 {
        self.baseline_pct()
    }
}
