//! Regenerates the paper's Figure 2: relative code size (hand-written =
//! 100 %) on the TMS320C25-like model, baseline compiler (the paper's TI C
//! compiler bar) vs RECORD, plus the register allocator's memory-traffic
//! reduction per kernel.
//!
//! Pass `--no-commutativity` to reproduce ablation A from DESIGN.md.

use record_core::RetargetOptions;
use record_rtl::{ExtensionOptions, TransformLibrary};

fn main() {
    let no_comm = std::env::args().any(|a| a == "--no-commutativity");
    let mut options = RetargetOptions::default();
    if no_comm {
        options.extension = ExtensionOptions {
            commutativity: false,
            max_variants_per_template: 16,
            library: TransformLibrary::standard(),
        };
        println!("(ablation: commutative extension disabled)");
    }
    println!("Figure 2: relative code size, hand-written = 100% (TMS320C25-like)");
    println!(
        "{:<18} {:>6} {:>8} {:>8} {:>8} {:>9} | {:>7} {:>9} {:>9} {:>6} {:>6}",
        "kernel",
        "hand",
        "record",
        "baseline",
        "record%",
        "baseline%",
        "mem r+w",
        "(unalloc)",
        "(basel.)",
        "saved",
        "spills"
    );
    match record_bench::figure2(&options) {
        Ok(rows) => {
            for r in &rows {
                println!(
                    "{:<18} {:>6} {:>8} {:>8} {:>7.0}% {:>8.0}% | {:>7} {:>9} {:>9} {:>5.0}% {:>6}",
                    r.kernel,
                    r.hand_ops,
                    r.record_size,
                    r.baseline_size,
                    r.record_pct(),
                    r.baseline_pct(),
                    r.record_mem,
                    r.unalloc_mem,
                    r.baseline_mem,
                    r.mem_reduction_pct(),
                    r.spills,
                );
            }
            let avg_r: f64 = rows.iter().map(|r| r.record_pct()).sum::<f64>() / rows.len() as f64;
            let avg_b: f64 = rows.iter().map(|r| r.baseline_pct()).sum::<f64>() / rows.len() as f64;
            let avg_m: f64 =
                rows.iter().map(|r| r.mem_reduction_pct()).sum::<f64>() / rows.len() as f64;
            println!(
                "{:<18} {:>6} {:>8} {:>8} {:>7.0}% {:>8.0}% | {:>7} {:>9} {:>9} {:>5.0}% {:>6}",
                "average", "", "", "", avg_r, avg_b, "", "", "", avg_m, ""
            );
        }
        Err(e) => println!("FAILED: {e}"),
    }
    println!();
    println!("paper shape: RECORD bars near 100%, below the target-specific compiler");
    println!("on every kernel; largest compiler overheads on MAC-dominated kernels.");
    println!("`mem r+w` counts data-memory accesses of the allocated code; `(unalloc)`");
    println!("is the same path with the register allocator off, `(basel.)` the naive");
    println!("baseline compiler's traffic.");
}
