//! CI trace smoke test: records a Chrome trace for one retarget plus a
//! traced compile batch, validates it, and writes it out.
//!
//! ```text
//! trace_smoke [--model NAME] [--out FILE]
//! ```
//!
//! Three layers of validation run before the file is written:
//!
//! 1. [`Trace::validate`] on the in-memory trace — balanced begin/end
//!    pairs, monotonic timestamps per lane;
//! 2. [`record_core::validate_chrome_json_shape`] on the serialized
//!    JSON — every `"B"` has an `"E"`, quotes and braces balance;
//! 3. the snapshot JSON parser on the same bytes — the file is
//!    well-formed JSON, not just balanced.
//!
//! The written file loads directly in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.

use record_bench::snapshot::parse_json;
use record_core::{
    validate_chrome_json_shape, Collector, CompileRequest, Probe, Record, RetargetOptions, Trace,
};
use record_targets::{kernels, models};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut model_name = "tms320c25".to_owned();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--model" => model_name = value("--model"),
            "--out" => out = Some(value("--out")),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: trace_smoke [--model NAME] [--out FILE]");
                return ExitCode::FAILURE;
            }
        }
    }

    let model =
        models::model(&model_name).unwrap_or_else(|| panic!("no model named `{model_name}`"));

    // Lane 1000: the retarget run (batch lanes are request indices, so a
    // high id keeps the retarget lane visually separate).
    let mut sink = Collector::new(1000);
    let target = {
        let mut probe = Probe::new(&mut sink);
        Record::retarget_probed(model.hdl, &RetargetOptions::default(), &mut probe)
            .expect("model retargets")
    };
    let retarget_trace = sink.into_trace();

    // A traced batch over every kernel: one lane per request, merged
    // lock-free at join.
    let requests: Vec<_> = kernels()
        .iter()
        .map(|k| CompileRequest::new(k.source, k.function))
        .collect();
    let (results, compile_trace) = target.compile_batch_traced(&requests);
    let compiled = results.iter().filter(|r| r.is_ok()).count();

    let trace = Trace::merge([retarget_trace, compile_trace]);
    if let Err(e) = trace.validate() {
        eprintln!("trace validation failed: {e}");
        return ExitCode::FAILURE;
    }

    let json = trace.to_chrome_json(&format!("record: {model_name}"));
    if let Err(e) = validate_chrome_json_shape(&json) {
        eprintln!("chrome JSON shape check failed: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = parse_json(&json) {
        eprintln!("chrome JSON does not parse: {e}");
        return ExitCode::FAILURE;
    }

    eprintln!(
        "trace ok: {} lanes, {} events ({compiled}/{} kernels compile on {model_name})",
        trace.lanes.len(),
        trace.event_count(),
        requests.len()
    );
    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write `{path}`: {e}"));
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}
