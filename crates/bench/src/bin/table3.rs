//! Regenerates the paper's Table 3: number of RT templates and retargeting
//! time per target processor, plus aggregate register-allocation counters
//! over the Figure 2 kernels that compile on each model.

use record_core::CompileRequest;
use record_targets::kernels;

fn main() {
    println!("Table 3: retargeting statistics (paper: templates / SPARC-20 CPU s)");
    println!(
        "{:<12} {:>10} {:>10} {:>8} {:>12}   {:>7} {:>7} {:>7}   phases (frontend/ISE/extend/grammar/selector)",
        "processor", "extracted", "extended", "rules", "time", "kernels", "saved", "spills"
    );
    for model in record_bench::all_models() {
        match record_bench::retarget(&model, &Default::default()) {
            Ok(target) => {
                // Aggregate allocator counters over the kernels this
                // machine can compile at all, batched through the
                // frozen artifact (only allocator counters are read:
                // skip compaction).
                let requests: Vec<_> = kernels::kernels()
                    .iter()
                    .map(|k| CompileRequest::new(k.source, k.function).compaction(false))
                    .collect();
                let mut compiled = 0usize;
                let mut saved = 0usize;
                let mut spills = 0usize;
                for c in target.compile_batch(&requests).into_iter().flatten() {
                    compiled += 1;
                    if let Some(a) = &c.alloc {
                        saved += a.accesses_saved();
                        spills += a.spills;
                    }
                }
                let s = target.report();
                println!(
                    "{:<12} {:>10} {:>10} {:>8} {:>10.2?}   {:>7} {:>7} {:>7}   {:.2?}/{:.2?}/{:.2?}/{:.2?}/{:.2?}",
                    model.name,
                    s.templates_extracted,
                    s.templates_extended,
                    s.rules,
                    s.t_total(),
                    compiled,
                    saved,
                    spills,
                    s.t_frontend(),
                    s.t_extract(),
                    s.t_extend(),
                    s.t_grammar(),
                    s.t_selector(),
                );
            }
            Err(e) => println!("{:<12} FAILED: {e}", model.name),
        }
    }
    println!();
    println!("`kernels` = Figure 2 kernels the machine compiles; `saved` = data-memory");
    println!("accesses removed by the register allocator; `spills` = residencies lost.");
    println!("paper reference: demo 439/356s  ref 1703/84s  manocpu 207/6.3s");
    println!("                 tanenbaum 232/11.7s  bass_boost 89/3.7s  TMS320C25 356/165s");
}
