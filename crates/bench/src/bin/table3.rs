//! Regenerates the paper's Table 3: number of RT templates and retargeting
//! time per target processor.

fn main() {
    println!("Table 3: retargeting statistics (paper: templates / SPARC-20 CPU s)");
    println!(
        "{:<12} {:>10} {:>10} {:>8} {:>12}   phases (frontend/ISE/extend/grammar/selector)",
        "processor", "extracted", "extended", "rules", "time"
    );
    for model in record_bench::all_models() {
        match record_bench::retarget(&model, &Default::default()) {
            Ok(target) => {
                let s = target.stats();
                println!(
                    "{:<12} {:>10} {:>10} {:>8} {:>10.2?}   {:.2?}/{:.2?}/{:.2?}/{:.2?}/{:.2?}",
                    model.name,
                    s.templates_extracted,
                    s.templates_extended,
                    s.rules,
                    s.t_total,
                    s.t_frontend,
                    s.t_extract,
                    s.t_extend,
                    s.t_grammar,
                    s.t_selector,
                );
            }
            Err(e) => println!("{:<12} FAILED: {e}", model.name),
        }
    }
    println!();
    println!("paper reference: demo 439/356s  ref 1703/84s  manocpu 207/6.3s");
    println!("                 tanenbaum 232/11.7s  bass_boost 89/3.7s  TMS320C25 356/165s");
}
