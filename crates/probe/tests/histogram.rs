//! Property tests for the log-bucketed latency histogram: percentile
//! readouts against a sorted-vector reference, merge order independence,
//! and cross-thread shard-merge determinism.

use proptest::prelude::*;
use record_probe::metrics::{bucket_of, bucket_upper_bound, Histogram, MetricsBuilder};

/// The reference readout: sort the raw observations, take the
/// rank-`ceil(q*n)` value, and widen it to its bucket's inclusive upper
/// bound clamped to the exact maximum — precisely the resolution the
/// histogram promises (values inside one power-of-two bucket are
/// indistinguishable; the tracked max tightens the top end).
fn reference_percentile(values: &[u64], q: f64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    let v = sorted[(rank - 1) as usize];
    bucket_upper_bound(bucket_of(v)).min(*sorted.last().unwrap())
}

/// Mixes magnitudes so buckets both collide (many values per bucket) and
/// spread (full u64 range, bucket 64 included).
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..16, 1u64..4096, 1_000u64..10_000_000, any::<u64>(),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn percentiles_match_sorted_reference(
        values in prop::collection::vec(value_strategy(), 0..200)
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(h.percentile(q), reference_percentile(&values, q), "q={}", q);
        }
    }

    #[test]
    fn merge_order_never_matters(
        chunks in prop::collection::vec(
            prop::collection::vec(value_strategy(), 0..40),
            0..8,
        )
    ) {
        // One histogram over every observation...
        let mut whole = Histogram::new();
        for &v in chunks.iter().flatten() {
            whole.observe(v);
        }
        // ...versus per-chunk histograms merged forward and in reverse.
        let parts: Vec<Histogram> = chunks
            .iter()
            .map(|chunk| {
                let mut h = Histogram::new();
                for &v in chunk {
                    h.observe(v);
                }
                h
            })
            .collect();
        let mut forward = Histogram::new();
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = Histogram::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        prop_assert_eq!(&forward, &whole);
        prop_assert_eq!(&backward, &whole);
    }
}

/// Four threads hammer their own shards; the merged readout must equal
/// the sequential reference and reproduce run-to-run — scrape output may
/// not depend on thread scheduling or shard layout.
#[test]
fn shard_merge_is_deterministic_across_threads() {
    let run = || {
        let mut b = MetricsBuilder::new();
        let hist = b.histogram("latency_ns", "per-thread observations", &[]);
        let total = b.counter("events_total", "per-thread increments", &[]);
        let registry = b.build();
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let shard = registry.shard();
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        shard.observe(hist, t * 1_000 + i);
                        shard.incr(total);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().expect("worker thread");
        }
        (
            registry.histogram(hist),
            registry.counter_value(total),
            registry.render_prometheus(),
        )
    };
    let (h1, c1, text1) = run();
    let (h2, c2, text2) = run();
    assert_eq!(c1, 4_000);
    assert_eq!((h2, c2), (h1.clone(), c1), "run-to-run determinism");
    assert_eq!(text1, text2, "byte-identical exposition across runs");

    let mut reference = Histogram::new();
    for t in 0..4u64 {
        for i in 0..1_000 {
            reference.observe(t * 1_000 + i);
        }
    }
    assert_eq!(h1, reference, "shard merge equals sequential reference");
}
