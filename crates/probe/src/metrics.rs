//! Fleet metrics: counters, gauges, and log-bucketed latency histograms,
//! recorded in lock-free shards and merged only at read time.
//!
//! The design splits *recording* from *reading*:
//!
//! * **Recording** happens on [`MetricsShard`]s — plain arrays of
//!   atomics, one slot per registered metric.  A worker thread owns (or
//!   shares) a shard and records with `fetch_add`/`fetch_max`, never a
//!   lock: the compile hot path stays wait-free no matter how often the
//!   scrape endpoint reads.
//! * **Reading** ([`MetricsRegistry::counter_value`],
//!   [`MetricsRegistry::histogram`], [`MetricsRegistry::render_prometheus`])
//!   walks every shard and sums.  Scrapes are rare and cheap; they pay
//!   the merge so the writers never do.
//!
//! Histograms use power-of-two buckets: bucket *i* counts values whose
//! bit length is *i* (bucket 0 is exactly zero), so observing is two
//! instructions (`leading_zeros` + `fetch_add`) and merging is vector
//! addition.  Quantile readout returns the inclusive upper bound of the
//! bucket the rank falls in, clamped to the exact tracked maximum —
//! deterministic, mergeable, and within 2x of the true value by
//! construction.
//!
//! The registry is built once ([`MetricsBuilder`]) so every metric has a
//! fixed slot index; shard creation and *labeled* counter families (rare
//! events like per-class failure counts) take a mutex, but neither is on
//! a request's hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Histogram bucket count: bucket `i` holds values with bit length `i`
/// (bucket 0 = the value zero), so 65 buckets cover all of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value falls in: its bit length (0 for zero).
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `i` holds (`2^i - 1`; 0 for bucket 0).
#[inline]
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// Slot index of a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Slot index of a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Slot index of a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Slot index of a registered labeled counter family (dynamic label
/// values, e.g. failure classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamilyId(usize);

/// What the exposition format needs to know about one metric.
#[derive(Debug, Clone)]
struct MetricDesc {
    name: String,
    help: String,
    /// Fixed label pairs rendered into every sample of this series.
    labels: Vec<(String, String)>,
}

impl MetricDesc {
    fn new(name: &str, help: &str, labels: &[(&str, &str)]) -> MetricDesc {
        MetricDesc {
            name: name.to_owned(),
            help: help.to_owned(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_owned(), v.to_owned()))
                .collect(),
        }
    }
}

/// Declares the metric schema; [`MetricsBuilder::build`] freezes it into
/// a [`MetricsRegistry`] with fixed slot indices.
#[derive(Debug, Default)]
pub struct MetricsBuilder {
    counters: Vec<MetricDesc>,
    gauges: Vec<MetricDesc>,
    histograms: Vec<MetricDesc>,
    families: Vec<(MetricDesc, String)>,
}

impl MetricsBuilder {
    /// An empty schema.
    pub fn new() -> MetricsBuilder {
        MetricsBuilder::default()
    }

    /// Registers a monotonically increasing counter; `labels` are fixed
    /// label pairs (several counters may share a name with different
    /// labels, forming one exposition family).
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> CounterId {
        self.counters.push(MetricDesc::new(name, help, labels));
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge (a set/adjust value, e.g. a queue depth).
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> GaugeId {
        self.gauges.push(MetricDesc::new(name, help, labels));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a log-bucketed histogram.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> HistogramId {
        self.histograms.push(MetricDesc::new(name, help, labels));
        HistogramId(self.histograms.len() - 1)
    }

    /// Registers a counter family whose series are keyed by a dynamic
    /// value of `label_key` (e.g. `class` for failure classes).
    /// Incrementing takes a mutex — reserve families for rare events.
    pub fn counter_family(&mut self, name: &str, help: &str, label_key: &str) -> FamilyId {
        self.families
            .push((MetricDesc::new(name, help, &[]), label_key.to_owned()));
        FamilyId(self.families.len() - 1)
    }

    /// Freezes the schema.
    pub fn build(self) -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::new(RegistryInner {
                counters: self.counters,
                histograms: self.histograms,
                gauges: self.gauges.iter().map(|_| AtomicI64::new(0)).collect(),
                gauge_descs: self.gauges,
                families: self.families,
                family_series: Mutex::new(BTreeMap::new()),
                shards: Mutex::new(Vec::new()),
            }),
        }
    }
}

struct RegistryInner {
    counters: Vec<MetricDesc>,
    histograms: Vec<MetricDesc>,
    gauge_descs: Vec<MetricDesc>,
    /// Gauges are set, not accumulated, so they live once on the registry
    /// (atomic store/add — still lock-free) instead of per shard.
    gauges: Vec<AtomicI64>,
    families: Vec<(MetricDesc, String)>,
    /// Dynamic series of the labeled families: (family, label value) →
    /// count.  Mutex-guarded; only rare events (failures) land here.
    family_series: Mutex<BTreeMap<(usize, String), u64>>,
    /// Every shard ever handed out; locked at shard creation and scrape
    /// time only.
    shards: Mutex<Vec<Arc<MetricsShard>>>,
}

/// A frozen metric schema plus all recorded values.  Cheap to clone
/// (`Arc` inside); readers merge shards on demand.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.inner.counters.len())
            .field("gauges", &self.inner.gauges.len())
            .field("histograms", &self.inner.histograms.len())
            .field(
                "shards",
                &self.inner.shards.lock().expect("shards lock").len(),
            )
            .finish()
    }
}

/// One recording shard: a flat array of atomics per metric kind.
///
/// Give each worker thread its own shard to keep cache lines unshared on
/// the hot path; sharing one shard between threads is still correct
/// (every slot is an atomic), just contended.
#[derive(Debug)]
pub struct MetricsShard {
    counters: Box<[AtomicU64]>,
    histograms: Box<[HistShard]>,
}

#[derive(Debug)]
struct HistShard {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistShard {
    fn new() -> HistShard {
        HistShard {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl MetricsShard {
    /// Adds `n` to a counter.  Wait-free.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.counters[id.0].fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter.  Wait-free.
    #[inline]
    pub fn incr(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Records one histogram observation.  Wait-free: a `leading_zeros`,
    /// two `fetch_add`s and a `fetch_max`.
    #[inline]
    pub fn observe(&self, id: HistogramId, value: u64) {
        let h = &self.histograms[id.0];
        h.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(value, Ordering::Relaxed);
        h.max.fetch_max(value, Ordering::Relaxed);
    }
}

impl MetricsRegistry {
    /// Creates a new recording shard registered with this registry.
    /// Takes the shard-list mutex — do this at worker startup, not per
    /// request.
    pub fn shard(&self) -> Arc<MetricsShard> {
        let shard = Arc::new(MetricsShard {
            counters: self
                .inner
                .counters
                .iter()
                .map(|_| AtomicU64::new(0))
                .collect(),
            histograms: self
                .inner
                .histograms
                .iter()
                .map(|_| HistShard::new())
                .collect(),
        });
        self.inner
            .shards
            .lock()
            .expect("shards lock")
            .push(Arc::clone(&shard));
        shard
    }

    /// Sets a gauge to an absolute value.  Lock-free.
    #[inline]
    pub fn gauge_set(&self, id: GaugeId, value: i64) {
        self.inner.gauges[id.0].store(value, Ordering::Relaxed);
    }

    /// Adjusts a gauge by a delta.  Lock-free.
    #[inline]
    pub fn gauge_add(&self, id: GaugeId, delta: i64) {
        self.inner.gauges[id.0].fetch_add(delta, Ordering::Relaxed);
    }

    /// The current gauge value.
    pub fn gauge_value(&self, id: GaugeId) -> i64 {
        self.inner.gauges[id.0].load(Ordering::Relaxed)
    }

    /// Increments a labeled-family series.  Takes a mutex — for rare
    /// events (failure classes), not hot-path counters.
    pub fn incr_family(&self, id: FamilyId, label_value: &str) {
        let mut series = self.inner.family_series.lock().expect("family lock");
        *series.entry((id.0, label_value.to_owned())).or_insert(0) += 1;
    }

    /// The merged value of a counter across all shards.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.inner
            .shards
            .lock()
            .expect("shards lock")
            .iter()
            .map(|s| s.counters[id.0].load(Ordering::Relaxed))
            .sum()
    }

    /// The labeled-family series as (label value, count) pairs, sorted by
    /// label value.
    pub fn family_values(&self, id: FamilyId) -> Vec<(String, u64)> {
        self.inner
            .family_series
            .lock()
            .expect("family lock")
            .iter()
            .filter(|((f, _), _)| *f == id.0)
            .map(|((_, label), count)| (label.clone(), *count))
            .collect()
    }

    /// The merged histogram across all shards.
    pub fn histogram(&self, id: HistogramId) -> Histogram {
        let mut merged = Histogram::new();
        for shard in self.inner.shards.lock().expect("shards lock").iter() {
            let h = &shard.histograms[id.0];
            for (slot, bucket) in merged.buckets.iter_mut().zip(h.buckets.iter()) {
                *slot += bucket.load(Ordering::Relaxed);
            }
            merged.sum = merged.sum.wrapping_add(h.sum.load(Ordering::Relaxed));
            merged.max = merged.max.max(h.max.load(Ordering::Relaxed));
        }
        merged
    }

    /// Renders every registered metric in the Prometheus text exposition
    /// format (version 0.0.4): `# HELP`/`# TYPE` headers per family,
    /// `_bucket`/`_sum`/`_count` series per histogram with cumulative
    /// power-of-two `le` bounds.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<String> = Vec::new();
        let mut header = |out: &mut String, name: &str, help: &str, kind: &str| {
            if !seen.iter().any(|s| s == name) {
                seen.push(name.to_owned());
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
            }
        };
        for (i, desc) in self.inner.counters.iter().enumerate() {
            header(&mut out, &desc.name, &desc.help, "counter");
            let value = self.counter_value(CounterId(i));
            out.push_str(&format!(
                "{}{} {}\n",
                desc.name,
                render_labels(&desc.labels, &[]),
                value
            ));
        }
        for (i, (desc, label_key)) in self.inner.families.iter().enumerate() {
            header(&mut out, &desc.name, &desc.help, "counter");
            for (label_value, count) in self.family_values(FamilyId(i)) {
                out.push_str(&format!(
                    "{}{} {}\n",
                    desc.name,
                    render_labels(&desc.labels, &[(label_key, &label_value)]),
                    count
                ));
            }
        }
        for (i, desc) in self.inner.gauge_descs.iter().enumerate() {
            header(&mut out, &desc.name, &desc.help, "gauge");
            out.push_str(&format!(
                "{}{} {}\n",
                desc.name,
                render_labels(&desc.labels, &[]),
                self.gauge_value(GaugeId(i))
            ));
        }
        for (i, desc) in self.inner.histograms.iter().enumerate() {
            header(&mut out, &desc.name, &desc.help, "histogram");
            let h = self.histogram(HistogramId(i));
            let top = h.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
            let mut cumulative = 0u64;
            for bucket in 0..=top {
                cumulative += h.buckets[bucket];
                let le = bucket_upper_bound(bucket).to_string();
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    desc.name,
                    render_labels(&desc.labels, &[("le", &le)]),
                    cumulative
                ));
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                desc.name,
                render_labels(&desc.labels, &[("le", "+Inf")]),
                h.count()
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                desc.name,
                render_labels(&desc.labels, &[]),
                h.sum
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                desc.name,
                render_labels(&desc.labels, &[]),
                h.count()
            ));
        }
        out
    }
}

/// Renders a label set (`{k="v",...}`; empty string when no labels).
fn render_labels(fixed: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if fixed.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut pairs: Vec<String> = fixed
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    pairs.extend(
        extra
            .iter()
            .map(|&(k, v)| format!("{k}=\"{}\"", escape_label(v))),
    );
    format!("{{{}}}", pairs.join(","))
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// A merged (or standalone) log-bucketed histogram: observation counts by
/// bit length, plus the exact sum and maximum.
///
/// Standalone use (no registry) covers offline aggregation — the bench
/// snapshot builds one per measurement series and reads percentiles off
/// it.  Merging is element-wise addition, so merge order never matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Observation count per bucket (index = bit length of the value).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Exact sum of all observations (wrapping).
    pub sum: u64,
    /// Exact maximum observation (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.sum = self.sum.wrapping_add(value);
        self.max = self.max.max(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Folds another histogram in (element-wise bucket addition, sum
    /// addition, max of maxes).  Commutative and associative: shard merge
    /// order never changes the result.
    pub fn merge(&mut self, other: &Histogram) {
        for (slot, &bucket) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot += bucket;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The quantile-`q` readout (`q` in `[0, 1]`): the inclusive upper
    /// bound of the bucket the rank-`ceil(q*count)` observation falls in,
    /// clamped to the exact tracked maximum.  Returns 0 when empty.
    ///
    /// Deterministic for a given bucket content: the answer only depends
    /// on the merged bucket counts and max, never on observation order or
    /// shard layout.
    pub fn percentile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cumulative = 0u64;
        for (bucket, &count) in self.buckets.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return bucket_upper_bound(bucket).min(self.max);
            }
        }
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_u64_by_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX] {
            assert!(v <= bucket_upper_bound(bucket_of(v)));
            if bucket_of(v) > 0 {
                assert!(v > bucket_upper_bound(bucket_of(v) - 1));
            }
        }
    }

    #[test]
    fn percentiles_land_on_bucket_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 200, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max, 5000);
        assert_eq!(h.sum, 5306);
        // p100 is clamped to the exact max, not the bucket bound (8191).
        assert_eq!(h.percentile(1.0), 5000);
        // p50 = rank 3 = value 3 -> bucket 2, upper bound 3.
        assert_eq!(h.percentile(0.5), 3);
        // Empty histogram reads zero everywhere.
        assert_eq!(Histogram::new().percentile(0.99), 0);
    }

    #[test]
    fn merge_is_order_independent() {
        let observations: [&[u64]; 3] = [&[1, 5, 9], &[100, 200], &[0, 0, 7000]];
        let mut parts: Vec<Histogram> = observations
            .iter()
            .map(|obs| {
                let mut h = Histogram::new();
                for &v in *obs {
                    h.observe(v);
                }
                h
            })
            .collect();
        let mut forward = Histogram::new();
        for p in &parts {
            forward.merge(p);
        }
        parts.reverse();
        let mut backward = Histogram::new();
        for p in &parts {
            backward.merge(p);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.count(), 8);
    }

    #[test]
    fn registry_merges_shards_at_read_time() {
        let mut b = MetricsBuilder::new();
        let hits = b.counter("cache_hits_total", "cache hits", &[]);
        let depth = b.gauge("queue_depth", "queued connections", &[]);
        let lat = b.histogram("latency_ns", "request latency", &[("op", "compile")]);
        let failures = b.counter_family("failures_total", "failures by class", "class");
        let registry = b.build();
        let s1 = registry.shard();
        let s2 = registry.shard();
        s1.incr(hits);
        s1.add(hits, 2);
        s2.incr(hits);
        s1.observe(lat, 100);
        s2.observe(lat, 3000);
        registry.gauge_set(depth, 4);
        registry.gauge_add(depth, -1);
        registry.incr_family(failures, "select/selector-gap");
        registry.incr_family(failures, "select/selector-gap");
        registry.incr_family(failures, "emit/no-spill-path");

        assert_eq!(registry.counter_value(hits), 4);
        assert_eq!(registry.gauge_value(depth), 3);
        let h = registry.histogram(lat);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max, 3000);
        assert_eq!(
            registry.family_values(failures),
            vec![
                ("emit/no-spill-path".to_owned(), 1),
                ("select/selector-gap".to_owned(), 2),
            ]
        );
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut b = MetricsBuilder::new();
        let hits = b.counter("cache_hits_total", "cache hits", &[]);
        let _depth = b.gauge("queue_depth", "queued connections", &[]);
        let lat = b.histogram("latency_ns", "request latency", &[("op", "compile")]);
        let failures = b.counter_family("failures_total", "failures by class", "class");
        let registry = b.build();
        let shard = registry.shard();
        shard.incr(hits);
        shard.observe(lat, 5);
        registry.incr_family(failures, "class\"with\\odd\nchars");
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE cache_hits_total counter"));
        assert!(text.contains("# HELP cache_hits_total cache hits"));
        assert!(text.contains("cache_hits_total 1"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 0"));
        assert!(text.contains("# TYPE latency_ns histogram"));
        assert!(text.contains("latency_ns_bucket{op=\"compile\",le=\"7\"} 1"));
        assert!(text.contains("latency_ns_bucket{op=\"compile\",le=\"+Inf\"} 1"));
        assert!(text.contains("latency_ns_sum{op=\"compile\"} 5"));
        assert!(text.contains("latency_ns_count{op=\"compile\"} 1"));
        assert!(
            text.contains(r#"failures_total{class="class\"with\\odd\nchars"} 1"#),
            "{text}"
        );
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(value.parse::<i64>().is_ok(), "bad sample line: {line}");
        }
    }
}
