//! Trace events, sinks, and the collected [`Trace`].

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// The innermost open span with the same label closed.
    End,
    /// A counter sample; `value` carries the payload.
    Counter,
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub kind: EventKind,
    /// Span or counter name.  `&'static str` by design: labels are part
    /// of the instrumentation vocabulary, not data, so recording one is
    /// a pointer copy.
    pub label: &'static str,
    /// Nanoseconds since the process trace epoch ([`crate::now_ns`]).
    pub ts_ns: u64,
    /// Counter payload (0 for spans).
    pub value: u64,
}

/// A sink receiving trace events from a [`crate::Probe`].
///
/// Implementations must be cheap — they are called at phase boundaries
/// of latency-sensitive code.  The first-party implementation is
/// [`Collector`].
pub trait TraceSink {
    /// A span opened at `ts_ns`.
    fn begin(&mut self, label: &'static str, ts_ns: u64);
    /// A span closed at `ts_ns`.
    fn end(&mut self, label: &'static str, ts_ns: u64);
    /// A counter sample.
    fn counter(&mut self, name: &'static str, value: u64, ts_ns: u64);
}

/// The first-party sink: an append-only event buffer for one lane.
///
/// A lane is one logical thread of work — one compile session, one
/// retarget run, one batch worker.  Collectors are owned by exactly one
/// thread; merging happens after join by moving buffers into a
/// [`Trace`], so no lock or atomic is involved anywhere.
#[derive(Debug, Clone)]
pub struct Collector {
    lane: u32,
    events: Vec<TraceEvent>,
}

impl Collector {
    /// An empty collector recording into `lane`.
    pub fn new(lane: u32) -> Collector {
        Collector {
            lane,
            events: Vec::new(),
        }
    }

    /// The lane this collector records into.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Has nothing been recorded?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Converts the collected events into a single-lane [`Trace`].
    pub fn into_trace(self) -> Trace {
        Trace {
            lanes: vec![Lane {
                id: self.lane,
                events: self.events,
            }],
        }
    }
}

impl TraceSink for Collector {
    fn begin(&mut self, label: &'static str, ts_ns: u64) {
        self.events.push(TraceEvent {
            kind: EventKind::Begin,
            label,
            ts_ns,
            value: 0,
        });
    }

    fn end(&mut self, label: &'static str, ts_ns: u64) {
        self.events.push(TraceEvent {
            kind: EventKind::End,
            label,
            ts_ns,
            value: 0,
        });
    }

    fn counter(&mut self, name: &'static str, value: u64, ts_ns: u64) {
        self.events.push(TraceEvent {
            kind: EventKind::Counter,
            label: name,
            ts_ns,
            value,
        });
    }
}

/// One lane of a [`Trace`]: the ordered events of one collector.
#[derive(Debug, Clone)]
pub struct Lane {
    /// Lane id — becomes the `tid` of the Chrome trace.
    pub id: u32,
    /// Events in recording order.
    pub events: Vec<TraceEvent>,
}

/// A set of recorded lanes, ready for validation and export.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub lanes: Vec<Lane>,
}

impl Trace {
    /// Merges traces (e.g. one per batch worker) into one.
    ///
    /// Pure moves — event buffers change owner, nothing is copied or
    /// locked.  Lane ids are kept as recorded; give each concurrent
    /// collector a distinct lane if the merged timeline should keep
    /// them apart.
    pub fn merge(traces: impl IntoIterator<Item = Trace>) -> Trace {
        let mut lanes = Vec::new();
        for t in traces {
            lanes.extend(t.lanes);
        }
        Trace { lanes }
    }

    /// Total events across all lanes.
    pub fn event_count(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    /// Checks the structural invariants every well-formed trace has:
    ///
    /// * timestamps are monotonically non-decreasing within a lane;
    /// * begin/end events are balanced and properly nested (an `End`
    ///   always closes the innermost open span, whose label matches).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for lane in &self.lanes {
            let mut stack: Vec<&'static str> = Vec::new();
            let mut last_ts = 0u64;
            for (i, ev) in lane.events.iter().enumerate() {
                if ev.ts_ns < last_ts {
                    return Err(format!(
                        "lane {}: event {i} (`{}`) goes back in time: {} ns after {} ns",
                        lane.id, ev.label, ev.ts_ns, last_ts
                    ));
                }
                last_ts = ev.ts_ns;
                match ev.kind {
                    EventKind::Begin => stack.push(ev.label),
                    EventKind::End => match stack.pop() {
                        Some(open) if open == ev.label => {}
                        Some(open) => {
                            return Err(format!(
                                "lane {}: event {i} ends `{}` but `{open}` is open",
                                lane.id, ev.label
                            ));
                        }
                        None => {
                            return Err(format!(
                                "lane {}: event {i} ends `{}` with no span open",
                                lane.id, ev.label
                            ));
                        }
                    },
                    EventKind::Counter => {}
                }
            }
            if let Some(open) = stack.last() {
                return Err(format!("lane {}: span `{open}` never closed", lane.id));
            }
        }
        Ok(())
    }

    /// Sums the exclusive time under each top-level span label of lane
    /// events (diagnostic helper for tests and quick printing).
    pub fn span_totals(&self) -> Vec<(&'static str, u64)> {
        let mut totals: Vec<(&'static str, u64)> = Vec::new();
        for lane in &self.lanes {
            let mut stack: Vec<(&'static str, u64)> = Vec::new();
            for ev in &lane.events {
                match ev.kind {
                    EventKind::Begin => stack.push((ev.label, ev.ts_ns)),
                    EventKind::End => {
                        if let Some((label, t0)) = stack.pop() {
                            let ns = ev.ts_ns.saturating_sub(t0);
                            match totals.iter_mut().find(|(l, _)| *l == label) {
                                Some((_, acc)) => *acc += ns,
                                None => totals.push((label, ns)),
                            }
                        }
                    }
                    EventKind::Counter => {}
                }
            }
        }
        totals
    }
}
