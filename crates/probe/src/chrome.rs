//! Chrome trace-event JSON export.
//!
//! The [trace-event format] is the lingua franca of timeline viewers:
//! the emitted file loads in Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing`.  Span events map to `"B"`/`"E"` duration events,
//! counters to `"C"` events, and each lane becomes a `tid` with a
//! `thread_name` metadata record.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::trace::{EventKind, Trace};
use std::fmt::Write as _;

impl Trace {
    /// Serializes the trace as Chrome trace-event JSON.
    ///
    /// `process_name` labels the single `pid` all lanes share.
    /// Timestamps are emitted in microseconds with nanosecond precision
    /// (the format's `ts` unit is microseconds; fractions are allowed).
    pub fn to_chrome_json(&self, process_name: &str) -> String {
        let mut out = String::from("{\n  \"traceEvents\": [\n");
        let mut first = true;
        let mut push = |s: &str, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str("    ");
            out.push_str(s);
        };
        push(
            &format!(
                "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
                 \"args\": {{\"name\": {}}}}}",
                json_string(process_name)
            ),
            &mut first,
        );
        for lane in &self.lanes {
            push(
                &format!(
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {}, \
                     \"args\": {{\"name\": \"lane-{}\"}}}}",
                    lane.id, lane.id
                ),
                &mut first,
            );
        }
        for lane in &self.lanes {
            for ev in &lane.events {
                let ts_us = ev.ts_ns as f64 / 1000.0;
                let line = match ev.kind {
                    EventKind::Begin => format!(
                        "{{\"name\": {}, \"cat\": \"record\", \"ph\": \"B\", \
                         \"ts\": {ts_us:.3}, \"pid\": 1, \"tid\": {}}}",
                        json_string(ev.label),
                        lane.id
                    ),
                    EventKind::End => format!(
                        "{{\"name\": {}, \"cat\": \"record\", \"ph\": \"E\", \
                         \"ts\": {ts_us:.3}, \"pid\": 1, \"tid\": {}}}",
                        json_string(ev.label),
                        lane.id
                    ),
                    EventKind::Counter => format!(
                        "{{\"name\": {}, \"cat\": \"record\", \"ph\": \"C\", \
                         \"ts\": {ts_us:.3}, \"pid\": 1, \"tid\": {}, \
                         \"args\": {{\"value\": {}}}}}",
                        json_string(ev.label),
                        lane.id,
                        ev.value
                    ),
                };
                push(&line, &mut first);
            }
        }
        out.push_str("\n  ],\n  \"displayTimeUnit\": \"ns\"\n}\n");
        out
    }
}

/// Renders a JSON string literal (escaping the characters that can
/// appear in instrumentation labels and processor names).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Structurally checks an already-serialized Chrome trace without a JSON
/// parser: every `"ph": "B"` has a matching `"E"`, quotes and braces are
/// balanced.  This is a smoke check for pipelines that cannot depend on
/// a parser; full validation should parse the JSON *and* run
/// [`Trace::validate`] on the source trace.
///
/// # Errors
///
/// A description of the first structural problem found.
pub fn validate_chrome_json_shape(json: &str) -> Result<(), String> {
    let begins = json.matches("\"ph\": \"B\"").count();
    let ends = json.matches("\"ph\": \"E\"").count();
    if begins != ends {
        return Err(format!("unbalanced events: {begins} B vs {ends} E"));
    }
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escape = false;
    for c in json.chars() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
        if depth < 0 {
            return Err("unbalanced braces: closed more than opened".into());
        }
    }
    if in_str {
        return Err("unterminated string".into());
    }
    if depth != 0 {
        return Err(format!("unbalanced braces: depth {depth} at end"));
    }
    Ok(())
}
