//! `record-probe`: structured tracing and phase metrics for the
//! retarget + compile pipeline.
//!
//! The pipeline is instrumented at three altitudes, cheapest first:
//!
//! * **Plain-field counters** live where the work happens (the BDD
//!   tables count cache hits, the selector counts rules tried, the
//!   allocator counts evictions).  They are always on — incrementing a
//!   local integer inside an already-allocating loop is free — and they
//!   are *read*, never written, by this crate.
//! * **[`Report`]s** aggregate one run: per-phase wall-clock
//!   nanoseconds plus the counter snapshot at phase end.  Reports are
//!   cheap enough to attach to every result (a dozen clock reads and
//!   two small `Vec`s per compilation).
//! * **[`TraceSink`]s** receive the full span stream — nested
//!   begin/end events with monotonic timestamps — for timeline tooling.
//!   No sink is installed by default, and the [`Probe`] handle that
//!   pipeline code talks to degrades to a branch-on-null when disabled:
//!   the hot paths (BDD apply, grammar labelling) never see the probe
//!   at all, only phase boundaries do.
//! * **Fleet [`metrics`]** aggregate across requests and threads: a
//!   [`MetricsRegistry`] of counters, gauges and log-bucketed latency
//!   [`Histogram`]s, recorded on lock-free per-worker
//!   [`MetricsShard`]s and merged only at read (scrape) time.  This is
//!   what a serving layer exports to a monitoring system; see the
//!   module docs.
//!
//! The first-party sink is [`Collector`], which records events into a
//! per-session [`Trace`] lane.  Lanes from concurrent sessions (e.g.
//! `compile_batch` workers) merge lock-free at join time — each worker
//! owns its collector, merging moves the event vectors.  A merged
//! [`Trace`] exports as Chrome trace-event JSON
//! ([`Trace::to_chrome_json`]) loadable in Perfetto or `chrome://tracing`,
//! and validates itself ([`Trace::validate`]): balanced begin/end pairs,
//! monotonic timestamps per lane.
//!
//! # Example
//!
//! ```
//! use record_probe::{Collector, Probe, Trace};
//!
//! let mut sink = Collector::new(0);
//! let mut probe = Probe::new(&mut sink);
//! probe.begin("retarget");
//! probe.begin("parse");
//! probe.count("hdl.modules", 3);
//! probe.end("parse");
//! probe.end("retarget");
//! drop(probe);
//!
//! let trace = sink.into_trace();
//! trace.validate().expect("balanced and monotonic");
//! let json = trace.to_chrome_json("example");
//! assert!(json.contains("\"traceEvents\""));
//! ```

mod chrome;
pub mod metrics;
mod report;
mod trace;

pub use chrome::validate_chrome_json_shape;
pub use metrics::{
    CounterId, FamilyId, GaugeId, Histogram, HistogramId, MetricsBuilder, MetricsRegistry,
    MetricsShard,
};
pub use report::{CounterVal, PhaseNs, Report};
pub use trace::{Collector, EventKind, Lane, Trace, TraceEvent, TraceSink};

use std::time::Instant;

/// The process-wide trace epoch: all collectors timestamp events as
/// nanoseconds since the first call, so lanes recorded by different
/// sessions (or threads) line up on one timeline.
fn epoch() -> Instant {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process trace epoch.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// The handle pipeline code is threaded with.
///
/// A probe either borrows a [`TraceSink`] or is disabled.  Every method
/// starts with a null check, so a disabled probe costs one predictable
/// branch per *phase boundary* — the per-operation hot paths are not
/// instrumented through the probe at all (see the crate docs).
/// A probe can also carry a **deadline**: an absolute [`now_ns`]
/// timestamp after which cooperative cancellation points (phase
/// boundaries in the compile pipeline) should abort.  The deadline is
/// orthogonal to tracing — a disabled probe can still enforce one — and
/// checking it is a branch on an `Option`, paid only at boundaries.
#[derive(Default)]
pub struct Probe<'s> {
    sink: Option<&'s mut dyn TraceSink>,
    /// Absolute deadline in [`now_ns`] time, if any.
    deadline_ns: Option<u64>,
}

impl std::fmt::Debug for Probe<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Probe")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl<'s> Probe<'s> {
    /// A probe with no sink: every call is a no-op.
    #[inline]
    pub fn disabled() -> Probe<'static> {
        Probe {
            sink: None,
            deadline_ns: None,
        }
    }

    /// A probe feeding `sink`.
    pub fn new(sink: &'s mut dyn TraceSink) -> Probe<'s> {
        // Touch the epoch now so the first event does not pay for the
        // OnceLock initialisation inside a span.
        let _ = epoch();
        Probe {
            sink: Some(sink),
            deadline_ns: None,
        }
    }

    /// A probe feeding `sink` when one is given, disabled otherwise.
    pub fn attached(sink: Option<&'s mut dyn TraceSink>) -> Probe<'s> {
        match sink {
            Some(s) => Probe::new(s),
            None => Probe {
                sink: None,
                deadline_ns: None,
            },
        }
    }

    /// Is a sink installed?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Arms (or with `None` disarms) the cancellation deadline, given as
    /// an absolute [`now_ns`] timestamp.
    #[inline]
    pub fn set_deadline_ns(&mut self, deadline_ns: Option<u64>) {
        self.deadline_ns = deadline_ns;
    }

    /// The armed deadline, if any (absolute [`now_ns`] time).
    #[inline]
    pub fn deadline_ns(&self) -> Option<u64> {
        self.deadline_ns
    }

    /// Has the armed deadline passed?  Always `false` when disarmed.
    #[inline]
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline_ns.is_some_and(|d| now_ns() > d)
    }

    /// Reborrows the probe for passing further down the pipeline (the
    /// deadline travels with it).
    #[inline]
    pub fn reborrow(&mut self) -> Probe<'_> {
        Probe {
            sink: match &mut self.sink {
                Some(s) => Some(&mut **s),
                None => None,
            },
            deadline_ns: self.deadline_ns,
        }
    }

    /// Opens a span.  Spans nest: close them in LIFO order.
    #[inline]
    pub fn begin(&mut self, label: &'static str) {
        if let Some(s) = &mut self.sink {
            s.begin(label, now_ns());
        }
    }

    /// Closes the innermost open span with this label.
    #[inline]
    pub fn end(&mut self, label: &'static str) {
        if let Some(s) = &mut self.sink {
            s.end(label, now_ns());
        }
    }

    /// Records a named counter sample (an absolute value or a delta —
    /// the convention is per counter and documented at the call site).
    #[inline]
    pub fn count(&mut self, name: &'static str, value: u64) {
        if let Some(s) = &mut self.sink {
            s.counter(name, value, now_ns());
        }
    }
}

#[cfg(test)]
mod tests;
