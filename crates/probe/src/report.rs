//! Per-run aggregates: phase times and counter snapshots.
//!
//! A [`Report`] is the always-on, low-altitude summary of one pipeline
//! run — cheap enough to attach to every compilation result, structured
//! enough to serialize per-request (the serving layer ships these on
//! the wire, the perf snapshot takes medians over them).

use std::fmt;

/// One phase measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseNs {
    /// Phase label (the instrumentation vocabulary is documented in
    /// ARCHITECTURE.md's Observability section).
    pub label: &'static str,
    /// Wall-clock nanoseconds spent in the phase.
    pub ns: u64,
}

/// One named counter value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterVal {
    pub name: &'static str,
    pub value: u64,
}

/// Phase times and counters of one run (one compilation, one retarget).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Phases in execution order.  Labels are unique: recording a label
    /// twice accumulates into the existing entry.
    pub phases: Vec<PhaseNs>,
    /// Counters in recording order; names are unique, values accumulate.
    pub counters: Vec<CounterVal>,
}

impl Report {
    /// An empty report with room for `phases`/`counters` entries.
    pub fn with_capacity(phases: usize, counters: usize) -> Report {
        Report {
            phases: Vec::with_capacity(phases),
            counters: Vec::with_capacity(counters),
        }
    }

    /// Records `ns` nanoseconds under `label`, accumulating on repeat.
    pub fn phase(&mut self, label: &'static str, ns: u64) {
        match self.phases.iter_mut().find(|p| p.label == label) {
            Some(p) => p.ns += ns,
            None => self.phases.push(PhaseNs { label, ns }),
        }
    }

    /// Adds `value` to counter `name`, creating it on first use.
    pub fn count(&mut self, name: &'static str, value: u64) {
        match self.counters.iter_mut().find(|c| c.name == name) {
            Some(c) => c.value += value,
            None => self.counters.push(CounterVal { name, value }),
        }
    }

    /// Nanoseconds recorded under `label`, if the phase ran.
    pub fn phase_ns(&self, label: &str) -> Option<u64> {
        self.phases.iter().find(|p| p.label == label).map(|p| p.ns)
    }

    /// Value of counter `name`, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Sum of all phase times.
    ///
    /// Phases are recorded flat (no parent/child overlap), so the sum
    /// is the instrumented fraction of the run's wall clock.
    pub fn phase_total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.ns).sum()
    }

    /// Merges another report into this one (phase times and counters
    /// accumulate by label/name).
    pub fn absorb(&mut self, other: &Report) {
        for p in &other.phases {
            self.phase(p.label, p.ns);
        }
        for c in &other.counters {
            self.count(c.name, c.value);
        }
    }

    /// Renders the report as an aligned human-readable table:
    /// phases with times and percentage of the instrumented total,
    /// then counters.
    pub fn render_table(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let total = self.phase_total_ns().max(1);
        let width = self
            .phases
            .iter()
            .map(|p| p.label.len())
            .chain(self.counters.iter().map(|c| c.name.len()))
            .max()
            .unwrap_or(8)
            .max(8);
        for p in &self.phases {
            let _ = writeln!(
                out,
                "  {:width$}  {:>12}  {:>5.1}%",
                p.label,
                format_ns(p.ns),
                100.0 * p.ns as f64 / total as f64,
            );
        }
        if !self.phases.is_empty() && !self.counters.is_empty() {
            let _ = writeln!(out, "  {:-<width$}", "");
        }
        for c in &self.counters {
            let _ = writeln!(out, "  {:width$}  {:>12}", c.name, c.value);
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_table("report"))
    }
}

/// Renders nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
pub(crate) fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}
