use crate::{Collector, Probe, Report, Trace, TraceSink};

#[test]
fn spans_nest_and_validate() {
    let mut sink = Collector::new(0);
    {
        let mut probe = Probe::new(&mut sink);
        probe.begin("outer");
        probe.begin("inner");
        probe.count("items", 3);
        probe.end("inner");
        probe.begin("inner"); // same label twice is fine
        probe.end("inner");
        probe.end("outer");
    }
    let trace = sink.into_trace();
    assert_eq!(trace.event_count(), 7);
    trace.validate().expect("well-formed");
    // Span totals see both `inner` intervals under one label.
    let totals = trace.span_totals();
    assert!(totals.iter().any(|&(l, _)| l == "inner"));
    assert!(totals.iter().any(|&(l, _)| l == "outer"));
}

#[test]
fn validate_catches_imbalance_and_mismatch() {
    let mut sink = Collector::new(1);
    sink.begin("a", 10);
    let unclosed = sink.clone().into_trace();
    assert!(unclosed.validate().unwrap_err().contains("never closed"));

    sink.end("b", 20);
    let mismatched = sink.clone().into_trace();
    assert!(mismatched.validate().unwrap_err().contains("`a` is open"));

    let mut lone = Collector::new(2);
    lone.end("x", 5);
    let err = lone.into_trace().validate().unwrap_err();
    assert!(err.contains("no span open"), "{err}");
}

#[test]
fn validate_catches_time_travel() {
    let mut sink = Collector::new(0);
    sink.begin("a", 100);
    sink.end("a", 50);
    let err = sink.into_trace().validate().unwrap_err();
    assert!(err.contains("back in time"), "{err}");
}

#[test]
fn disabled_probe_is_inert() {
    let mut probe = Probe::disabled();
    assert!(!probe.enabled());
    probe.begin("x");
    probe.count("y", 1);
    probe.end("x");
    let mut re = probe.reborrow();
    assert!(!re.enabled());
    re.end("never-opened"); // still a no-op, nothing to violate
}

#[test]
fn collectors_merge_lock_free_under_thread_scope() {
    // The compile_batch shape: one collector per worker, owned by its
    // thread, merged by move after join.
    let workers = 4;
    let mut collectors: Vec<Option<Collector>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut sink = Collector::new(w);
                    {
                        let mut probe = Probe::new(&mut sink);
                        for _ in 0..10 {
                            probe.begin("compile");
                            probe.begin("select");
                            probe.count("select.rules-tried", 7);
                            probe.end("select");
                            probe.end("compile");
                        }
                    }
                    sink
                })
            })
            .collect();
        for h in handles {
            collectors.push(Some(h.join().expect("worker panicked")));
        }
    });
    let trace = Trace::merge(collectors.into_iter().flatten().map(Collector::into_trace));
    assert_eq!(trace.lanes.len(), workers as usize);
    assert_eq!(trace.event_count(), workers as usize * 10 * 5);
    trace
        .validate()
        .expect("each lane independently well-formed");
    // Lane ids survive the merge.
    let mut ids: Vec<u32> = trace.lanes.iter().map(|l| l.id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..workers).collect::<Vec<_>>());
}

#[test]
fn chrome_export_is_shaped_and_escaped() {
    let mut sink = Collector::new(0);
    sink.begin("phase", 1_500);
    sink.counter("nodes", 42, 2_000);
    sink.end("phase", 2_500);
    let trace = sink.into_trace();
    let json = trace.to_chrome_json("demo \"quoted\"\n");
    crate::validate_chrome_json_shape(&json).expect("shape ok");
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\\\"quoted\\\"\\n"), "escapes applied");
    assert!(json.contains("\"ts\": 1.500"), "ns -> µs conversion");
    assert!(json.contains("\"ph\": \"C\""));

    // Shape validation catches an unbalanced hand-made document.
    let err = crate::validate_chrome_json_shape("{\"ph\": \"B\"}").unwrap_err();
    assert!(err.contains("unbalanced events"), "{err}");
}

#[test]
fn report_accumulates_and_renders() {
    let mut r = Report::default();
    r.phase("select", 1_000);
    r.phase("emit", 3_000);
    r.phase("select", 500); // accumulates
    r.count("ops", 10);
    r.count("ops", 2);
    r.count("spills", 0);
    assert_eq!(r.phase_ns("select"), Some(1_500));
    assert_eq!(r.phase_ns("emit"), Some(3_000));
    assert_eq!(r.phase_ns("parse"), None);
    assert_eq!(r.counter("ops"), Some(12));
    assert_eq!(r.phase_total_ns(), 4_500);

    let mut other = Report::default();
    other.phase("emit", 1_000);
    other.count("ops", 1);
    r.absorb(&other);
    assert_eq!(r.phase_ns("emit"), Some(4_000));
    assert_eq!(r.counter("ops"), Some(13));

    let table = r.render_table("compile fir on tms320c25");
    assert!(table.contains("select"));
    assert!(table.contains("1.5 µs"));
    assert!(table.contains("ops"));
}

/// Deadlines: disarmed probes never expire, armed ones expire exactly
/// when `now_ns` passes the absolute timestamp, and reborrows carry the
/// deadline down the pipeline.
#[test]
fn deadline_arming_and_reborrow() {
    let mut probe = Probe::disabled();
    assert!(!probe.deadline_exceeded(), "disarmed probe never expires");

    probe.set_deadline_ns(Some(u64::MAX));
    assert!(!probe.deadline_exceeded());
    assert!(!probe.reborrow().deadline_exceeded());

    probe.set_deadline_ns(Some(0));
    assert!(probe.deadline_exceeded(), "epoch-zero deadline has passed");
    assert!(
        probe.reborrow().deadline_exceeded(),
        "reborrow carries the deadline"
    );

    probe.set_deadline_ns(None);
    assert!(!probe.deadline_exceeded(), "disarming clears expiry");
}
