//! Code compaction: vertical RT code → horizontal instruction words.
//!
//! Code selection produces *vertical* code — one RT per instruction.
//! Machines with instruction-level parallelism (horizontal or partially
//! encoded formats) can execute several RTs per word when their execution
//! conditions are jointly satisfiable.  This crate implements the
//! compaction phase the paper defers to its companion work (Leupers &
//! Marwedel, "Time-constrained Code Compaction for DSPs", ISSS 1995) in its
//! greedy list-scheduling form:
//!
//! * **Data dependences** are derived from the concrete read/write sets of
//!   each RT.  Semantics are *time-stationary* (paper table 1): all RTs of
//!   one word read pre-state, so an anti-dependence (write-after-read) may
//!   share a word with the read, while flow (read-after-write) and output
//!   (write-after-write) dependences force a later word.
//! * **Encoding compatibility** is the satisfiability of the conjunction
//!   of execution conditions — the same BDDs instruction-set extraction
//!   built.  Two RTs whose partial instructions conflict in any bit can
//!   never share a word, exactly as in the paper's §2.
//!
//! The number of words after compaction is the code-size metric of the
//! paper's Figure 2.
//!
//! # Example
//!
//! See `record-core`'s `Target::compile`, which feeds emitted RT ops
//! through [`compact`].

use record_bdd::{Bdd, BddOps};
use record_codegen::{RtOp, SimExpr};

/// One horizontal instruction word: indices into the original op sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    /// Positions (in the vertical sequence) of the RTs in this word.
    pub ops: Vec<usize>,
}

/// The result of compaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    words: Vec<Word>,
    moved: usize,
}

impl Schedule {
    /// Instruction words in execution order.
    pub fn words(&self) -> &[Word] {
        &self.words
    }

    /// Code size in instruction words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Is the schedule empty?
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of RTs packed into an earlier word than their vertical
    /// position (a parallelism measure).
    pub fn packed(&self) -> usize {
        self.moved
    }

    /// Materialises the schedule as owned op groups (for simulation).
    ///
    /// Transfer targets are rewritten from vertical *op* indices to the
    /// *word* indices those ops landed in (`ops.len()` — the halt target —
    /// maps to `words.len()`).  [`compact_cfg`] starts every block in a
    /// fresh word, so a block-entry op always heads its word and the
    /// rewrite never makes a jump re-execute a predecessor's RTs.
    pub fn materialize(&self, ops: &[RtOp]) -> Vec<Vec<RtOp>> {
        let mut word_of = vec![0usize; ops.len()];
        for (wi, w) in self.words.iter().enumerate() {
            for &i in &w.ops {
                word_of[i] = wi;
            }
        }
        self.words
            .iter()
            .map(|w| {
                w.ops
                    .iter()
                    .map(|&i| {
                        let mut op = ops[i].clone();
                        if op.transfer.is_some() {
                            if let SimExpr::Const(t) = op.expr {
                                let target = t as usize;
                                let wt = if target >= ops.len() {
                                    self.words.len()
                                } else {
                                    word_of[target]
                                };
                                op.expr = SimExpr::Const(wt as u64);
                            }
                        }
                        op
                    })
                    .collect()
            })
            .collect()
    }
}

/// Greedy list-scheduling compaction of `ops`.
///
/// RTs are taken in order; each is placed into the earliest word that
/// respects its dependences and whose accumulated execution condition stays
/// satisfiable when conjoined with the RT's own condition.
///
/// Generic over [`BddOps`]: at retarget time this is the mutable
/// [`record_bdd::BddManager`], during compilation against a frozen target
/// it is the session's [`record_bdd::BddOverlay`].
pub fn compact<M: BddOps>(ops: &[RtOp], manager: &mut M) -> Schedule {
    let mut words: Vec<Word> = Vec::new();
    let mut word_conds: Vec<Bdd> = Vec::new();
    let mut moved = 0usize;

    for (i, op) in ops.iter().enumerate() {
        let reads = op.reads();
        let write = op.write();

        // Earliest word by dependences.
        let mut earliest = 0usize;
        for (wi, word) in words.iter().enumerate() {
            for &j in &word.ops {
                let other = &ops[j];
                let ow = other.write();
                // Flow dependence: we read what an earlier op wrote.
                if reads.iter().any(|r| r.may_alias(&ow)) {
                    earliest = earliest.max(wi + 1);
                }
                // Output dependence: both write the same location.
                if write.may_alias(&ow) {
                    earliest = earliest.max(wi + 1);
                }
                // Anti dependence: an earlier op reads what we write.
                // Time-stationary words read pre-state, so sharing the same
                // word is legal; an earlier word is not.
                if other.reads().iter().any(|r| r.may_alias(&write)) {
                    earliest = earliest.max(wi);
                }
            }
        }

        // First encoding-compatible word at or after `earliest`.
        let mut placed = None;
        for (wi, &cond) in word_conds.iter().enumerate().skip(earliest) {
            let joint = manager.and(cond, op.cond);
            if manager.is_sat(joint) {
                placed = Some((wi, joint));
                break;
            }
        }
        match placed {
            Some((wi, joint)) => {
                words[wi].ops.push(i);
                word_conds[wi] = joint;
                if wi < words.len() - 1 || words[wi].ops.len() > 1 {
                    moved += 1;
                }
            }
            None => {
                words.push(Word { ops: vec![i] });
                word_conds.push(op.cond);
            }
        }
    }

    Schedule { words, moved }
}

/// Per-block compaction for CFG code: no code motion across block
/// boundaries, and every control-transfer RT occupies a word of its own.
///
/// Each block's straight-line stretches are compacted exactly as
/// [`compact`] would; a transfer op ends the current stretch and becomes
/// a singleton word (its encoding carries a target immediate that is
/// patched after scheduling, so it must not constrain — or be constrained
/// by — neighbours).  Block entries always start a fresh word, keeping
/// branch targets aligned to word boundaries.  A single-block range
/// without transfers degenerates to exactly [`compact`].
pub fn compact_cfg<M: BddOps>(
    ops: &[RtOp],
    block_ranges: &[std::ops::Range<usize>],
    manager: &mut M,
) -> Schedule {
    let mut words: Vec<Word> = Vec::new();
    let mut moved = 0usize;
    let flush =
        |run: std::ops::Range<usize>, words: &mut Vec<Word>, moved: &mut usize, manager: &mut M| {
            if run.is_empty() {
                return;
            }
            let s = compact(&ops[run.clone()], manager);
            *moved += s.moved;
            words.extend(s.words.into_iter().map(|w| Word {
                ops: w.ops.iter().map(|&k| k + run.start).collect(),
            }));
        };
    for r in block_ranges {
        let mut run_start = r.start;
        for i in r.clone() {
            if ops[i].transfer.is_some() {
                flush(run_start..i, &mut words, &mut moved, manager);
                words.push(Word { ops: vec![i] });
                run_start = i + 1;
            }
        }
        flush(run_start..r.end, &mut words, &mut moved, manager);
    }
    Schedule { words, moved }
}

#[cfg(test)]
mod tests;
