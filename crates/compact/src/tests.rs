use crate::*;
use record_codegen::{Binding, Machine};
use record_grammar::TreeGrammar;
use record_selgen::Selector;

/// A horizontal two-register machine: r1 and r2 load from independent
/// fields, so independent RTs pack into one word; the shared ALU writes
/// only r1.
const HORIZ: &str = r#"
    module Reg16 {
        in d: bit(16);
        ctrl en: bit(1);
        out q: bit(16);
        register q = d when en == 1;
    }
    module Alu {
        in a: bit(16);
        in b: bit(16);
        ctrl f: bit(1);
        out y: bit(16);
        behavior {
            case f { 0 => y = a + b; 1 => y = a - b; }
        }
    }
    module Mux2 {
        in a: bit(16);
        in b: bit(16);
        ctrl s: bit(1);
        out y: bit(16);
        behavior { case s { 0 => y = a; 1 => y = b; } }
    }
    module Ram {
        in addr: bit(4);
        in din: bit(16);
        ctrl w: bit(1);
        out dout: bit(16);
        memory cells[16]: bit(16);
        read dout = cells[addr];
        write cells[addr] = din when w == 1;
    }
    processor Horiz {
        instruction word: bit(16);
        parts {
            r1: Reg16; r2: Reg16; alu: Alu; r1mux: Mux2; ram: Ram;
        }
        connections {
            alu.a = r1.q;
            alu.b = r2.q;
            alu.f = I[0];
            r1mux.a = alu.y;
            r1mux.b = ram.dout;
            r1mux.s = I[1];
            r1.d = r1mux.y;
            r1.en = I[2];
            r2.d = ram.dout;
            r2.en = I[3];
            ram.addr = I[7:4];
            ram.din = r1.q;
            ram.w = I[8];
        }
    }
"#;

struct Rig {
    netlist: record_netlist::Netlist,
    base: record_rtl::TemplateBase,
    selector: Selector,
    manager: record_bdd::BddManager,
    tables: record_codegen::EmitTables,
}

fn rig() -> Rig {
    let model = record_hdl::parse(HORIZ).expect("parses");
    let netlist = record_netlist::elaborate(&model).expect("elaborates");
    let ex = record_isex::extract(&netlist, &Default::default()).expect("extracts");
    let grammar = TreeGrammar::from_base(&ex.base, &netlist);
    let selector = Selector::generate(std::sync::Arc::new(grammar));
    let mut manager = ex.manager;
    let tables = record_codegen::EmitTables::build(&netlist, &mut manager, netlist.iword_width());
    Rig {
        netlist,
        base: ex.base,
        selector,
        manager,
        tables,
    }
}

fn compile(r: &mut Rig, src: &str) -> (Vec<record_codegen::RtOp>, Binding) {
    let prog = record_ir::parse(src).expect("mini-C parses");
    let flat = record_ir::lower(&prog, "f").expect("lowers");
    let dm = r.netlist.storage_by_name("ram").unwrap().id;
    let mut binding = Binding::allocate(&prog, "f", &r.netlist, dm).expect("binds");
    let ops = record_codegen::compile(
        &flat,
        &r.selector,
        &r.base,
        &mut binding,
        &r.netlist,
        &mut r.manager,
        &r.tables,
        16,
        &mut record_probe::Probe::disabled(),
    )
    .expect("compiles")
    .ops;
    (ops, binding)
}

#[test]
fn independent_loads_share_a_word() {
    let mut r = rig();
    // x = x + y loads r1 (from x) and r2 (from y) independently: the two
    // loads are encoding-compatible (different enable bits, same address
    // field only if addresses are equal -- here they differ, so the loads
    // cannot actually share the address field).
    // Use x + x: both loads read the same address and can share.
    let (ops, _) = compile(&mut r, "int x; void f() { x = x + x; }");
    let schedule = compact(&ops, &mut r.manager);
    assert!(
        schedule.len() < ops.len(),
        "{} < {}",
        schedule.len(),
        ops.len()
    );
}

#[test]
fn address_field_conflict_prevents_packing() {
    let mut r = rig();
    // Loading r1 from x and r2 from y needs two different values in the
    // single address field: never packable.
    let (ops, binding) = compile(&mut r, "int x, y; void f() { x = x + y; }");
    let schedule = compact(&ops, &mut r.manager);
    // Every op that reads a distinct address must be in its own word,
    // so compaction saves at most nothing here beyond sequential.
    let x = binding.assignments().find(|(n, _)| *n == "x").unwrap().1;
    let y = binding.assignments().find(|(n, _)| *n == "y").unwrap().1;
    assert_ne!(x, y);
    // r1 := ram[x]; r2 := ram[y]; r1 := r1+r2; ram[x] := r1  -- 4 words.
    assert_eq!(schedule.len(), 4);
    assert_eq!(ops.len(), 4);
}

#[test]
fn flow_dependence_is_respected() {
    let mut r = rig();
    let (ops, _) = compile(&mut r, "int x; void f() { x = x + x; }");
    let schedule = compact(&ops, &mut r.manager);
    // The ALU op must come after the loads; the store after the ALU op.
    let words = schedule.words();
    let pos = |opi: usize| words.iter().position(|w| w.ops.contains(&opi)).unwrap();
    // op order: load r1, load r2, add, store
    assert!(pos(0) < pos(2));
    assert!(pos(1) < pos(2));
    assert!(pos(2) < pos(3));
}

#[test]
fn compacted_execution_matches_vertical() {
    let mut r = rig();
    let (ops, binding) = compile(&mut r, "int x, y; void f() { x = x + x; y = x - y; }");
    let schedule = compact(&ops, &mut r.manager);
    let dm = r.netlist.storage_by_name("ram").unwrap().id;
    let x = binding.assignments().find(|(n, _)| *n == "x").unwrap().1;
    let y = binding.assignments().find(|(n, _)| *n == "y").unwrap().1;

    let mut vertical = Machine::new(&r.netlist);
    vertical.set_mem(dm, x, 21);
    vertical.set_mem(dm, y, 5);
    vertical.run(&ops);

    let mut horizontal = Machine::new(&r.netlist);
    horizontal.set_mem(dm, x, 21);
    horizontal.set_mem(dm, y, 5);
    horizontal.run_compacted(&schedule.materialize(&ops));

    assert_eq!(vertical.mem(dm, x), horizontal.mem(dm, x));
    assert_eq!(vertical.mem(dm, y), horizontal.mem(dm, y));
    assert_eq!(vertical.mem(dm, x), 42);
}

#[test]
fn empty_sequence() {
    let mut m = record_bdd::BddManager::new();
    let s = compact(&[], &mut m);
    assert!(s.is_empty());
    assert_eq!(s.len(), 0);
}
