//! Replays every minimized reproducer in `tests/corpus/` (repo root)
//! through the differential oracle and checks that each case still
//! produces its recorded verdict key.
//!
//! A mismatch means some pipeline phase changed behavior on a case that
//! was once minimized by the fuzzer — either an old bug came back (a
//! recorded `agree` turning into `diverge`) or a failure silently moved
//! to a different class.  Refresh an entry deliberately with
//! `fuzz_smoke --emit-corpus SEED --out tests/corpus` if the new
//! behavior is intended.

use record_fuzz::{corpus, oracle};

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn corpus_reproducers_keep_their_verdicts() {
    // Contained panics inside the oracle would otherwise spew backtraces.
    std::panic::set_hook(Box::new(|_| {}));

    let dir = corpus_dir();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "repro"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "no .repro files in {} — the corpus is part of the test suite",
        dir.display()
    );

    let mut failures = Vec::new();
    for path in &entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(path).expect("read reproducer");
        let repro = match corpus::parse(&text) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("{name}: unparseable: {e}"));
                continue;
            }
        };
        let got = oracle::run_case(&repro.case).key();
        if got != repro.verdict_key {
            failures.push(format!(
                "{name}: recorded `{}`, recomputed `{got}`",
                repro.verdict_key
            ));
        }
    }
    let _ = std::panic::take_hook();
    assert!(
        failures.is_empty(),
        "corpus verdicts drifted:\n  {}",
        failures.join("\n  ")
    );
}
