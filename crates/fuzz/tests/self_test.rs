//! Oracle self-test: the differential harness must flag a known-bad
//! kernel.  A fuzzer whose comparison half is broken reports `agree`
//! forever and looks green while testing nothing — so this fixture
//! compiles a correct kernel, verifies the oracle accepts it, then
//! deliberately miscompiles it (dropping trailing ops, the classic
//! lost-final-store bug) and requires a `Diverge` verdict.

use record_core::{CompileRequest, Record, RetargetOptions};
use record_fuzz::{differential, oracle, AluOp, FuzzCase, ModelSpec, Verdict};

fn fixture() -> FuzzCase {
    let spec = ModelSpec {
        width: 16,
        mem_cells: 16,
        ops: vec![AluOp::Add, AluOp::Mov],
        regs: 1,
        regfile: None,
        shifter: false,
        mul_unit: false,
        imm_bits: 4,
        control_flow: false,
    };
    let program =
        record_ir::parse("int g0;\nint g1;\nint g2;\n\nvoid f() {\n    g0 = (g1 + g2);\n}\n")
            .expect("fixture program parses");
    FuzzCase {
        spec,
        program,
        function: "f".to_owned(),
    }
}

#[test]
fn oracle_flags_a_known_bad_kernel() {
    let case = fixture();
    assert_eq!(
        oracle::run_case(&case).key(),
        "agree",
        "the untampered fixture must pass the oracle"
    );

    let hdl = case.spec.render();
    let target = Record::retarget(&hdl, &RetargetOptions::default()).expect("retarget fixture");
    let source = "int g0;\nint g1;\nint g2;\n\nvoid f() {\n    g0 = (g1 + g2);\n}\n";
    let mut kernel = target
        .compile(&CompileRequest::new(source, "f"))
        .expect("fixture compiles");

    let good = differential(&target, &kernel, &case.program, "f", case.spec.width);
    assert_eq!(good, Verdict::Agree, "correct kernel agrees: {good:?}");

    // Miscompile: run the vertical code with its tail cut off, so the
    // final store (at the latest) never happens.  Dropping ops one at a
    // time, the first verdict change must be a diverge on `g0` — never a
    // crash, and never silent agreement all the way to an empty kernel.
    kernel.schedule = None;
    let verdict = loop {
        assert!(
            kernel.ops.pop().is_some(),
            "kernel exhausted without the oracle noticing the miscompile"
        );
        match differential(&target, &kernel, &case.program, "f", case.spec.width) {
            Verdict::Agree => continue,
            other => break other,
        }
    };
    match &verdict {
        Verdict::Diverge {
            variable,
            machine,
            interp,
            ..
        } => {
            assert_eq!(variable, "g0");
            assert_ne!(machine, interp);
        }
        other => panic!("tampered kernel must diverge, got {other:?}"),
    }
    assert!(verdict.is_bug());
}
