//! Deterministic PRNG for case generation.
//!
//! SplitMix64 (Steele/Lea/Flood, "Fast splittable pseudorandom number
//! generators"): a tiny stateless-step generator with excellent mixing —
//! more than enough for structural fuzzing, and zero dependencies.  Every
//! generated case is a pure function of its seed, so any failure
//! reproduces from the seed alone.

/// A seeded deterministic random number generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator whose entire output is a pure function of `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng {
            // Decorrelate small consecutive seeds (0, 1, 2, ...) by
            // pre-mixing; seed 0 must not yield the all-zeros stream.
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1234_5678_9ABC_DEF0,
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Modulo bias is irrelevant at fuzzing's n << 2^64.
        self.next_u64() % n
    }

    /// A uniform value in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// A random subset of `items` of size `k` (order-preserving).
    pub fn subset<T: Clone>(&mut self, items: &[T], k: usize) -> Vec<T> {
        let mut picked: Vec<usize> = (0..items.len()).collect();
        // Partial Fisher-Yates: the first k positions become the sample.
        for i in 0..k.min(items.len()) {
            let j = i + self.below((items.len() - i) as u64) as usize;
            picked.swap(i, j);
        }
        let mut sample: Vec<usize> = picked[..k.min(items.len())].to_vec();
        sample.sort_unstable();
        sample.into_iter().map(|i| items[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::new(8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn bounds_hold() {
        let mut r = Rng::new(1);
        for _ in 0..1000 {
            let v = r.range(3, 9);
            assert!((3..=9).contains(&v));
            assert!(r.below(5) < 5);
        }
        let sub = r.subset(&[1, 2, 3, 4, 5], 3);
        assert_eq!(sub.len(), 3);
        assert!(sub.windows(2).all(|w| w[0] < w[1]), "order-preserving");
    }
}
