//! Delta-debugging minimizer: shrink a failing case while its failure
//! reproduces.
//!
//! Greedy first-improvement search with restart, the classic ddmin
//! shape adapted to structured inputs: program shrinks operate on the
//! mini-C AST (drop a statement, unwrap a loop, replace an expression by
//! a sub-expression or a smaller constant, prune unused declarations) and
//! model shrinks operate on the [`ModelSpec`](crate::model::ModelSpec) (drop an ALU op, drop a
//! unit, shrink the memory) — both sides therefore only ever produce
//! well-formed candidates.  A candidate is accepted iff the *failure
//! key* ([`Verdict::key`]) reproduces exactly, so a `diverge` never
//! silently minimizes into an unrelated `compile:...` rejection.
//!
//! The search is bounded by an evaluation budget; every evaluation is a
//! full oracle run, so minimization cost stays proportional to (small)
//! case size, not to fuzzing throughput.

use crate::oracle::{run_case, FuzzCase, Verdict};
use record_ir::{Expr, LValue, Program, Stmt, VarDecl};
use std::collections::BTreeSet;

/// Result of a minimization run.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The smallest case found that still reproduces the failure key.
    pub case: FuzzCase,
    /// The verdict of the minimized case (same key as the original).
    pub verdict: Verdict,
    /// Oracle evaluations spent.
    pub evaluations: usize,
}

/// Maximum oracle evaluations per minimization.
const BUDGET: usize = 400;

/// Shrinks `case` while [`Verdict::key`] stays identical to the
/// original's.  Always returns a case whose verdict key equals the
/// input's (the input itself in the worst case).
pub fn minimize(case: &FuzzCase) -> Minimized {
    let key = run_case(case).key();
    let mut best = case.clone();
    let mut evaluations = 0usize;

    let reproduces = |cand: &FuzzCase, evaluations: &mut usize| {
        *evaluations += 1;
        run_case(cand).key() == key
    };

    'outer: loop {
        // Program-side shrinks first: they are the bulk of the search
        // space and usually where the signal lives.
        for program in program_shrinks(&best.program) {
            if evaluations >= BUDGET {
                break 'outer;
            }
            let cand = FuzzCase {
                program,
                ..best.clone()
            };
            if reproduces(&cand, &mut evaluations) {
                best = cand;
                continue 'outer;
            }
        }
        for spec in best.spec.shrinks() {
            if evaluations >= BUDGET {
                break 'outer;
            }
            let cand = FuzzCase {
                spec,
                ..best.clone()
            };
            if reproduces(&cand, &mut evaluations) {
                best = cand;
                continue 'outer;
            }
        }
        break;
    }

    let verdict = run_case(&best);
    debug_assert_eq!(
        verdict.key(),
        key,
        "minimizer must preserve the failure key"
    );
    Minimized {
        case: best,
        verdict,
        evaluations,
    }
}

/// All one-step program shrinks, smallest-impact last so whole-statement
/// deletions are tried before expression surgery.
fn program_shrinks(program: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    for (fi, f) in program.functions.iter().enumerate() {
        for body in body_shrinks(&f.body) {
            let mut p = program.clone();
            p.functions[fi].body = body;
            out.push(p);
        }
    }
    if let Some(p) = prune_unused(program) {
        out.push(p);
    }
    out
}

fn body_shrinks(body: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for k in 0..body.len() {
        // Drop the statement outright.
        let mut without = body.to_vec();
        without.remove(k);
        out.push(without);

        match &body[k] {
            Stmt::For { body: inner, .. } => {
                // Unwrap the loop: splice its body in place (the loop
                // variable stays declared, reading as zero).
                let mut unwrapped = body.to_vec();
                unwrapped.splice(k..=k, inner.iter().cloned());
                out.push(unwrapped);
                for shrunk in body_shrinks(inner) {
                    let mut b = body.to_vec();
                    if let Stmt::For { body: ib, .. } = &mut b[k] {
                        *ib = shrunk;
                    }
                    out.push(b);
                }
            }
            Stmt::Assign {
                target,
                value,
                span,
            } => {
                for e in expr_shrinks(value) {
                    let mut b = body.to_vec();
                    b[k] = Stmt::Assign {
                        target: target.clone(),
                        value: e,
                        span: *span,
                    };
                    out.push(b);
                }
                if let LValue::Elem(name, idx) = target {
                    for e in expr_shrinks(idx) {
                        let mut b = body.to_vec();
                        b[k] = Stmt::Assign {
                            target: LValue::Elem(name.clone(), e),
                            value: value.clone(),
                            span: *span,
                        };
                        out.push(b);
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            } => {
                // Replace the conditional by either arm outright.
                let mut unwrapped = body.to_vec();
                unwrapped.splice(k..=k, then_body.iter().cloned());
                out.push(unwrapped);
                if !else_body.is_empty() {
                    let mut unwrapped = body.to_vec();
                    unwrapped.splice(k..=k, else_body.iter().cloned());
                    out.push(unwrapped);
                    // Drop just the else arm.
                    let mut b = body.to_vec();
                    b[k] = Stmt::If {
                        cond: cond.clone(),
                        then_body: then_body.clone(),
                        else_body: Vec::new(),
                        span: *span,
                    };
                    out.push(b);
                }
                for shrunk in body_shrinks(then_body) {
                    let mut b = body.to_vec();
                    if let Stmt::If { then_body: tb, .. } = &mut b[k] {
                        *tb = shrunk;
                    }
                    out.push(b);
                }
                for shrunk in body_shrinks(else_body) {
                    let mut b = body.to_vec();
                    if let Stmt::If { else_body: eb, .. } = &mut b[k] {
                        *eb = shrunk;
                    }
                    out.push(b);
                }
                for e in expr_shrinks(cond) {
                    let mut b = body.to_vec();
                    if let Stmt::If { cond: c, .. } = &mut b[k] {
                        *c = e;
                    }
                    out.push(b);
                }
            }
            Stmt::While {
                body: inner, cond, ..
            } => {
                // Unwrap the loop: run its body exactly once.
                let mut unwrapped = body.to_vec();
                unwrapped.splice(k..=k, inner.iter().cloned());
                out.push(unwrapped);
                for shrunk in body_shrinks(inner) {
                    let mut b = body.to_vec();
                    if let Stmt::While { body: ib, .. } = &mut b[k] {
                        *ib = shrunk;
                    }
                    out.push(b);
                }
                for e in expr_shrinks(cond) {
                    let mut b = body.to_vec();
                    if let Stmt::While { cond: c, .. } = &mut b[k] {
                        *c = e;
                    }
                    out.push(b);
                }
            }
        }
    }
    out
}

fn expr_shrinks(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    match e {
        Expr::Const(c) => {
            if *c != 0 {
                out.push(Expr::Const(0));
            }
            if *c / 2 != *c && *c / 2 != 0 {
                out.push(Expr::Const(*c / 2));
            }
        }
        Expr::Var(_) => out.push(Expr::Const(0)),
        Expr::Elem(name, idx) => {
            out.push(Expr::Const(0));
            for i in expr_shrinks(idx) {
                out.push(Expr::Elem(name.clone(), Box::new(i)));
            }
        }
        Expr::Unary(op, a) => {
            out.push((**a).clone());
            for s in expr_shrinks(a) {
                out.push(Expr::Unary(*op, Box::new(s)));
            }
        }
        Expr::Binary(op, a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
            for s in expr_shrinks(a) {
                out.push(Expr::Binary(*op, Box::new(s), b.clone()));
            }
            for s in expr_shrinks(b) {
                out.push(Expr::Binary(*op, a.clone(), Box::new(s)));
            }
        }
    }
    out
}

/// Drops globals and locals no statement references (one candidate, or
/// `None` when everything is used).
fn prune_unused(program: &Program) -> Option<Program> {
    fn expr_refs(e: &Expr, out: &mut BTreeSet<String>) {
        match e {
            Expr::Const(_) => {}
            Expr::Var(n) => {
                out.insert(n.clone());
            }
            Expr::Elem(n, idx) => {
                out.insert(n.clone());
                expr_refs(idx, out);
            }
            Expr::Unary(_, a) => expr_refs(a, out),
            Expr::Binary(_, a, b) => {
                expr_refs(a, out);
                expr_refs(b, out);
            }
        }
    }
    fn stmt_refs(s: &Stmt, out: &mut BTreeSet<String>) {
        match s {
            Stmt::Assign { target, value, .. } => {
                match target {
                    LValue::Scalar(n) => {
                        out.insert(n.clone());
                    }
                    LValue::Elem(n, idx) => {
                        out.insert(n.clone());
                        expr_refs(idx, out);
                    }
                }
                expr_refs(value, out);
            }
            Stmt::For {
                var, bound, body, ..
            } => {
                out.insert(var.clone());
                expr_refs(bound, out);
                for s in body {
                    stmt_refs(s, out);
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                expr_refs(cond, out);
                for s in then_body.iter().chain(else_body) {
                    stmt_refs(s, out);
                }
            }
            Stmt::While { cond, body, .. } => {
                expr_refs(cond, out);
                for s in body {
                    stmt_refs(s, out);
                }
            }
        }
    }

    let mut used = BTreeSet::new();
    for f in &program.functions {
        for s in &f.body {
            stmt_refs(s, &mut used);
        }
    }
    let keep = |d: &VarDecl| used.contains(&d.name);
    if program.globals.iter().all(keep)
        && program.functions.iter().flat_map(|f| &f.locals).all(keep)
    {
        return None;
    }
    let mut p = program.clone();
    p.globals.retain(|d| keep(d));
    for f in &mut p.functions {
        f.locals.retain(|d| keep(d));
    }
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use record_rtl::OpKind;

    #[test]
    fn expr_shrinks_strictly_reduce() {
        let e = Expr::Binary(
            OpKind::Add,
            Box::new(Expr::Var("x".into())),
            Box::new(Expr::Const(8)),
        );
        let shrinks = expr_shrinks(&e);
        assert!(shrinks.contains(&Expr::Var("x".into())));
        assert!(shrinks.contains(&Expr::Const(8)));
    }

    #[test]
    fn unsupported_op_case_minimizes_to_its_core() {
        // Find a seed whose verdict is an expected-unsupported compile
        // rejection, then check the minimizer preserves the exact class
        // while shrinking the program.
        for seed in 0..64 {
            let case = FuzzCase::generate(seed);
            let verdict = run_case(&case);
            if !matches!(verdict, Verdict::CompileRejected { .. }) {
                continue;
            }
            let min = minimize(&case);
            assert_eq!(min.verdict.key(), verdict.key(), "seed {seed}");
            let orig_stmts = case.program.functions[0].body.len();
            let min_stmts = min.case.program.functions[0].body.len();
            assert!(
                min_stmts <= orig_stmts,
                "seed {seed}: {min_stmts} vs {orig_stmts}"
            );
            return;
        }
        panic!("no compile-rejected seed in 0..64 — generator bias is off");
    }
}
