//! Reproducer files: minimized failing cases as self-contained text.
//!
//! A reproducer pins one (model, program) pair plus the verdict key it
//! must produce.  The model is stored as its [`ModelSpec`] fields (not
//! rendered HDL) so replay re-renders deterministically and the file
//! stays diff-friendly; the program is stored as mini-C source, which
//! round-trips through the parser exactly (see `program::render`).
//!
//! Minimized reproducers live in `tests/corpus/*.repro` at the repo root
//! and are replayed by the corpus runner test: each file's recomputed
//! verdict key must equal the recorded one, so a behavior change in any
//! pipeline phase that re-breaks (or silently re-classifies) an old
//! failure is caught immediately.

use crate::model::{AluOp, ModelSpec};
use crate::oracle::FuzzCase;

/// A parsed reproducer file.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// Seed the case was originally found under (informational).
    pub seed: Option<u64>,
    /// The verdict key this case must produce.
    pub verdict_key: String,
    /// The case itself.
    pub case: FuzzCase,
}

fn op_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
        AluOp::Mul => "mul",
        AluOp::Not => "not",
        AluOp::Neg => "neg",
        AluOp::Mov => "mov",
    }
}

fn op_from_name(name: &str) -> Result<AluOp, String> {
    Ok(match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "mul" => AluOp::Mul,
        "not" => AluOp::Not,
        "neg" => AluOp::Neg,
        "mov" => AluOp::Mov,
        other => return Err(format!("unknown ALU op `{other}`")),
    })
}

/// Serializes a reproducer to file text.
pub fn render(r: &Reproducer) -> String {
    let spec = &r.case.spec;
    let ops: Vec<&str> = spec.ops.iter().map(|&o| op_name(o)).collect();
    let mut out = String::from("record-fuzz reproducer v1\n");
    if let Some(seed) = r.seed {
        out.push_str(&format!("seed: {seed}\n"));
    }
    out.push_str(&format!("verdict: {}\n", r.verdict_key));
    out.push_str(&format!("width: {}\n", spec.width));
    out.push_str(&format!("mem-cells: {}\n", spec.mem_cells));
    out.push_str(&format!("ops: {}\n", ops.join(",")));
    out.push_str(&format!("regs: {}\n", spec.regs));
    out.push_str(&format!("regfile: {}\n", spec.regfile.unwrap_or(0)));
    out.push_str(&format!("shifter: {}\n", spec.shifter));
    out.push_str(&format!("mul-unit: {}\n", spec.mul_unit));
    out.push_str(&format!("imm-bits: {}\n", spec.imm_bits));
    // Written only when set, so pre-control-flow reproducers stay
    // byte-identical through a round trip.
    if spec.control_flow {
        out.push_str("control-flow: true\n");
    }
    out.push_str(&format!("function: {}\n", r.case.function));
    out.push_str("== program ==\n");
    out.push_str(&crate::program::render(&r.case.program));
    out
}

/// Parses reproducer file text.
///
/// # Errors
///
/// Returns a description of the first malformed line or a missing field.
pub fn parse(text: &str) -> Result<Reproducer, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some("record-fuzz reproducer v1") => {}
        other => return Err(format!("bad header: {other:?}")),
    }

    let mut seed = None;
    let mut verdict_key = None;
    let mut width = None;
    let mut mem_cells = None;
    let mut ops = None;
    let mut regs = None;
    let mut regfile = None;
    let mut shifter = None;
    let mut mul_unit = None;
    let mut imm_bits = None;
    let mut control_flow = false;
    let mut function = None;

    for line in lines.by_ref() {
        if line == "== program ==" {
            break;
        }
        let Some((key, value)) = line.split_once(": ") else {
            return Err(format!("malformed header line `{line}`"));
        };
        let bad = |e: std::num::ParseIntError| format!("field `{key}`: {e}");
        match key {
            "seed" => seed = Some(value.parse::<u64>().map_err(bad)?),
            "verdict" => verdict_key = Some(value.to_owned()),
            "width" => width = Some(value.parse::<u16>().map_err(bad)?),
            "mem-cells" => mem_cells = Some(value.parse::<u64>().map_err(bad)?),
            "ops" => {
                ops = Some(
                    value
                        .split(',')
                        .map(op_from_name)
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            "regs" => regs = Some(value.parse::<usize>().map_err(bad)?),
            "regfile" => {
                let n = value.parse::<u64>().map_err(bad)?;
                regfile = Some(if n == 0 { None } else { Some(n) });
            }
            "shifter" => shifter = Some(value == "true"),
            "mul-unit" => mul_unit = Some(value == "true"),
            "imm-bits" => imm_bits = Some(value.parse::<u16>().map_err(bad)?),
            "control-flow" => control_flow = value == "true",
            "function" => function = Some(value.to_owned()),
            other => return Err(format!("unknown field `{other}`")),
        }
    }

    let missing = |f: &str| format!("missing field `{f}`");
    let spec = ModelSpec {
        width: width.ok_or_else(|| missing("width"))?,
        mem_cells: mem_cells.ok_or_else(|| missing("mem-cells"))?,
        ops: ops.ok_or_else(|| missing("ops"))?,
        regs: regs.ok_or_else(|| missing("regs"))?,
        regfile: regfile.ok_or_else(|| missing("regfile"))?,
        shifter: shifter.ok_or_else(|| missing("shifter"))?,
        mul_unit: mul_unit.ok_or_else(|| missing("mul-unit"))?,
        imm_bits: imm_bits.ok_or_else(|| missing("imm-bits"))?,
        control_flow,
    };

    let source: String = lines.collect::<Vec<_>>().join("\n");
    let program = record_ir::parse(&source).map_err(|e| format!("program section: {e}"))?;

    Ok(Reproducer {
        seed,
        verdict_key: verdict_key.ok_or_else(|| missing("verdict"))?,
        case: FuzzCase {
            spec,
            program,
            function: function.ok_or_else(|| missing("function"))?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::run_case;

    #[test]
    fn reproducers_round_trip() {
        let case = FuzzCase::generate(5);
        let verdict = run_case(&case);
        let r = Reproducer {
            seed: Some(5),
            verdict_key: verdict.key(),
            case,
        };
        let text = render(&r);
        let back = parse(&text).expect("parse rendered reproducer");
        assert_eq!(back.seed, Some(5));
        assert_eq!(back.verdict_key, r.verdict_key);
        assert_eq!(back.case.spec, r.case.spec);
        assert_eq!(back.case.program, r.case.program);
        assert_eq!(back.case.function, r.case.function);
    }

    #[test]
    fn malformed_reproducers_are_rejected_with_context() {
        assert!(parse("").unwrap_err().contains("bad header"));
        let text = "record-fuzz reproducer v1\nwidth: potato\n";
        assert!(parse(text).unwrap_err().contains("width"));
        let text =
            "record-fuzz reproducer v1\nverdict: agree\n== program ==\nint x;\nvoid f() { }\n";
        assert!(parse(text).unwrap_err().contains("missing field"));
    }
}
