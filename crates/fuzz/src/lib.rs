//! Generative differential fuzzing for the whole RECORD pipeline.
//!
//! The paper's pipeline — HDL model in, retargeted code selector out,
//! compiled kernels on top — has two independent semantic descriptions of
//! every program: the mini-C reference interpreter and the RT machine
//! simulator running the emitted code.  This crate exploits that
//! redundancy as a *differential oracle* over generated inputs:
//!
//! * [`model::ModelSpec`] — seeded random MIMOLA-like processor models
//!   (register widths, memory shapes, ALU op subsets, bus/mux
//!   topologies), always structurally well-formed by construction;
//! * [`program`] — seeded random mini-C kernels sized to the model, as
//!   ASTs with an exact round-tripping renderer;
//! * [`oracle`] — runs both paths and triages every outcome with the
//!   [`record_core::FailureClass`] taxonomy into expected-unsupported
//!   rejections vs genuine bugs (divergence, panic, internal error);
//! * [`minimize`](mod@minimize) — delta-debugs a failing case, shrinking model and
//!   program independently while the failure key reproduces;
//! * [`corpus`] — serializes minimized reproducers for `tests/corpus/`.
//!
//! The `fuzz_smoke` binary drives a fixed seed range per CI run and
//! fails on any unexplained divergence, writing minimized reproducers
//! for anything it finds.  Zero external dependencies: the PRNG is a
//! vendored SplitMix64, so every case is a pure function of its seed.

pub mod corpus;
pub mod minimize;
pub mod model;
pub mod oracle;
pub mod program;
pub mod rng;

pub use corpus::Reproducer;
pub use minimize::{minimize, Minimized};
pub use model::{AluOp, ModelSpec};
pub use oracle::{differential, run_case, FuzzCase, Verdict};
pub use rng::Rng;
