//! Seeded generation of MIMOLA-like HDL processor models.
//!
//! A [`ModelSpec`] is a *structured* description of a horizontal-code
//! machine in the family of the Table 3 models (`demo`/`ref`): an ALU
//! with a random operation subset, one to three working registers, an
//! optional register file, optional dedicated shift and multiply units
//! behind a result mux, a data RAM of random shape, two operand busses
//! with random driver sets, and an immediate field of random width.
//!
//! Rendering a spec always yields *structurally well-formed* HDL: every
//! port is connected, every instruction field is allocated exactly once
//! by `FieldAlloc` (no overlapping bit ranges), every case arm index
//! fits its control field.  The interesting variation is semantic — what
//! the machine can and cannot compute — which is exactly what the
//! differential oracle wants to probe.  Shrinking for minimization
//! happens on the spec (drop an op, drop a unit, shrink the memory), so
//! a shrunk model is well-formed by the same construction.

use crate::rng::Rng;
use record_rtl::OpKind;
use std::fmt::Write as _;

/// One ALU case arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Mul,
    /// `y = ~a`
    Not,
    /// `y = -a`
    Neg,
    /// `y = b` — the pass-through arm every machine needs for moves.
    Mov,
}

impl AluOp {
    /// The behavior right-hand side for this arm.
    fn rhs(self) -> &'static str {
        match self {
            AluOp::Add => "a + b",
            AluOp::Sub => "a - b",
            AluOp::And => "a & b",
            AluOp::Or => "a | b",
            AluOp::Xor => "a ^ b",
            AluOp::Shl => "a << b",
            AluOp::Shr => "a >> b",
            AluOp::Mul => "a * b",
            AluOp::Not => "~a",
            AluOp::Neg => "-a",
            AluOp::Mov => "b",
        }
    }

    /// The source-level operator this arm implements (`None` for the
    /// pass-through arm).
    pub fn op_kind(self) -> Option<OpKind> {
        Some(match self {
            AluOp::Add => OpKind::Add,
            AluOp::Sub => OpKind::Sub,
            AluOp::And => OpKind::And,
            AluOp::Or => OpKind::Or,
            AluOp::Xor => OpKind::Xor,
            AluOp::Shl => OpKind::Shl,
            AluOp::Shr => OpKind::Shr,
            AluOp::Mul => OpKind::Mul,
            AluOp::Not => OpKind::Not,
            AluOp::Neg => OpKind::Neg,
            AluOp::Mov => return None,
        })
    }

    /// Optional arms the generator samples from (beyond the always-on
    /// `Add` and `Mov`).
    const OPTIONAL: [AluOp; 8] = [
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Mul,
        AluOp::Neg,
    ];
}

/// A structured, shrinkable description of one generated processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Data word width in bits.
    pub width: u16,
    /// Data memory cells (power of two, so the address field is exact).
    pub mem_cells: u64,
    /// ALU case arms in encoding order (always contains `Add` and `Mov`).
    pub ops: Vec<AluOp>,
    /// Working registers besides the accumulator (`r0`, `r1`, ...).
    pub regs: usize,
    /// Register-file cells (`None` for no register file).
    pub regfile: Option<u64>,
    /// Dedicated shift unit (`<<`/`>>`) behind the result mux.
    pub shifter: bool,
    /// Dedicated multiplier (`r0.q * bbus`) behind the result mux;
    /// requires `regs >= 1`.
    pub mul_unit: bool,
    /// Immediate field width in bits.
    pub imm_bits: u16,
    /// Allow the *program* generator to emit `if` and bounded `while`
    /// statements (and dependence-chain bias) for this case.  Not drawn
    /// from the seed stream — existing corpus seeds reproduce unchanged —
    /// but set by harnesses that opt into control-flow fuzzing.
    pub control_flow: bool,
}

impl ModelSpec {
    /// Generates a random, always-renderable spec from `rng`.
    pub fn generate(rng: &mut Rng) -> ModelSpec {
        let width = *rng.pick(&[8u16, 12, 16, 16, 24, 32]);
        let mem_cells = *rng.pick(&[16u64, 32, 64, 128, 256]);
        let shifter = rng.chance(30);
        let mul_unit = rng.chance(30);
        let extra = rng.range(1, 6) as usize;
        let mut ops = vec![AluOp::Add, AluOp::Mov];
        for op in rng.subset(&AluOp::OPTIONAL, extra) {
            // Dedicated units own their operators exclusively; the case
            // arm would be dead weight (and another template source).
            if shifter && matches!(op, AluOp::Shl | AluOp::Shr) {
                continue;
            }
            if mul_unit && op == AluOp::Mul {
                continue;
            }
            ops.push(op);
        }
        let regs = rng.range(u64::from(mul_unit), 3) as usize;
        let regfile = if rng.chance(40) {
            Some(*rng.pick(&[4u64, 8]))
        } else {
            None
        };
        let imm_bits = rng.range(4, u64::from(width.min(8))) as u16;
        ModelSpec {
            width,
            mem_cells,
            ops,
            regs,
            regfile,
            shifter,
            mul_unit,
            imm_bits,
            control_flow: false,
        }
    }

    /// Source-level operators this machine has hardware for.
    pub fn supported_ops(&self) -> Vec<OpKind> {
        let mut ops: Vec<OpKind> = self.ops.iter().filter_map(|o| o.op_kind()).collect();
        if self.shifter {
            ops.extend([OpKind::Shl, OpKind::Shr]);
        }
        if self.mul_unit {
            ops.push(OpKind::Mul);
        }
        ops.sort_unstable();
        ops.dedup();
        ops
    }

    /// Instance name of the data memory (fixed by construction).
    pub fn data_mem(&self) -> &'static str {
        "dmem"
    }

    /// All one-step shrinks of this spec, for delta-debugging: each is a
    /// strictly simpler, still-renderable spec.
    pub fn shrinks(&self) -> Vec<ModelSpec> {
        let mut out = Vec::new();
        let mut push = |s: ModelSpec| out.push(s);
        for (i, op) in self.ops.iter().enumerate() {
            if matches!(op, AluOp::Add | AluOp::Mov) {
                continue;
            }
            let mut s = self.clone();
            s.ops.remove(i);
            push(s);
        }
        if self.shifter {
            let mut s = self.clone();
            s.shifter = false;
            push(s);
        }
        if self.mul_unit {
            let mut s = self.clone();
            s.mul_unit = false;
            push(s);
        }
        if self.regfile.is_some() {
            let mut s = self.clone();
            s.regfile = None;
            push(s);
        }
        if self.regs > usize::from(self.mul_unit) {
            let mut s = self.clone();
            s.regs -= 1;
            push(s);
        }
        if self.mem_cells > 16 {
            let mut s = self.clone();
            s.mem_cells /= 2;
            push(s);
        }
        if self.control_flow {
            let mut s = self.clone();
            s.control_flow = false;
            push(s);
        }
        out
    }

    /// Renders the spec as HDL source.
    pub fn render(&self) -> String {
        render(self)
    }
}

/// Allocates non-overlapping instruction-word bit fields bottom-up.
struct FieldAlloc {
    next: u16,
}

impl FieldAlloc {
    fn new() -> FieldAlloc {
        FieldAlloc { next: 0 }
    }

    /// Reserves `width` bits; returns the field as `I[hi:lo]` text.
    fn field(&mut self, width: u16) -> String {
        let lo = self.next;
        self.next += width;
        format!("I[{}:{}]", self.next - 1, lo)
    }

    /// Reserves one bit; returns it as `I[k]` text (the single-bit form
    /// the Table 3 models use for enables).
    fn bit(&mut self) -> String {
        let k = self.next;
        self.next += 1;
        format!("I[{k}]")
    }
}

/// Bits needed to encode `n` distinct values (minimum 1).
fn sel_bits(n: usize) -> u16 {
    let mut bits = 1;
    while (1usize << bits) < n {
        bits += 1;
    }
    bits
}

fn render(spec: &ModelSpec) -> String {
    let w = spec.width;
    let addr_bits = sel_bits(spec.mem_cells as usize).max(spec.mem_cells.trailing_zeros() as u16);
    let mut s = String::new();

    // -- modules --------------------------------------------------------
    let f_bits = sel_bits(spec.ops.len());
    let _ = writeln!(s, "module Alu {{");
    let _ = writeln!(s, "    in a: bit({w});");
    let _ = writeln!(s, "    in b: bit({w});");
    let _ = writeln!(s, "    ctrl f: bit({f_bits});");
    let _ = writeln!(s, "    out y: bit({w});");
    let _ = writeln!(s, "    behavior {{");
    let _ = writeln!(s, "        case f {{");
    for (i, op) in spec.ops.iter().enumerate() {
        let _ = writeln!(s, "            {i} => y = {};", op.rhs());
    }
    let _ = writeln!(s, "        }}");
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "}}");

    if spec.shifter {
        let _ = writeln!(s, "module Shift {{");
        let _ = writeln!(s, "    in a: bit({w});");
        let _ = writeln!(s, "    in b: bit({w});");
        let _ = writeln!(s, "    ctrl f: bit(1);");
        let _ = writeln!(s, "    out y: bit({w});");
        let _ = writeln!(
            s,
            "    behavior {{ case f {{ 0 => y = a << b; 1 => y = a >> b; }} }}"
        );
        let _ = writeln!(s, "}}");
    }
    if spec.mul_unit {
        let _ = writeln!(s, "module Mul {{");
        let _ = writeln!(s, "    in a: bit({w});");
        let _ = writeln!(s, "    in b: bit({w});");
        let _ = writeln!(s, "    out y: bit({w});");
        let _ = writeln!(s, "    behavior {{ y = a * b; }}");
        let _ = writeln!(s, "}}");
    }

    let result_units = 1 + usize::from(spec.shifter) + usize::from(spec.mul_unit);
    if result_units > 1 {
        let names = ["a", "b", "c"];
        let rs_bits = sel_bits(result_units);
        let _ = writeln!(s, "module ResMux {{");
        for name in &names[..result_units] {
            let _ = writeln!(s, "    in {name}: bit({w});");
        }
        let _ = writeln!(s, "    ctrl s: bit({rs_bits});");
        let _ = writeln!(s, "    out y: bit({w});");
        let _ = write!(s, "    behavior {{ case s {{");
        for (i, name) in names[..result_units].iter().enumerate() {
            let _ = write!(s, " {i} => y = {name};");
        }
        let _ = writeln!(s, " }} }}");
        let _ = writeln!(s, "}}");
    }

    let _ = writeln!(s, "module Reg {{");
    let _ = writeln!(s, "    in d: bit({w});");
    let _ = writeln!(s, "    ctrl en: bit(1);");
    let _ = writeln!(s, "    out q: bit({w});");
    let _ = writeln!(s, "    register q = d when en == 1;");
    let _ = writeln!(s, "}}");

    if let Some(cells) = spec.regfile {
        let ra = sel_bits(cells as usize);
        let _ = writeln!(s, "module Rf {{");
        let _ = writeln!(s, "    in raddr: bit({ra});");
        let _ = writeln!(s, "    in waddr: bit({ra});");
        let _ = writeln!(s, "    in din: bit({w});");
        let _ = writeln!(s, "    ctrl w: bit(1);");
        let _ = writeln!(s, "    out dout: bit({w});");
        let _ = writeln!(s, "    memory cells[{cells}]: bit({w});");
        let _ = writeln!(s, "    read dout = cells[raddr];");
        let _ = writeln!(s, "    write cells[waddr] = din when w == 1;");
        let _ = writeln!(s, "}}");
    }

    let _ = writeln!(s, "module Ram {{");
    let _ = writeln!(s, "    in addr: bit({addr_bits});");
    let _ = writeln!(s, "    in din: bit({w});");
    let _ = writeln!(s, "    ctrl w: bit(1);");
    let _ = writeln!(s, "    out dout: bit({w});");
    let _ = writeln!(s, "    memory cells[{}]: bit({w});", spec.mem_cells);
    let _ = writeln!(s, "    read dout = cells[addr];");
    let _ = writeln!(s, "    write cells[addr] = din when w == 1;");
    let _ = writeln!(s, "}}");

    // -- processor ------------------------------------------------------
    // Allocate every field first so the instruction width is known before
    // the header is written.
    let mut alloc = FieldAlloc::new();
    let dmem_addr = alloc.field(addr_bits);
    let imm = alloc.field(spec.imm_bits);
    let alu_f = alloc.field(f_bits);

    let reg_names: Vec<String> = (0..spec.regs).map(|i| format!("r{i}")).collect();
    let mut abus_srcs: Vec<String> = vec!["acc.q".to_owned()];
    abus_srcs.extend(reg_names.iter().map(|r| format!("{r}.q")));
    abus_srcs.push("dmem.dout".to_owned());
    if spec.regfile.is_some() {
        abus_srcs.push("rf.dout".to_owned());
    }
    let mut bbus_srcs = abus_srcs.clone();
    bbus_srcs.push(imm.clone());

    let asel = alloc.field(sel_bits(abus_srcs.len()).max(2));
    let bsel = alloc.field(sel_bits(bbus_srcs.len()).max(2));
    let res_sel = if result_units > 1 {
        Some(alloc.field(sel_bits(result_units)))
    } else {
        None
    };
    let sh_f = spec.shifter.then(|| alloc.field(1));
    let acc_en = alloc.bit();
    let reg_ens: Vec<String> = (0..spec.regs).map(|_| alloc.bit()).collect();
    let dmem_w = alloc.bit();
    let rf_fields = spec.regfile.map(|cells| {
        let ra = sel_bits(cells as usize);
        (alloc.field(ra), alloc.field(ra), alloc.bit())
    });
    let iword = alloc.next;

    let _ = writeln!(s, "processor FuzzProc {{");
    let _ = writeln!(s, "    instruction word: bit({iword});");
    let _ = writeln!(s, "    bus abus: bit({w});");
    let _ = writeln!(s, "    bus bbus: bit({w});");
    let _ = write!(s, "    parts {{\n        alu: Alu;");
    if spec.shifter {
        let _ = write!(s, " sh: Shift;");
    }
    if spec.mul_unit {
        let _ = write!(s, " mul: Mul;");
    }
    if result_units > 1 {
        let _ = write!(s, " resmux: ResMux;");
    }
    let _ = write!(s, " acc: Reg;");
    for r in &reg_names {
        let _ = write!(s, " {r}: Reg;");
    }
    if spec.regfile.is_some() {
        let _ = write!(s, " rf: Rf;");
    }
    let _ = writeln!(s, " dmem: Ram;\n    }}");
    if spec.regfile.is_some() {
        let _ = writeln!(s, "    regfiles {{ rf }}");
    }
    let _ = writeln!(s, "    connections {{");
    for (i, src) in abus_srcs.iter().enumerate() {
        let _ = writeln!(s, "        drive abus = {src} when {asel} == {i};");
    }
    for (i, src) in bbus_srcs.iter().enumerate() {
        let _ = writeln!(s, "        drive bbus = {src} when {bsel} == {i};");
    }
    let _ = writeln!(s, "        alu.a = abus;");
    let _ = writeln!(s, "        alu.b = bbus;");
    let _ = writeln!(s, "        alu.f = {alu_f};");
    if spec.shifter {
        let _ = writeln!(s, "        sh.a = abus;");
        let _ = writeln!(s, "        sh.b = bbus;");
        if let Some(f) = &sh_f {
            let _ = writeln!(s, "        sh.f = {f};");
        }
    }
    if spec.mul_unit {
        // The multiplier reads its left operand from a dedicated working
        // register, like the reference machine's `t` path.
        let _ = writeln!(s, "        mul.a = r0.q;");
        let _ = writeln!(s, "        mul.b = bbus;");
    }
    let result = if let Some(sel) = &res_sel {
        let mut idx = 1;
        let _ = writeln!(s, "        resmux.a = alu.y;");
        if spec.shifter {
            let _ = writeln!(s, "        resmux.{} = sh.y;", ["a", "b", "c"][idx]);
            idx += 1;
        }
        if spec.mul_unit {
            let _ = writeln!(s, "        resmux.{} = mul.y;", ["a", "b", "c"][idx]);
        }
        let _ = writeln!(s, "        resmux.s = {sel};");
        "resmux.y"
    } else {
        "alu.y"
    };
    let _ = writeln!(s, "        acc.d = {result};");
    let _ = writeln!(s, "        acc.en = {acc_en};");
    for (r, en) in reg_names.iter().zip(&reg_ens) {
        let _ = writeln!(s, "        {r}.d = {result};");
        let _ = writeln!(s, "        {r}.en = {en};");
    }
    if let Some((raddr, waddr, rf_w)) = &rf_fields {
        let _ = writeln!(s, "        rf.din = {result};");
        let _ = writeln!(s, "        rf.w = {rf_w};");
        let _ = writeln!(s, "        rf.raddr = {raddr};");
        let _ = writeln!(s, "        rf.waddr = {waddr};");
    }
    let _ = writeln!(s, "        dmem.addr = {dmem_addr};");
    let _ = writeln!(s, "        dmem.din = abus;");
    let _ = writeln!(s, "        dmem.w = {dmem_w};");
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_specs_render_and_stay_deterministic() {
        for seed in 0..32 {
            let spec = ModelSpec::generate(&mut Rng::new(seed));
            let again = ModelSpec::generate(&mut Rng::new(seed));
            assert_eq!(spec, again, "seed {seed} must be deterministic");
            let hdl = spec.render();
            assert!(hdl.contains("processor FuzzProc"), "seed {seed}");
            assert!(spec.ops.contains(&AluOp::Add));
            assert!(spec.ops.contains(&AluOp::Mov));
            if spec.mul_unit {
                assert!(spec.regs >= 1, "mul unit needs r0");
            }
        }
    }

    #[test]
    fn shrinks_are_strictly_simpler() {
        let spec = ModelSpec::generate(&mut Rng::new(3));
        for shrunk in spec.shrinks() {
            assert_ne!(shrunk, spec);
            // Every shrink must still render (well-formedness invariant).
            let _ = shrunk.render();
        }
    }
}
