//! The differential oracle: reference interpreter vs compiled machine.
//!
//! One [`FuzzCase`] (a generated model plus a generated kernel) is pushed
//! through both semantic paths:
//!
//! 1. the mini-C reference interpreter ([`record_ir::interp`]), and
//! 2. the full pipeline — retarget the HDL, compile the kernel, run the
//!    emitted code on the RT machine simulator —
//!
//! then every memory-bound variable the program touches is compared word
//! for word.  The outcome is a [`Verdict`], triaged with the
//! [`FailureClass`] taxonomy: structured rejections (a machine with no
//! multiplier refusing `a * b` as `select/missing-hardware(mul)`) are
//! *expected-unsupported*; divergences, panics at any boundary, and
//! `internal` failure classes are *genuine bugs*.
//!
//! Every pipeline boundary runs under `catch_unwind`, so a crash anywhere
//! becomes a reportable verdict instead of killing the fuzzing run.

use crate::model::ModelSpec;
use crate::program;
use record_core::{
    panic_message, CompileError, CompileRequest, CompiledKernel, FailureClass, PipelineError,
    Record, RetargetOptions, Target,
};
use record_ir::Program;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One generated (model, kernel) pair.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    pub spec: ModelSpec,
    pub program: Program,
    /// Entry function (always `f` for generated programs).
    pub function: String,
}

impl FuzzCase {
    /// Generates the case for `seed`: model first, then a program sized
    /// to it, from one deterministic stream.
    pub fn generate(seed: u64) -> FuzzCase {
        let mut rng = crate::rng::Rng::new(seed);
        let spec = ModelSpec::generate(&mut rng);
        let program = program::generate(&mut rng, &spec);
        FuzzCase {
            spec,
            program,
            function: "f".to_owned(),
        }
    }
}

/// The oracle's judgement on one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Interpreter and machine agree on every touched variable.
    Agree,
    /// Retargeting rejected the model with a structured error.
    ModelRejected { error: String },
    /// Compilation rejected the kernel with a structured, classified
    /// error (expected-unsupported unless the kind is `internal`).
    CompileRejected { class: FailureClass },
    /// The reference path itself failed — generated cases are valid by
    /// construction, so this is a harness/frontend bug.
    InterpRejected { error: String },
    /// Machine memory disagrees with the interpreter: a miscompile.
    Diverge {
        variable: String,
        index: u64,
        machine: u64,
        interp: u64,
    },
    /// A panic unwound out of the named boundary (`retarget`,
    /// `compile:<phase>`, or `simulate`).
    Panic { boundary: String, message: String },
}

impl Verdict {
    /// A stable slug identifying the failure mode — the minimizer shrinks
    /// while this key reproduces, and corpus entries pin it.
    pub fn key(&self) -> String {
        match self {
            Verdict::Agree => "agree".to_owned(),
            Verdict::ModelRejected { .. } => "model-rejected".to_owned(),
            Verdict::CompileRejected { class } => format!("compile:{class}"),
            Verdict::InterpRejected { .. } => "interp-rejected".to_owned(),
            Verdict::Diverge { .. } => "diverge".to_owned(),
            Verdict::Panic { boundary, .. } => format!("panic:{boundary}"),
        }
    }

    /// Whether this verdict is a genuine bug (vs expected-unsupported).
    pub fn is_bug(&self) -> bool {
        match self {
            Verdict::Agree | Verdict::ModelRejected { .. } => false,
            Verdict::CompileRejected { class } => class.kind == "internal",
            Verdict::InterpRejected { .. } | Verdict::Diverge { .. } | Verdict::Panic { .. } => {
                true
            }
        }
    }
}

/// Deterministic non-trivial input data for a program's globals (the same
/// scheme the integration-test oracle uses).
pub fn init_data(program: &Program) -> Vec<(String, Vec<u64>)> {
    program
        .globals
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            let vals = (0..g.words())
                .map(|i| (gi as u64 * 37 + i * 11 + 3) & 0xFF)
                .collect();
            (g.name.clone(), vals)
        })
        .collect()
}

/// Variables the flattened program actually touches (loop variables fold
/// away during unrolling and never reach machine memory).
fn touched_variables(flat: &[record_ir::FlatStmt]) -> BTreeSet<String> {
    fn collect(e: &record_ir::FlatExpr, out: &mut BTreeSet<String>) {
        match e {
            record_ir::FlatExpr::Load(r) => {
                out.insert(r.name.clone());
            }
            record_ir::FlatExpr::Unary(_, a) => collect(a, out),
            record_ir::FlatExpr::Binary(_, a, b) => {
                collect(a, out);
                collect(b, out);
            }
            record_ir::FlatExpr::Const(_) => {}
        }
    }
    let mut set = BTreeSet::new();
    for st in flat {
        set.insert(st.target.name.clone());
        collect(&st.value, &mut set);
    }
    set
}

/// Runs the full oracle on one case.
pub fn run_case(case: &FuzzCase) -> Verdict {
    let hdl = case.spec.render();
    let source = program::render(&case.program);

    let target = match catch_unwind(AssertUnwindSafe(|| {
        Record::retarget(&hdl, &RetargetOptions::default())
    })) {
        Err(payload) => {
            return Verdict::Panic {
                boundary: "retarget".to_owned(),
                message: panic_message(payload),
            }
        }
        Ok(Err(PipelineError::Internal(message))) => {
            return Verdict::Panic {
                boundary: "retarget".to_owned(),
                message,
            }
        }
        Ok(Err(e)) => {
            return Verdict::ModelRejected {
                error: e.to_string(),
            }
        }
        Ok(Ok(target)) => target,
    };

    // The compile session has its own containment: a panic in any phase
    // comes back as `CompileError::Internal`, never unwinds.
    let kernel = match target.compile(&CompileRequest::new(&source, &case.function)) {
        Err(CompileError::Internal { phase, payload, .. }) => {
            return Verdict::Panic {
                boundary: format!("compile:{phase}"),
                message: payload,
            }
        }
        Err(e) => {
            return Verdict::CompileRejected {
                class: e.classify(),
            }
        }
        Ok(kernel) => kernel,
    };

    differential(
        &target,
        &kernel,
        &case.program,
        &case.function,
        case.spec.width,
    )
}

/// The comparison half of the oracle, reusable against an arbitrary
/// kernel — the self-test feeds it a deliberately tampered one.
pub fn differential(
    target: &Target,
    kernel: &CompiledKernel,
    program: &Program,
    function: &str,
    width: u16,
) -> Verdict {
    let flat = match record_ir::lower(program, function) {
        Ok(flat) => flat,
        Err(e) => {
            return Verdict::InterpRejected {
                error: e.to_string(),
            }
        }
    };
    let init = init_data(program);

    let mut mem = record_ir::Memory::new();
    for (name, vals) in &init {
        mem.insert(name.clone(), vals.clone());
    }
    if let Err(e) = record_ir::interp(program, function, &mut mem, width) {
        return Verdict::InterpRejected {
            error: e.to_string(),
        };
    }

    let init_refs: Vec<(&str, Vec<u64>)> =
        init.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
    let machine = match catch_unwind(AssertUnwindSafe(|| target.execute(kernel, &init_refs))) {
        Ok(machine) => machine,
        Err(payload) => {
            return Verdict::Panic {
                boundary: "simulate".to_owned(),
                message: panic_message(payload),
            }
        }
    };
    let dm = match target.data_memory() {
        Ok(dm) => dm,
        Err(e) => {
            return Verdict::CompileRejected {
                class: e.classify(),
            }
        }
    };

    let touched = touched_variables(&flat);
    for (name, addr) in kernel.binding.assignments() {
        if !touched.contains(name) {
            continue;
        }
        for (i, want) in mem[name].iter().enumerate() {
            let got = machine.mem(dm, addr + i as u64);
            if got != *want {
                return Verdict::Diverge {
                    variable: name.to_owned(),
                    index: i as u64,
                    machine: got,
                    interp: *want,
                };
            }
        }
    }
    Verdict::Agree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_keys_are_stable() {
        assert_eq!(Verdict::Agree.key(), "agree");
        assert!(!Verdict::Agree.is_bug());
        let v = Verdict::Diverge {
            variable: "g0".into(),
            index: 0,
            machine: 1,
            interp: 2,
        };
        assert_eq!(v.key(), "diverge");
        assert!(v.is_bug());
        let v = Verdict::Panic {
            boundary: "compile:emit".into(),
            message: "boom".into(),
        };
        assert_eq!(v.key(), "panic:compile:emit");
        assert!(v.is_bug());
    }
}
