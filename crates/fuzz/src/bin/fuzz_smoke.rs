//! CI fuzzing smoke run: a fixed seed range through the differential
//! oracle, with minimized reproducers for anything that looks like a
//! genuine bug.
//!
//! ```text
//! fuzz_smoke [--seed-range LO..HI] [--out DIR] [--no-minimize] [-v]
//! ```
//!
//! Exits 0 when every case either agrees or fails with an
//! expected-unsupported class; exits 1 when any case diverges, panics, or
//! produces an `internal` error, after writing a minimized `.repro` file
//! per distinct failure key to `--out` (default `target/fuzz-repro`).
//! Deterministic: the same seed range always produces the same cases and
//! the same summary.

use record_fuzz::{corpus, minimize, oracle, FuzzCase};
use std::collections::BTreeMap;
use std::process::ExitCode;

struct Args {
    lo: u64,
    hi: u64,
    out: String,
    minimize: bool,
    verbose: bool,
    /// Seeds to minimize and write as corpus reproducers (regardless of
    /// bug status), instead of running the smoke sweep.
    emit_corpus: Vec<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        lo: 0,
        hi: 200,
        out: "target/fuzz-repro".to_owned(),
        minimize: true,
        verbose: false,
        emit_corpus: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed-range" => {
                let v = it.next().ok_or("--seed-range needs LO..HI")?;
                let (lo, hi) = v.split_once("..").ok_or("--seed-range needs LO..HI")?;
                args.lo = lo.parse().map_err(|e| format!("bad LO: {e}"))?;
                args.hi = hi.parse().map_err(|e| format!("bad HI: {e}"))?;
                if args.lo >= args.hi {
                    return Err(format!("empty seed range {v}"));
                }
            }
            "--out" => args.out = it.next().ok_or("--out needs a directory")?,
            "--no-minimize" => args.minimize = false,
            "--emit-corpus" => {
                let v = it.next().ok_or("--emit-corpus needs SEED[,SEED...]")?;
                for s in v.split(',') {
                    args.emit_corpus
                        .push(s.parse().map_err(|e| format!("bad seed `{s}`: {e}"))?);
                }
            }
            "-v" | "--verbose" => args.verbose = true,
            "-h" | "--help" => {
                println!(
                    "usage: fuzz_smoke [--seed-range LO..HI] [--out DIR] [--no-minimize] \
                     [--emit-corpus SEED,SEED,...] [-v]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Minimizes each seed and writes its reproducer (whatever the verdict)
/// to `out` — the maintenance path for refreshing `tests/corpus/`.
fn emit_corpus(args: &Args) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("fuzz_smoke: cannot create {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    for &seed in &args.emit_corpus {
        let case = FuzzCase::generate(seed);
        let m = minimize::minimize(&case);
        let key = m.verdict.key();
        let repro = corpus::Reproducer {
            seed: Some(seed),
            verdict_key: key.clone(),
            case: m.case,
        };
        let fname = format!(
            "{}/seed{seed}-{}.repro",
            args.out,
            key.replace(['/', ':', '(', ')'], "-")
        );
        if let Err(e) = std::fs::write(&fname, corpus::render(&repro)) {
            eprintln!("fuzz_smoke: write {fname} failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("fuzz_smoke: seed {seed} [{key}] -> {fname}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz_smoke: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The oracle contains panics with `catch_unwind`; silence the default
    // hook's backtrace spew so contained panics don't flood CI logs.
    if !args.verbose {
        std::panic::set_hook(Box::new(|_| {}));
    }

    if !args.emit_corpus.is_empty() {
        return emit_corpus(&args);
    }

    let mut tally: BTreeMap<String, u64> = BTreeMap::new();
    // One representative seed per genuine-bug key: minimizing every
    // duplicate of the same failure would only burn CI time.
    let mut bugs: BTreeMap<String, u64> = BTreeMap::new();

    for seed in args.lo..args.hi {
        let case = FuzzCase::generate(seed);
        let verdict = oracle::run_case(&case);
        let key = verdict.key();
        if args.verbose {
            eprintln!("seed {seed}: {key}");
        }
        if verdict.is_bug() {
            bugs.entry(key.clone()).or_insert(seed);
        }
        *tally.entry(key).or_insert(0) += 1;
    }

    let total = args.hi - args.lo;
    println!("fuzz_smoke: {total} cases (seeds {}..{})", args.lo, args.hi);
    for (key, count) in &tally {
        println!("  {count:>5}  {key}");
    }

    if bugs.is_empty() {
        println!("fuzz_smoke: no genuine bugs");
        return ExitCode::SUCCESS;
    }

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("fuzz_smoke: cannot create {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    for (key, seed) in &bugs {
        let case = FuzzCase::generate(*seed);
        let (case, verdict) = if args.minimize {
            let m = minimize::minimize(&case);
            (m.case, m.verdict)
        } else {
            (case.clone(), oracle::run_case(&case))
        };
        let repro = corpus::Reproducer {
            seed: Some(*seed),
            verdict_key: verdict.key(),
            case,
        };
        // Keys contain `/` and `:` (phase/kind slugs); flatten for paths.
        let fname = format!(
            "{}/seed{seed}-{}.repro",
            args.out,
            key.replace(['/', ':', '(', ')'], "-")
        );
        match std::fs::write(&fname, corpus::render(&repro)) {
            Ok(()) => eprintln!("fuzz_smoke: BUG {key} (seed {seed}) -> {fname}"),
            Err(e) => eprintln!("fuzz_smoke: BUG {key} (seed {seed}); write {fname} failed: {e}"),
        }
    }
    eprintln!(
        "fuzz_smoke: {} genuine bug key(s) across {total} cases",
        bugs.len()
    );
    ExitCode::FAILURE
}
