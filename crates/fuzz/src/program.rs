//! Seeded generation of mini-C kernels sized to a generated model, and a
//! renderer back to concrete syntax.
//!
//! Programs are generated as [`record_ir`] ASTs — always well-formed by
//! construction (declared variables, in-bounds constant indices, loop
//! bounds inside array extents) — then rendered to source for the
//! pipeline.  The renderer parenthesizes every sub-expression, so
//! `parse(render(p)) == p` holds structurally; a round-trip test pins
//! that down.
//!
//! Operator choice is deliberately biased but not limited to what the
//! model's hardware supports: ~15% of operators come from the full
//! vocabulary, so the oracle also exercises the expected-unsupported
//! failure classes (`missing-hardware`, `selector-gap`) rather than only
//! the happy path.

use crate::model::ModelSpec;
use crate::rng::Rng;
use record_ir::{Expr, Function, LValue, Program, Span, Stmt, VarDecl};
use record_rtl::OpKind;
use std::fmt::Write as _;

/// Binary operators the mini-C surface can express.
const ALL_BINARY: [OpKind; 16] = [
    OpKind::Add,
    OpKind::Sub,
    OpKind::Mul,
    OpKind::Div,
    OpKind::Rem,
    OpKind::And,
    OpKind::Or,
    OpKind::Xor,
    OpKind::Shl,
    OpKind::Shr,
    OpKind::Eq,
    OpKind::Ne,
    OpKind::Lt,
    OpKind::Le,
    OpKind::Gt,
    OpKind::Ge,
];

struct Gen<'a> {
    rng: &'a mut Rng,
    /// Hardware-supported binary operators (preferred 85% of the time).
    supported: Vec<OpKind>,
    /// Whether unary negation has a hardware path.
    neg_supported: bool,
    scalars: Vec<String>,
    arrays: Vec<(String, u64)>,
    imm_max: u64,
    width: u16,
}

impl Gen<'_> {
    fn constant(&mut self) -> i64 {
        let roll = self.rng.below(100);
        if roll < 70 {
            self.rng.below(self.imm_max.max(2)) as i64
        } else if roll < 90 {
            self.rng.below(1u64 << self.width.min(16)) as i64
        } else {
            -(self.rng.range(1, 8) as i64)
        }
    }

    /// A leaf expression; `loop_var` is available as an index/operand
    /// inside loop bodies.
    fn leaf(&mut self, loop_var: Option<&str>) -> Expr {
        let roll = self.rng.below(100);
        if roll < 35 {
            Expr::Const(self.constant())
        } else if roll < 75 || self.arrays.is_empty() {
            if let Some(v) = loop_var {
                if self.rng.chance(25) {
                    return Expr::Var(v.to_owned());
                }
            }
            let name = self.rng.pick(&self.scalars).clone();
            Expr::Var(name)
        } else {
            let (name, size) = self.rng.pick(&self.arrays).clone();
            let idx = self.index(size, loop_var);
            Expr::Elem(name, Box::new(idx))
        }
    }

    /// An in-bounds index expression for an array of `size` words.
    fn index(&mut self, size: u64, loop_var: Option<&str>) -> Expr {
        match loop_var {
            // Loop bounds never exceed the extent of any generated
            // array, so the raw induction variable is always in bounds.
            Some(v) if self.rng.chance(60) => Expr::Var(v.to_owned()),
            _ => Expr::Const(self.rng.below(size) as i64),
        }
    }

    fn binary_op(&mut self) -> OpKind {
        if !self.supported.is_empty() && self.rng.chance(85) {
            *self.rng.pick(&self.supported)
        } else {
            *self.rng.pick(&ALL_BINARY)
        }
    }

    fn expr(&mut self, depth: u32, loop_var: Option<&str>) -> Expr {
        if depth == 0 {
            return self.leaf(loop_var);
        }
        let roll = self.rng.below(100);
        if roll < 55 {
            let op = self.binary_op();
            let a = self.expr(depth - 1, loop_var);
            let b = self.expr(depth - 1, loop_var);
            Expr::Binary(op, Box::new(a), Box::new(b))
        } else if roll < 65 && (self.neg_supported || self.rng.chance(15)) {
            // `-x` is the only unary the mini-C surface can spell.  The
            // parser folds negated constants, so match it here to keep
            // the rendered source an exact round trip.
            match self.expr(depth - 1, loop_var) {
                Expr::Const(c) => Expr::Const(c.wrapping_neg()),
                inner => Expr::Unary(OpKind::Neg, Box::new(inner)),
            }
        } else {
            self.leaf(loop_var)
        }
    }

    fn target(&mut self, loop_var: Option<&str>) -> LValue {
        if !self.arrays.is_empty() && self.rng.chance(30) {
            let (name, size) = self.rng.pick(&self.arrays).clone();
            LValue::Elem(name, self.index(size, loop_var))
        } else {
            LValue::Scalar(self.rng.pick(&self.scalars).clone())
        }
    }

    fn assign(&mut self, loop_var: Option<&str>) -> Stmt {
        let depth = self.rng.range(1, 3) as u32;
        Stmt::Assign {
            target: self.target(loop_var),
            value: self.expr(depth, loop_var),
            span: Span::default(),
        }
    }

    /// A serial dependence chain: `acc = acc op leaf` repeated, so every
    /// statement reads the previous one's result.  Long chains stress the
    /// allocator's residency tracking and defeat compaction parallelism.
    fn dependence_chain(&mut self) -> Vec<Stmt> {
        let acc = self.rng.pick(&self.scalars).clone();
        let len = self.rng.range(3, 8);
        (0..len)
            .map(|_| {
                let op = self.binary_op();
                let rhs = self.leaf(None);
                Stmt::Assign {
                    target: LValue::Scalar(acc.clone()),
                    value: Expr::Binary(op, Box::new(Expr::Var(acc.clone())), Box::new(rhs)),
                    span: Span::default(),
                }
            })
            .collect()
    }
}

/// Generates a kernel (function `f`) sized to `spec`, deterministically
/// from `rng`.
pub fn generate(rng: &mut Rng, spec: &ModelSpec) -> Program {
    let n_scalars = rng.range(1, 3);
    let n_arrays = rng.range(0, 2);
    let mut globals: Vec<VarDecl> = (0..n_scalars)
        .map(|i| VarDecl {
            name: format!("g{i}"),
            size: None,
        })
        .collect();
    let arrays: Vec<(String, u64)> = (0..n_arrays)
        .map(|i| (format!("a{i}"), rng.range(2, 6)))
        .collect();
    globals.extend(arrays.iter().map(|(name, size)| VarDecl {
        name: name.clone(),
        size: Some(*size),
    }));

    let supported = spec.supported_ops();
    let neg_supported = supported.contains(&OpKind::Neg);
    let mut g = Gen {
        rng,
        supported: supported.into_iter().filter(|op| op.arity() == 2).collect(),
        neg_supported,
        scalars: (0..n_scalars).map(|i| format!("g{i}")).collect(),
        arrays,
        imm_max: 1u64 << spec.imm_bits,
        width: spec.width,
    };

    let n_stmts = g.rng.range(1, 5);
    let mut body: Vec<Stmt> = (0..n_stmts).map(|_| g.assign(None)).collect();

    // Occasionally wrap part of the work in a counted loop; the bound
    // stays within the smallest array so `a[i]` is always in bounds.
    let min_extent = g.arrays.iter().map(|(_, s)| *s).min();
    let mut has_loop = false;
    if let Some(extent) = min_extent {
        if g.rng.chance(35) {
            has_loop = true;
            let bound = g.rng.range(2, extent.min(4)) as i64;
            let n_inner = g.rng.range(1, 2);
            let inner: Vec<Stmt> = (0..n_inner).map(|_| g.assign(Some("i"))).collect();
            let at = g.rng.below(body.len() as u64 + 1) as usize;
            body.insert(
                at,
                Stmt::For {
                    var: "i".to_owned(),
                    start: 0,
                    bound: Expr::Const(bound),
                    le: false,
                    step: 1,
                    body: inner,
                    span: Span::default(),
                },
            );
        }
    }

    // Control-flow constructs only behind the spec flag: every rng draw
    // below is gated, so legacy seeds replay the exact straight-line
    // program they always produced.
    let mut has_while = false;
    if spec.control_flow {
        if g.rng.chance(70) {
            let cond = g.expr(1, None);
            let n_then = g.rng.range(1, 2);
            let then_body: Vec<Stmt> = (0..n_then).map(|_| g.assign(None)).collect();
            let else_body: Vec<Stmt> = if g.rng.chance(50) {
                vec![g.assign(None)]
            } else {
                Vec::new()
            };
            let at = g.rng.below(body.len() as u64 + 1) as usize;
            body.insert(
                at,
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span: Span::default(),
                },
            );
        }
        if g.rng.chance(50) {
            // A countdown loop: `w = k; while (w) { ...; w = w - 1; }`.
            // Generated assigns never target `w` (it is not in the scalar
            // pool), so termination is by construction.
            has_while = true;
            let k = g.rng.range(1, 6) as i64;
            let n_inner = g.rng.range(1, 2);
            let mut inner: Vec<Stmt> = (0..n_inner).map(|_| g.assign(None)).collect();
            inner.push(Stmt::Assign {
                target: LValue::Scalar("w".to_owned()),
                value: Expr::Binary(
                    OpKind::Sub,
                    Box::new(Expr::Var("w".to_owned())),
                    Box::new(Expr::Const(1)),
                ),
                span: Span::default(),
            });
            body.push(Stmt::Assign {
                target: LValue::Scalar("w".to_owned()),
                value: Expr::Const(k),
                span: Span::default(),
            });
            body.push(Stmt::While {
                cond: Expr::Var("w".to_owned()),
                body: inner,
                span: Span::default(),
            });
        }
        if g.rng.chance(60) {
            body.extend(g.dependence_chain());
        }
    }

    let mut locals = Vec::new();
    if has_loop {
        locals.push(VarDecl {
            name: "i".to_owned(),
            size: None,
        });
    }
    if has_while {
        locals.push(VarDecl {
            name: "w".to_owned(),
            size: None,
        });
    }
    Program {
        globals,
        functions: vec![Function {
            name: "f".to_owned(),
            locals,
            body,
        }],
    }
}

/// The concrete-syntax token for a binary operator.
fn token(op: OpKind) -> &'static str {
    match op {
        OpKind::Add => "+",
        OpKind::Sub => "-",
        OpKind::Mul => "*",
        OpKind::Div => "/",
        OpKind::Rem => "%",
        OpKind::And => "&",
        OpKind::Or => "|",
        OpKind::Xor => "^",
        OpKind::Shl => "<<",
        OpKind::Shr => ">>",
        OpKind::Eq => "==",
        OpKind::Ne => "!=",
        OpKind::Lt => "<",
        OpKind::Le => "<=",
        OpKind::Gt => ">",
        OpKind::Ge => ">=",
        _ => unreachable!("not a mini-C binary operator: {op:?}"),
    }
}

fn render_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Const(c) => {
            if *c < 0 {
                let _ = write!(out, "({c})");
            } else {
                let _ = write!(out, "{c}");
            }
        }
        Expr::Var(name) => out.push_str(name),
        Expr::Elem(name, idx) => {
            let _ = write!(out, "{name}[");
            render_expr(idx, out);
            out.push(']');
        }
        Expr::Unary(OpKind::Neg, a) => {
            out.push_str("(-");
            render_expr(a, out);
            out.push(')');
        }
        Expr::Unary(op, _) => unreachable!("not a mini-C unary operator: {op:?}"),
        Expr::Binary(op, a, b) => {
            out.push('(');
            render_expr(a, out);
            let _ = write!(out, " {} ", token(*op));
            render_expr(b, out);
            out.push(')');
        }
    }
}

fn render_stmt(s: &Stmt, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Assign { target, value, .. } => {
            out.push_str(&pad);
            match target {
                LValue::Scalar(name) => out.push_str(name),
                LValue::Elem(name, idx) => {
                    let _ = write!(out, "{name}[");
                    render_expr(idx, out);
                    out.push(']');
                }
            }
            out.push_str(" = ");
            render_expr(value, out);
            out.push_str(";\n");
        }
        Stmt::For {
            var,
            start,
            bound,
            le,
            step,
            body,
            ..
        } => {
            let cmp = if *le { "<=" } else { "<" };
            let _ = write!(out, "{pad}for ({var} = {start}; {var} {cmp} ");
            render_expr(bound, out);
            out.push_str("; ");
            if *step == 1 {
                let _ = write!(out, "{var}++");
            } else {
                let _ = write!(out, "{var} += {step}");
            }
            out.push_str(") {\n");
            for s in body {
                render_stmt(s, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            let _ = write!(out, "{pad}if (");
            render_expr(cond, out);
            out.push_str(") {\n");
            for s in then_body {
                render_stmt(s, indent + 1, out);
            }
            if else_body.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in else_body {
                    render_stmt(s, indent + 1, out);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = write!(out, "{pad}while (");
            render_expr(cond, out);
            out.push_str(") {\n");
            for s in body {
                render_stmt(s, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

/// Renders a program back to mini-C source.  Every sub-expression is
/// parenthesized, so parsing the result reconstructs the same AST.
pub fn render(program: &Program) -> String {
    let mut out = String::new();
    for g in &program.globals {
        match g.size {
            None => {
                let _ = writeln!(out, "int {};", g.name);
            }
            Some(n) => {
                let _ = writeln!(out, "int {}[{n}];", g.name);
            }
        }
    }
    for f in &program.functions {
        let _ = writeln!(out, "\nvoid {}() {{", f.name);
        for l in &f.locals {
            match l.size {
                None => {
                    let _ = writeln!(out, "    int {};", l.name);
                }
                Some(n) => {
                    let _ = writeln!(out, "    int {}[{n}];", l.name);
                }
            }
        }
        for s in &f.body {
            render_stmt(s, 1, &mut out);
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_round_trip_through_the_parser() {
        for seed in 0..64 {
            let mut rng = Rng::new(seed);
            let spec = ModelSpec::generate(&mut rng);
            let program = generate(&mut rng, &spec);
            let source = render(&program);
            let reparsed = record_ir::parse(&source).unwrap_or_else(|e| {
                panic!("seed {seed}: renderer broke the grammar: {e}\n{source}")
            });
            assert_eq!(
                reparsed, program,
                "seed {seed}: round-trip mismatch\n{source}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let make = |seed| {
            let mut rng = Rng::new(seed);
            let spec = ModelSpec::generate(&mut rng);
            render(&generate(&mut rng, &spec))
        };
        assert_eq!(make(11), make(11));
        assert_ne!(make(11), make(12));
    }
}
