use crate::*;
use record_codegen::{Binding, DestSim, Loc, Machine, RtOp, SimExpr};
use record_ir::{FlatExpr, FlatStmt, Ref};
use record_netlist::{Netlist, StorageId, StorageKind};
use record_rtl::TemplateId;
use record_selgen::Selector;

fn r(name: &str, offset: u64) -> Ref {
    Ref {
        name: name.to_owned(),
        offset,
    }
}

fn load(name: &str, offset: u64) -> FlatExpr {
    FlatExpr::Load(r(name, offset))
}

fn add(a: FlatExpr, b: FlatExpr) -> FlatExpr {
    FlatExpr::Binary(record_rtl::OpKind::Add, Box::new(a), Box::new(b))
}

/// `s = 0; s = s + a[0]; s = s + a[1]; d = s;`
fn acc_chain() -> Vec<FlatStmt> {
    vec![
        FlatStmt {
            target: r("s", 0),
            value: FlatExpr::Const(0),
        },
        FlatStmt {
            target: r("s", 0),
            value: add(load("s", 0), load("a", 0)),
        },
        FlatStmt {
            target: r("s", 0),
            value: add(load("s", 0), load("a", 1)),
        },
        FlatStmt {
            target: r("d", 0),
            value: load("s", 0),
        },
    ]
}

// ---------------------------------------------------------------- liveness

#[test]
fn interval_computation() {
    let live = Liveness::analyze(&acc_chain());
    let s = live.interval(&r("s", 0)).expect("s tracked");
    assert_eq!(s.defs, vec![0, 1, 2]);
    assert_eq!(s.uses, vec![1, 2, 3]);
    assert_eq!(s.start(), 0);
    assert_eq!(s.end(), 3);
    assert_eq!(s.accesses(), 6);
    assert!(s.reused());

    let a0 = live.interval(&r("a", 0)).expect("a[0] tracked");
    assert_eq!(a0.defs, vec![]);
    assert_eq!(a0.uses, vec![1]);
    assert!(!a0.reused());

    // Array elements are separate values.
    assert!(live.interval(&r("a", 1)).is_some());
    assert!(live.interval(&r("a", 2)).is_none());
    assert_eq!(live.statements(), 4);
    assert_eq!(live.reused_values(), 1);
}

#[test]
fn interval_next_use_queries() {
    let live = Liveness::analyze(&acc_chain());
    let s = live.interval(&r("s", 0)).unwrap();
    assert_eq!(s.next_use_after(0), Some(1));
    assert_eq!(s.next_use_after(1), Some(2));
    assert_eq!(s.next_use_after(3), None);
    assert!(s.used_after(2));
    assert!(!s.used_after(3));
}

// ------------------------------------------------------------------- pool

#[test]
fn residency_eviction_order_is_belady() {
    let reg = |i| Loc::Reg(StorageId(i));
    let mut led = Residency::with_capacity(2);
    assert!(led
        .insert(
            reg(0),
            Resident {
                addr: 10,
                next_use: Some(5),
            },
        )
        .is_none());
    assert!(led
        .insert(
            reg(1),
            Resident {
                addr: 11,
                next_use: Some(50),
            },
        )
        .is_none());
    // Full: the farthest-next-use association (reg1/addr 11) goes first.
    let ev = led
        .insert(
            reg(2),
            Resident {
                addr: 12,
                next_use: Some(7),
            },
        )
        .expect("overflow evicts");
    assert_eq!(ev.loc, reg(1));
    assert_eq!(ev.residents.len(), 1);
    assert_eq!(ev.residents[0].addr, 11);
    assert!(ev.was_live());
    assert_eq!(ev.live_count(), 1);
    assert!(led.holds(&reg(0), 10));
    assert!(led.holds(&reg(2), 12));

    // Dead associations (no further use) are preferred victims.
    let mut led = Residency::with_capacity(2);
    led.insert(
        reg(0),
        Resident {
            addr: 10,
            next_use: None,
        },
    );
    led.insert(
        reg(1),
        Resident {
            addr: 11,
            next_use: Some(3),
        },
    );
    let ev = led
        .insert(
            reg(2),
            Resident {
                addr: 12,
                next_use: Some(9),
            },
        )
        .expect("overflow evicts");
    assert_eq!(ev.loc, reg(0));
    assert!(!ev.was_live());
    assert_eq!(ev.live_count(), 0);
}

/// Regression: the ledger bounds *distinct registers*, not total
/// (register, address) associations.  One register fanning a value out to
/// many addresses occupies one physical cell and must never evict entries
/// while other registers sit idle.
#[test]
fn residency_fanout_does_not_consume_capacity() {
    let reg = |i| Loc::Reg(StorageId(i));
    let mut led = Residency::with_capacity(2);
    // reg0 mirrors four words: `x = a; y = a; z = a; w = a;`.
    for (addr, nu) in [(10, Some(3)), (11, Some(4)), (12, Some(5)), (13, None)] {
        assert!(
            led.insert(reg(0), Resident { addr, next_use: nu },)
                .is_none(),
            "fan-out within one register must never evict"
        );
    }
    assert_eq!(led.len(), 4);
    assert_eq!(led.distinct_registers(), 1);
    // A second register still fits: only one of two register slots is
    // used, no matter how many addresses reg0 mirrors.
    assert!(led
        .insert(
            reg(1),
            Resident {
                addr: 20,
                next_use: Some(2),
            },
        )
        .is_none());
    assert!(led.holds(&reg(0), 10));
    assert!(led.holds(&reg(1), 20));
    assert_eq!(led.distinct_registers(), 2);

    // A third register overflows: the whole farthest-used register goes,
    // with every association it held.  reg0's nearest use (3) is farther
    // than reg1's (2), so reg0 is the Belady victim.
    let ev = led
        .insert(
            reg(2),
            Resident {
                addr: 30,
                next_use: Some(9),
            },
        )
        .expect("third register overflows the two-register ledger");
    assert_eq!(ev.loc, reg(0));
    assert_eq!(ev.residents.len(), 4);
    assert_eq!(ev.live_count(), 3); // addr 13 was dead
    assert!(led.holds(&reg(1), 20));
    assert!(led.holds(&reg(2), 30));
    assert_eq!(led.distinct_registers(), 2);
}

#[test]
fn residency_multi_association_and_invalidation() {
    let reg = |i| Loc::Reg(StorageId(i));
    let mut led = Residency::with_capacity(4);
    led.insert(
        reg(0),
        Resident {
            addr: 3,
            next_use: Some(1),
        },
    );
    // A register may mirror several equal-valued words at once.
    assert!(led
        .insert(
            reg(0),
            Resident {
                addr: 4,
                next_use: None,
            },
        )
        .is_none());
    assert!(led.holds(&reg(0), 3));
    assert!(led.holds(&reg(0), 4));
    // Re-inserting an existing pair refreshes it instead of growing.
    led.insert(
        reg(0),
        Resident {
            addr: 4,
            next_use: Some(9),
        },
    );
    assert_eq!(led.len(), 2);
    led.insert(
        reg(1),
        Resident {
            addr: 4,
            next_use: None,
        },
    );
    // Overwriting the word drops every register mirroring it.
    led.forget_addr(4);
    assert!(led.holds(&reg(0), 3));
    assert_eq!(led.len(), 1);
    // Clobbering the register drops all its associations.
    assert_eq!(led.forget(&reg(0)).len(), 1);
    assert!(led.is_empty());
}

fn retarget_pool(model_name: &str) -> (Netlist, RegisterPool) {
    let model = record_targets::models::model(model_name).expect("model exists");
    let parsed = record_hdl::parse(model.hdl).expect("parses");
    let netlist = record_netlist::elaborate(&parsed).expect("elaborates");
    let ex = record_isex::extract(&netlist, &Default::default()).expect("extracts");
    let mut base = ex.base;
    record_rtl::extend(&mut base, &Default::default());
    let dm = netlist
        .storages()
        .iter()
        .filter(|s| s.kind == StorageKind::Memory)
        .max_by_key(|s| s.size)
        .expect("data memory")
        .id;
    let pool = RegisterPool::discover(&netlist, &base, dm);
    (netlist, pool)
}

#[test]
fn pool_discovery_single_register_target() {
    // The C25-like DSP: acc, t, p are allocatable single registers; the
    // address registers are too (LARK writes, the address path reads).
    let (netlist, pool) = retarget_pool("tms320c25");
    assert!(pool.capacity() >= 3);
    let by_name = |n: &str| {
        let s = netlist.storage_by_name(n).expect("storage").id;
        pool.class_of(s)
    };
    let acc = by_name("acc").expect("acc allocatable");
    assert_eq!(acc.cells, 1);
    assert!(acc.reload.is_some(), "LAC reloads acc from dmem");
    assert!(acc.spill.is_some(), "SACL spills acc to dmem");
    let t = by_name("t").expect("t allocatable");
    assert!(t.reload.is_some(), "LT reloads t from dmem");
    assert!(t.spill.is_none(), "nothing stores t back");
    // The mode register (arp) is never allocatable.
    let arp = netlist.storage_by_name("arp").expect("arp exists");
    assert!(pool.class_of(arp.id).is_none());
    // Width bookkeeping: 16-bit registers over a 16-bit memory.
    assert!(pool.store_preserves_value(netlist.storage_by_name("acc").unwrap().id));
}

#[test]
fn pool_discovery_regfile_target() {
    // The `ref` machine declares an 8-cell register file.
    let (netlist, pool) = retarget_pool("ref");
    let rf = netlist.storage_by_name("rf").expect("rf exists");
    assert_eq!(rf.kind, StorageKind::RegFile);
    let class = pool.class_of(rf.id).expect("rf allocatable");
    assert_eq!(class.cells, 8);
    assert!(pool.capacity() > 8, "regfile cells plus plain registers");
    assert!(pool.is_allocatable(&Loc::Rf(rf.id, 3)));
    assert!(!pool.is_allocatable(&Loc::Mem(pool.data_mem(), 0)));
}

// -------------------------------------------------------- allocator (unit)

/// Builds a synthetic single-register machine: `reg0` over a data memory
/// `mem9` — enough to drive the allocator without a netlist.
fn synth_pool(reg_width: u16) -> RegisterPool {
    RegisterPool::new(
        StorageId(9),
        16,
        vec![RegClass {
            storage: StorageId(0),
            name: "reg0".into(),
            width: reg_width,
            cells: 1,
            reload: Some(TemplateId(0)),
            spill: Some(TemplateId(1)),
        }],
    )
}

fn synth_reload(reg: u32, addr: u64) -> RtOp {
    RtOp {
        template: TemplateId(0),
        dest: DestSim::Loc(Loc::Reg(StorageId(reg))),
        expr: SimExpr::MemRead(StorageId(9), Box::new(SimExpr::Const(addr))),
        transfer: None,
        cond: record_bdd::Bdd::TRUE,
    }
}

fn synth_store(reg: u32, addr: u64) -> RtOp {
    RtOp {
        template: TemplateId(1),
        dest: DestSim::MemAt(StorageId(9), SimExpr::Const(addr)),
        expr: SimExpr::Read(Loc::Reg(StorageId(reg))),
        transfer: None,
        cond: record_bdd::Bdd::TRUE,
    }
}

fn synth_modify(reg: u32) -> RtOp {
    RtOp {
        template: TemplateId(2),
        dest: DestSim::Loc(Loc::Reg(StorageId(reg))),
        expr: SimExpr::Op(
            record_rtl::OpKind::Add,
            vec![SimExpr::Read(Loc::Reg(StorageId(reg))), SimExpr::Const(1)],
        ),
        transfer: None,
        cond: record_bdd::Bdd::TRUE,
    }
}

fn run_synth(ops: &[RtOp], pool: &RegisterPool, first_scratch: u64) -> (Vec<RtOp>, AllocStats) {
    let liveness = Liveness::default();
    let layout = MemLayout {
        data_mem: StorageId(9),
        first_scratch,
    };
    allocate(ops, pool, &liveness, layout, &AllocOptions::default())
}

#[test]
fn identity_reload_is_dropped_and_store_dies() {
    // store r→5; reload 5→r (identity); store r→0 (variable result).
    let ops = vec![synth_store(0, 5), synth_reload(0, 5), synth_store(0, 0)];
    let (out, stats) = run_synth(&ops, &synth_pool(16), 5);
    assert_eq!(stats.reloads_eliminated, 1);
    // The scratch store at 5 has no remaining reader.
    assert_eq!(stats.stores_eliminated, 1);
    assert_eq!(out, vec![synth_store(0, 0)]);
    assert_eq!(stats.accesses_before(), 3);
    assert_eq!(stats.accesses_after(), 1);
}

#[test]
fn clobbered_register_keeps_its_reload() {
    // store r→5; r := r+1; reload 5→r must stay (residency lost).
    let ops = vec![
        synth_store(0, 5),
        synth_modify(0),
        synth_reload(0, 5),
        synth_store(0, 0),
    ];
    let (out, stats) = run_synth(&ops, &synth_pool(16), 5);
    assert_eq!(stats.reloads_eliminated, 0);
    assert_eq!(stats.stores_eliminated, 0);
    assert_eq!(stats.spills, 1, "clobber while a later read existed");
    assert_eq!(out.len(), 4);
}

#[test]
fn wide_register_store_is_not_an_exact_copy() {
    // A 32-bit register stored into 16-bit memory truncates: the reload
    // genuinely changes the register and must stay.
    let ops = vec![synth_store(0, 5), synth_reload(0, 5), synth_store(0, 0)];
    let (out, stats) = run_synth(&ops, &synth_pool(32), 5);
    assert_eq!(stats.reloads_eliminated, 0);
    assert_eq!(out.len(), 3);
    // Reload-established residency is still exact: a *second* reload of
    // the same word disappears.
    let ops = vec![
        synth_reload(0, 3),
        synth_store(0, 0),
        synth_reload(0, 3),
        synth_store(0, 1),
    ];
    let (_, stats) = run_synth(&ops, &synth_pool(32), 5);
    assert_eq!(stats.reloads_eliminated, 1);
}

#[test]
fn spill_on_overflow_with_capped_pool() {
    // Two registers ping-ponging two addresses; with the ledger capped at
    // one association, one of the reloads survives and the overflow is
    // counted as a spill.
    let pool = RegisterPool::new(
        StorageId(9),
        16,
        vec![
            RegClass {
                storage: StorageId(0),
                name: "r0".into(),
                width: 16,
                cells: 1,
                reload: Some(TemplateId(0)),
                spill: Some(TemplateId(1)),
            },
            RegClass {
                storage: StorageId(1),
                name: "r1".into(),
                width: 16,
                cells: 1,
                reload: Some(TemplateId(0)),
                spill: Some(TemplateId(1)),
            },
        ],
    );
    let liveness = Liveness::default();
    let layout = MemLayout {
        data_mem: StorageId(9),
        first_scratch: 4,
    };
    let ops = vec![
        synth_store(0, 4),
        synth_store(1, 5),
        synth_reload(1, 5),
        synth_reload(0, 4),
        synth_store(0, 0),
        synth_store(1, 1),
    ];
    // Unlimited: both reloads are identities and both scratch stores die.
    let (_, stats) = allocate(&ops, &pool, &liveness, layout, &AllocOptions::default());
    assert_eq!(stats.reloads_eliminated, 2);
    assert_eq!(stats.stores_eliminated, 2);
    assert_eq!(stats.spills, 0);
    // Capped at one association: the second store overflows the ledger and
    // evicts the first residency while its reload is still ahead — that
    // reload must stay, and the overflow is counted as a spill.
    let (out, stats) = allocate(
        &ops,
        &pool,
        &liveness,
        layout,
        &AllocOptions {
            max_resident: Some(1),
        },
    );
    assert_eq!(
        stats.reloads_eliminated, 1,
        "only the resident value's reload dies"
    );
    assert_eq!(stats.spills, 1, "overflow eviction of a live residency");
    assert!(out.iter().any(|o| *o == synth_reload(0, 4)));
    // The scratch word whose reload was eliminated has no reader left.
    assert_eq!(stats.stores_eliminated, 1);
}

#[test]
fn dynamic_access_is_a_barrier() {
    let dyn_read = RtOp {
        template: TemplateId(3),
        dest: DestSim::Loc(Loc::Reg(StorageId(1))),
        expr: SimExpr::MemRead(
            StorageId(9),
            Box::new(SimExpr::Read(Loc::Reg(StorageId(1)))),
        ),
        transfer: None,
        cond: record_bdd::Bdd::TRUE,
    };
    // A dynamic read may observe the scratch store: it must survive.
    let ops = vec![synth_store(0, 5), dyn_read.clone(), synth_store(0, 0)];
    let (out, stats) = run_synth(&ops, &synth_pool(16), 5);
    assert_eq!(stats.stores_eliminated, 0);
    assert_eq!(out.len(), 3);

    let dyn_write = RtOp {
        template: TemplateId(3),
        dest: DestSim::MemAt(StorageId(9), SimExpr::Read(Loc::Reg(StorageId(1)))),
        expr: SimExpr::Const(7),
        transfer: None,
        cond: record_bdd::Bdd::TRUE,
    };
    // A dynamic write may hit the stored word: the following reload is no
    // longer an identity.
    let ops = vec![synth_store(0, 5), dyn_write, synth_reload(0, 5)];
    let (_, stats) = run_synth(&ops, &synth_pool(16), 5);
    assert_eq!(stats.reloads_eliminated, 0);
}

// ------------------------------------------------- allocator (end-to-end)

/// 16-bit accumulator DSP with a T register and a MAC path (the shape of
/// the codegen crate's test machine).
const DSP: &str = r#"
    module Alu {
        in a: bit(16);
        in b: bit(16);
        ctrl f: bit(2);
        out y: bit(16);
        behavior {
            case f {
                0 => y = a + b;
                1 => y = a - b;
                2 => y = a & b;
                3 => y = b;
            }
        }
    }
    module Mul { in a: bit(16); in b: bit(16); out y: bit(16);
                 behavior { y = a * b; } }
    module Mux3 {
        in a: bit(16); in b: bit(16); in c: bit(16);
        ctrl s: bit(2);
        out y: bit(16);
        behavior { case s { 0 => y = a; 1 => y = b; 2 => y = c; } }
    }
    module Reg16 { in d: bit(16); ctrl en: bit(1); out q: bit(16);
                   register q = d when en == 1; }
    module Ram {
        in addr: bit(4); in din: bit(16); ctrl w: bit(1); out dout: bit(16);
        memory cells[16]: bit(16);
        read dout = cells[addr];
        write cells[addr] = din when w == 1;
    }
    processor AllocDsp {
        instruction word: bit(16);
        parts { alu: Alu; mul: Mul; bmux: Mux3; acc: Reg16; t: Reg16; ram: Ram; }
        connections {
            mul.a = t.q;
            mul.b = ram.dout;
            bmux.a = ram.dout;
            bmux.b = mul.y;
            bmux.c = I[15:12];
            bmux.s = I[11:10];
            alu.a = acc.q;
            alu.b = bmux.y;
            alu.f = I[1:0];
            acc.d = alu.y;
            acc.en = I[3];
            t.d = ram.dout;
            t.en = I[8];
            ram.addr = I[7:4];
            ram.din = acc.q;
            ram.w = I[9];
        }
    }
"#;

struct Rig {
    netlist: Netlist,
    base: record_rtl::TemplateBase,
    selector: Selector,
    manager: std::cell::RefCell<record_bdd::BddManager>,
    tables: record_codegen::EmitTables,
}

fn rig() -> Rig {
    let model = record_hdl::parse(DSP).expect("parses");
    let netlist = record_netlist::elaborate(&model).expect("elaborates");
    let ex = record_isex::extract(&netlist, &Default::default()).expect("extracts");
    let mut base = ex.base;
    record_rtl::extend(&mut base, &Default::default());
    let grammar = record_grammar::TreeGrammar::from_base(&base, &netlist);
    let selector = Selector::generate(std::sync::Arc::new(grammar));
    let mut manager = ex.manager;
    let tables = record_codegen::EmitTables::build(&netlist, &mut manager, netlist.iword_width());
    Rig {
        netlist,
        base,
        selector,
        manager: std::cell::RefCell::new(manager),
        tables,
    }
}

/// Compiles `csrc`, allocates, and checks the allocated code against the
/// mini-C interpreter; returns (unallocated, allocated, stats).
fn compile_both(
    r: &Rig,
    csrc: &str,
    init: &[(&str, Vec<u64>)],
) -> (Vec<RtOp>, Vec<RtOp>, AllocStats) {
    let prog = record_ir::parse(csrc).expect("mini-C parses");
    let flat = record_ir::lower(&prog, "f").expect("lowers");
    let dm = r
        .netlist
        .storages()
        .iter()
        .find(|s| s.kind == StorageKind::Memory)
        .expect("data memory")
        .id;
    let mut binding = Binding::allocate(&prog, "f", &r.netlist, dm).expect("binds");
    let ops = record_codegen::compile(
        &flat,
        &r.selector,
        &r.base,
        &mut binding,
        &r.netlist,
        &mut *r.manager.borrow_mut(),
        &r.tables,
        16,
        &mut record_probe::Probe::disabled(),
    )
    .expect("compiles")
    .ops;

    let liveness = Liveness::analyze(&flat);
    let pool = RegisterPool::discover(&r.netlist, &r.base, dm);
    let (alloc_ops, stats) = allocate(
        &ops,
        &pool,
        &liveness,
        MemLayout::from_binding(&binding),
        &AllocOptions::default(),
    );

    // Oracle.
    let mut mem = record_ir::Memory::new();
    for (k, v) in init {
        mem.insert((*k).to_owned(), v.clone());
    }
    record_ir::interp(&prog, "f", &mut mem, 16).expect("interprets");

    let mut m = Machine::new(&r.netlist);
    for (k, v) in init {
        let base_addr = binding
            .assignments()
            .find(|(n, _)| n == k)
            .expect("bound var")
            .1;
        for (i, val) in v.iter().enumerate() {
            m.set_mem(dm, base_addr + i as u64, *val & 0xFFFF);
        }
    }
    m.run(&alloc_ops);
    for (name, addr) in binding.assignments() {
        for (i, want) in mem[name].iter().enumerate() {
            assert_eq!(
                m.mem(dm, addr + i as u64),
                *want,
                "allocated code disagrees with the interpreter at {name}[{i}]"
            );
        }
    }
    (ops, alloc_ops, stats)
}

#[test]
fn accumulator_chain_stays_resident() {
    let r = rig();
    let src =
        "int a[4], s; void f() { s = 0; s = s + a[0]; s = s + a[1]; s = s + a[2]; s = s + a[3]; }";
    let (plain, alloc, stats) = compile_both(&r, src, &[("a", vec![3, 5, 7, 11])]);
    // Every intermediate `acc := dmem[s]` reload and `dmem[s] := acc`
    // store disappears; only the final store remains.
    assert_eq!(stats.reloads_eliminated, 4);
    assert_eq!(stats.stores_eliminated, 4);
    assert!(alloc.len() < plain.len());
    let dm = MemLayout {
        data_mem: StorageId(0),
        first_scratch: 0,
    };
    let _ = dm; // layout asserted through stats below
    assert!(stats.accesses_after() < stats.accesses_before());
    assert_eq!(
        stats.accesses_after(),
        stats.accesses_before() - stats.accesses_saved()
    );
}

#[test]
fn independent_statements_are_untouched() {
    let r = rig();
    let src = "int a, b, x, y; void f() { x = a + 1; y = b + 2; }";
    let (plain, alloc, stats) = compile_both(&r, src, &[("a", vec![9]), ("b", vec![4])]);
    assert_eq!(plain, alloc, "nothing to allocate, nothing changed");
    assert_eq!(stats.reloads_eliminated, 0);
    assert_eq!(stats.stores_eliminated, 0);
    assert_eq!(stats.accesses_before(), stats.accesses_after());
}

#[test]
fn register_mirrors_several_equal_words() {
    let r = rig();
    // After `x = a`, the accumulator equals both `a` and `x`; the second
    // statement's reload of `a` is an identity and must disappear.
    let src = "int a, x, y; void f() { x = a; y = a; }";
    let (plain, alloc, stats) = compile_both(&r, src, &[("a", vec![77])]);
    assert_eq!(
        stats.reloads_eliminated, 1,
        "second load of `a` is identity"
    );
    assert_eq!(stats.spills, 0, "no residency was actually lost");
    assert!(alloc.len() < plain.len());
}

#[test]
fn copy_propagation_through_memory() {
    let r = rig();
    // `y = x` then reuse of `y`: the reload of y after its store is an
    // identity because acc still holds it.
    let src = "int x, y, z; void f() { y = x + 1; z = y + 2; }";
    let (plain, alloc, stats) = compile_both(&r, src, &[("x", vec![40])]);
    assert!(stats.reloads_eliminated >= 1);
    assert!(alloc.len() < plain.len());
    // The store to y must survive: y is a program variable.
    assert!(stats.writes_after >= 2);
}
