//! Register allocation & value placement: keep operands out of memory.
//!
//! The code selector emits *memory-bound* vertical code: each statement's
//! result is stored to data memory and each operand starts as a memory
//! read, because tree parsing works statement-at-a-time (paper §3.2 notes
//! that "limitations of tree parsing mainly concern incorporation of
//! register spills").  On real DSPs the hand-written reference code of the
//! paper's Figure 2 keeps chained values in the accumulator across
//! statements; this crate closes that gap as a separate backend phase:
//!
//! * [`Liveness`] computes def/use intervals per storage word over the
//!   flattened mini-C statements — which values are worth keeping
//!   resident.
//! * [`RegisterPool`] discovers, per target, the registers and register
//!   files the extracted RT templates can actually route values through,
//!   along with their spill/reload templates into data memory.
//! * [`Allocator`] rewrites the emitted [`record_codegen::RtOp`] sequence:
//!   values stay register-resident across statements, identity reloads
//!   disappear, dead result stores disappear, and reload/spill RTs remain
//!   in the output only where residency was genuinely lost ([`Residency`]
//!   overflow or clobbering).
//!
//! The phase is driven by `record-core`'s `Target::compile` (option
//! `allocate_registers`, on by default) and validated against the RT-level
//! machine simulator oracle for every Figure 2 kernel on all Table 3
//! models.

mod alloc;
mod liveness;
mod pool;

pub use alloc::{
    allocate, allocate_cfg, allocate_cfg_probed, allocate_probed, mem_traffic, AllocOptions,
    AllocStats, Allocator, MemLayout,
};
pub use liveness::{CfgLiveness, Interval, Liveness};
pub use pool::{Evicted, RegClass, RegisterPool, Residency, Resident};

#[cfg(test)]
mod tests;
