//! The allocating rewriter: keeps operand values register-resident across
//! statements instead of round-tripping them through data memory.
//!
//! Input is the vertical [`RtOp`] sequence the emitter produced, in which
//! every statement ends by storing its result to data memory and every
//! operand begins life as a memory read.  Two passes rewrite it:
//!
//! 1. **Residency (forward).**  A [`Residency`] ledger tracks, per pool
//!    register, which data-memory word's value it currently holds (exact
//!    value equality, established by stores `dmem[a] := r` and reloads
//!    `r := dmem[a]`, invalidated by any write to either side).  A reload
//!    whose destination register *already holds* the loaded word is the
//!    identity and is dropped; every other op is emitted unchanged — so
//!    reload RTs appear in the output exactly where residency was lost
//!    (the register was clobbered, or the ledger overflowed and evicted
//!    the association).
//! 2. **Dead-store elimination (backward).**  After reloads disappear,
//!    intermediate result stores often have no remaining reader before the
//!    next store to the same word.  Program variables stay observable at
//!    the end of the program (the simulator oracle compares them); spill
//!    scratch words above the binding watermark do not.
//!
//! Both passes only ever *remove* provably-identity operations, so the
//! rewritten code computes bit-identical final variable values on the
//! [`record_codegen::Machine`] oracle while making strictly fewer data
//! memory accesses whenever the source reuses a value.

use crate::liveness::{CfgLiveness, Liveness};
use crate::pool::{RegisterPool, Residency, Resident};
use record_codegen::{Binding, DestSim, Loc, RtOp, SimExpr};
use record_netlist::StorageId;
use std::collections::{HashMap, HashSet};

/// Options for [`allocate`].
#[derive(Debug, Clone, Default)]
pub struct AllocOptions {
    /// Caps the number of simultaneously tracked register residencies;
    /// `None` uses the pool capacity (every physical cell).  Lower values
    /// force pool overflow and are mainly useful for testing the eviction
    /// path.
    pub max_resident: Option<usize>,
}

/// Counters describing what the allocator did to one kernel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// RT operations before / after rewriting.
    pub ops_before: usize,
    pub ops_after: usize,
    /// Reload RTs dropped because the value was register-resident.
    pub reloads_eliminated: usize,
    /// Dead data-memory stores removed.
    pub stores_eliminated: usize,
    /// Residencies lost (register clobbered or ledger overflow) while the
    /// memory word still had a later read — each one forces a reload RT to
    /// stay in the output.
    pub spills: usize,
    /// Data-memory reads before / after.
    pub reads_before: usize,
    pub reads_after: usize,
    /// Data-memory writes before / after.
    pub writes_before: usize,
    pub writes_after: usize,
    /// Source values accessed more than once (liveness upper bound on
    /// profitable residency).
    pub reused_values: usize,
}

impl AllocStats {
    /// Total data-memory accesses before rewriting.
    pub fn accesses_before(&self) -> usize {
        self.reads_before + self.writes_before
    }

    /// Total data-memory accesses after rewriting.
    pub fn accesses_after(&self) -> usize {
        self.reads_after + self.writes_after
    }

    /// Accesses removed.
    pub fn accesses_saved(&self) -> usize {
        self.accesses_before() - self.accesses_after()
    }
}

/// Memory layout facts the allocator needs from the binding phase.
#[derive(Debug, Clone, Copy)]
pub struct MemLayout {
    /// The data memory program variables live in.
    pub data_mem: StorageId,
    /// First address above the variable area: everything from here up is
    /// compiler scratch, unobservable at program end.
    pub first_scratch: u64,
}

impl MemLayout {
    /// Extracts the layout from a binding.
    pub fn from_binding(binding: &Binding) -> MemLayout {
        MemLayout {
            data_mem: binding.data_mem(),
            first_scratch: binding.scratch_mark(),
        }
    }
}

/// Counts data-memory reads and writes of an op sequence (constant and
/// computed addresses alike; one access per textual occurrence).
pub fn mem_traffic(ops: &[RtOp], dm: StorageId) -> (usize, usize) {
    let mut reads = 0;
    let mut writes = 0;
    for op in ops {
        count_expr_reads(&op.expr, dm, &mut reads);
        match &op.dest {
            DestSim::MemAt(s, addr) => {
                count_expr_reads(addr, dm, &mut reads);
                if *s == dm {
                    writes += 1;
                }
            }
            DestSim::Loc(Loc::Mem(s, _)) => {
                if *s == dm {
                    writes += 1;
                }
            }
            DestSim::Loc(_) => {}
        }
    }
    (reads, writes)
}

fn count_expr_reads(e: &SimExpr, dm: StorageId, n: &mut usize) {
    match e {
        SimExpr::Const(_) => {}
        SimExpr::Read(Loc::Mem(s, _)) => {
            if *s == dm {
                *n += 1;
            }
        }
        SimExpr::Read(_) => {}
        SimExpr::MemRead(s, addr) => {
            if *s == dm {
                *n += 1;
            }
            count_expr_reads(addr, dm, n);
        }
        SimExpr::Op(_, args) => args.iter().for_each(|a| count_expr_reads(a, dm, n)),
    }
}

/// A data-memory access with a statically known address, or a dynamic one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemAccess {
    Const(u64),
    Dynamic,
}

/// Precise data-memory read set of one op (the conservative
/// [`RtOp::reads`] folds every memory read to "dynamic", which would
/// defeat dead-store analysis).
fn dm_reads(op: &RtOp, dm: StorageId) -> Vec<MemAccess> {
    let mut out = Vec::new();
    collect_dm_reads(&op.expr, dm, &mut out);
    if let DestSim::MemAt(_, addr) = &op.dest {
        collect_dm_reads(addr, dm, &mut out);
    }
    out
}

fn collect_dm_reads(e: &SimExpr, dm: StorageId, out: &mut Vec<MemAccess>) {
    match e {
        SimExpr::Const(_) => {}
        SimExpr::Read(Loc::Mem(s, a)) => {
            if *s == dm {
                out.push(MemAccess::Const(*a));
            }
        }
        SimExpr::Read(_) => {}
        SimExpr::MemRead(s, addr) => {
            if *s == dm {
                match **addr {
                    SimExpr::Const(a) => out.push(MemAccess::Const(a)),
                    _ => out.push(MemAccess::Dynamic),
                }
            }
            collect_dm_reads(addr, dm, out);
        }
        SimExpr::Op(_, args) => args.iter().for_each(|a| collect_dm_reads(a, dm, out)),
    }
}

/// The data-memory write of one op, if any.
fn dm_write(op: &RtOp, dm: StorageId) -> Option<MemAccess> {
    match &op.dest {
        DestSim::MemAt(s, addr) if *s == dm => match addr {
            SimExpr::Const(a) => Some(MemAccess::Const(*a)),
            _ => Some(MemAccess::Dynamic),
        },
        DestSim::Loc(Loc::Mem(s, a)) if *s == dm => Some(MemAccess::Const(*a)),
        _ => None,
    }
}

/// Is this op a pure reload `reg := dmem[const]` of a pool register?
/// Returns the register and the loaded address.
fn as_reload(op: &RtOp, pool: &RegisterPool) -> Option<(Loc, u64)> {
    let DestSim::Loc(loc) = &op.dest else {
        return None;
    };
    if !pool.is_allocatable(loc) {
        return None;
    }
    let addr = match &op.expr {
        SimExpr::MemRead(s, addr) if *s == pool.data_mem() => match **addr {
            SimExpr::Const(a) => a,
            _ => return None,
        },
        SimExpr::Read(Loc::Mem(s, a)) if *s == pool.data_mem() => *a,
        _ => return None,
    };
    Some((loc.clone(), addr))
}

/// Is this op a plain store `dmem[const] := reg` of a pool register?
fn as_store(op: &RtOp, pool: &RegisterPool) -> Option<(Loc, u64)> {
    let addr = match &op.dest {
        DestSim::MemAt(s, SimExpr::Const(a)) if *s == pool.data_mem() => *a,
        DestSim::Loc(Loc::Mem(s, a)) if *s == pool.data_mem() => *a,
        _ => return None,
    };
    let SimExpr::Read(src) = &op.expr else {
        return None;
    };
    if !pool.is_allocatable(src) {
        return None;
    }
    Some((src.clone(), addr))
}

/// Records in `ledger` that `loc` now mirrors `addr` as of op `i`:
/// eviction keys are refreshed first (they go stale as the pass advances),
/// and every still-live association a Belady eviction drops counts as a
/// spill (each one forces a reload RT to stay in the output).
fn establish<F: Fn(u64, usize) -> Option<usize>>(
    ledger: &mut Residency,
    loc: Loc,
    addr: u64,
    i: usize,
    next_use: &F,
    stats: &mut AllocStats,
) {
    ledger.refresh_next_uses(|a| next_use(a, i));
    if let Some(ev) = ledger.insert(
        loc,
        Resident {
            addr,
            next_use: next_use(addr, i),
        },
    ) {
        stats.spills += ev.live_count();
    }
}

/// The value-placement rewriter.  See the module docs for the algorithm.
#[derive(Debug)]
pub struct Allocator<'a> {
    pool: &'a RegisterPool,
    liveness: &'a Liveness,
    layout: MemLayout,
    options: AllocOptions,
}

impl<'a> Allocator<'a> {
    /// A rewriter over `pool` for code laid out per `layout`.
    pub fn new(
        pool: &'a RegisterPool,
        liveness: &'a Liveness,
        layout: MemLayout,
        options: AllocOptions,
    ) -> Self {
        Allocator {
            pool,
            liveness,
            layout,
            options,
        }
    }

    /// Rewrites `ops`, returning the allocated sequence and its stats.
    pub fn run(&self, ops: &[RtOp]) -> (Vec<RtOp>, AllocStats) {
        self.run_probed(ops, &mut record_probe::Probe::disabled())
    }

    /// Like [`Allocator::run`], with each pass wrapped in a trace span
    /// (`"allocate.residency"`, `"allocate.dead-store"`).
    pub fn run_probed(
        &self,
        ops: &[RtOp],
        probe: &mut record_probe::Probe<'_>,
    ) -> (Vec<RtOp>, AllocStats) {
        let dm = self.layout.data_mem;
        let mut stats = AllocStats {
            ops_before: ops.len(),
            reused_values: self.liveness.reused_values(),
            ..AllocStats::default()
        };
        (stats.reads_before, stats.writes_before) = mem_traffic(ops, dm);

        probe.begin("allocate.residency");
        let kept = self.residency_pass(ops, &mut stats);
        probe.end("allocate.residency");
        probe.begin("allocate.dead-store");
        let kept = self.dead_store_pass(kept, &mut stats);
        probe.end("allocate.dead-store");

        stats.ops_after = kept.len();
        (stats.reads_after, stats.writes_after) = mem_traffic(&kept, dm);
        (kept, stats)
    }

    /// Forward pass: drop reloads of register-resident values.
    fn residency_pass(&self, ops: &[RtOp], stats: &mut AllocStats) -> Vec<RtOp> {
        let dm = self.layout.data_mem;
        // Read sites per constant address, for Belady ranking and for
        // spill accounting (a lost residency only matters if a later read
        // exists).
        let mut read_sites: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            for r in dm_reads(op, dm) {
                if let MemAccess::Const(a) = r {
                    read_sites.entry(a).or_default().push(i);
                }
            }
        }
        let next_use = |addr: u64, after: usize| -> Option<usize> {
            let sites = read_sites.get(&addr)?;
            let i = sites.partition_point(|&s| s <= after);
            sites.get(i).copied()
        };

        let capacity = self
            .options
            .max_resident
            .unwrap_or_else(|| self.pool.capacity().min(usize::MAX as u64) as usize);
        let mut ledger = Residency::with_capacity(capacity.max(1));
        let mut out = Vec::with_capacity(ops.len());

        for (i, op) in ops.iter().enumerate() {
            // 1. Identity reload?  Drop it; the value is already resident.
            if let Some((loc, addr)) = as_reload(op, self.pool) {
                if ledger.holds(&loc, addr) {
                    stats.reloads_eliminated += 1;
                    continue;
                }
            }

            // 2. Apply the op's effect on the ledger.
            let write = op.write();
            match &write {
                Loc::Reg(_) | Loc::Rf(..) if self.pool.is_allocatable(&write) => {
                    for r in ledger.forget(&write) {
                        if next_use(r.addr, i).is_some() {
                            stats.spills += 1;
                        }
                    }
                    if let Some((loc, addr)) = as_reload(op, self.pool) {
                        // The register now mirrors the memory word.
                        establish(&mut ledger, loc, addr, i, &next_use, stats);
                    }
                }
                Loc::Mem(s, a) if *s == dm => {
                    self.apply_store(&mut ledger, op, *a, i, &next_use, stats);
                }
                Loc::MemDyn(s) if *s == dm => {
                    // Unknown address: every association may be stale.
                    // Dropped residencies with a later read are spills like
                    // any other loss path.
                    stats.spills += ledger
                        .residents()
                        .filter(|(_, r)| next_use(r.addr, i).is_some())
                        .count();
                    ledger.clear();
                }
                _ => {}
            }
            // `DestSim::MemAt` with a constant address surfaces as
            // `Loc::Mem` through `RtOp::write`; dynamic ones as `MemDyn`.

            out.push(op.clone());
        }
        out
    }

    /// Ledger effect of a store to constant address `addr`.
    fn apply_store<F: Fn(u64, usize) -> Option<usize>>(
        &self,
        ledger: &mut Residency,
        op: &RtOp,
        addr: u64,
        i: usize,
        next_use: &F,
        stats: &mut AllocStats,
    ) {
        // The memory word changed: registers holding its old value are
        // stale.
        ledger.forget_addr(addr);
        // If the stored value came straight from a pool register whose
        // store loses no bits, that register now mirrors the word.
        if let Some((src, a)) = as_store(op, self.pool) {
            debug_assert_eq!(a, addr);
            let storage = match src {
                Loc::Reg(s) | Loc::Rf(s, _) => s,
                _ => unreachable!("as_store returns register locations"),
            };
            if self.pool.store_preserves_value(storage) {
                establish(ledger, src, addr, i, next_use, stats);
            }
        }
    }

    /// Backward pass: remove stores no one reads before the next definite
    /// overwrite.  Variable words (below the scratch watermark) count as
    /// read at program end; scratch words do not.
    fn dead_store_pass(&self, ops: Vec<RtOp>, stats: &mut AllocStats) -> Vec<RtOp> {
        let dm = self.layout.data_mem;
        // `live`: addresses whose current value may still be read.  At the
        // end of the program every variable word is observable (the oracle
        // compares them); scratch words above the watermark are not.
        let mut live: HashSet<u64> = (0..self.layout.first_scratch).collect();
        let mut all_live = false;
        let mut keep = vec![true; ops.len()];

        for (i, op) in ops.iter().enumerate().rev() {
            if let Some(w) = dm_write(op, dm) {
                match w {
                    MemAccess::Const(a) => {
                        if !all_live && !live.contains(&a) {
                            keep[i] = false;
                            stats.stores_eliminated += 1;
                            continue;
                        }
                        // This write supplies the observed value; earlier
                        // values of `a` are dead until an earlier read
                        // appears.
                        if !all_live {
                            live.remove(&a);
                        }
                    }
                    MemAccess::Dynamic => {
                        // May or may not overwrite anything: proves no
                        // earlier store dead, keeps everything live.
                        all_live = true;
                    }
                }
            }
            for r in dm_reads(op, dm) {
                match r {
                    MemAccess::Const(a) => {
                        live.insert(a);
                    }
                    MemAccess::Dynamic => all_live = true,
                }
            }
        }

        ops.into_iter()
            .zip(keep)
            .filter_map(|(op, k)| k.then_some(op))
            .collect()
    }
}

/// Convenience entry point: rewrites `ops` over `pool`.
///
/// The residency passes themselves track value locations at op
/// granularity (exact, from the sequence itself); the statement-level
/// `liveness` currently feeds the `reused_values` diagnostic only.  It
/// stays in the signature because the roadmap's follow-ons
/// (template-switching rewrites, cross-block allocation) key off the
/// interval data.
pub fn allocate(
    ops: &[RtOp],
    pool: &RegisterPool,
    liveness: &Liveness,
    layout: MemLayout,
    options: &AllocOptions,
) -> (Vec<RtOp>, AllocStats) {
    Allocator::new(pool, liveness, layout, options.clone()).run(ops)
}

/// Per-block allocation for CFG code.
///
/// Each block's op range is rewritten independently: the residency
/// ledger starts empty per block (no register state is assumed across a
/// control transfer — predecessors differ and loops re-enter), and the
/// dead-store pass runs with its usual end-state rule per block, which
/// keeps every variable word observable at block boundaries.  Scratch
/// words never escape a block (emission defines them before any read in
/// the same block), so block-local analysis loses nothing.
///
/// Returns the rewritten sequence, the new per-block op ranges (ops are
/// only ever removed, so ranges shift), and the summed stats.
pub fn allocate_cfg_probed(
    ops: &[RtOp],
    block_ranges: &[std::ops::Range<usize>],
    pool: &RegisterPool,
    liveness: &CfgLiveness,
    layout: MemLayout,
    options: &AllocOptions,
    probe: &mut record_probe::Probe<'_>,
) -> (Vec<RtOp>, Vec<std::ops::Range<usize>>, AllocStats) {
    let mut out = Vec::with_capacity(ops.len());
    let mut ranges = Vec::with_capacity(block_ranges.len());
    let mut total = AllocStats::default();
    for (b, r) in block_ranges.iter().enumerate() {
        let alloc = Allocator::new(pool, liveness.block(b), layout, options.clone());
        let (kept, stats) = alloc.run_probed(&ops[r.clone()], probe);
        let start = out.len();
        out.extend(kept);
        ranges.push(start..out.len());
        total.ops_before += stats.ops_before;
        total.ops_after += stats.ops_after;
        total.reloads_eliminated += stats.reloads_eliminated;
        total.stores_eliminated += stats.stores_eliminated;
        total.spills += stats.spills;
        total.reads_before += stats.reads_before;
        total.reads_after += stats.reads_after;
        total.writes_before += stats.writes_before;
        total.writes_after += stats.writes_after;
        total.reused_values += stats.reused_values;
    }
    (out, ranges, total)
}

/// [`allocate_cfg_probed`] without tracing.
pub fn allocate_cfg(
    ops: &[RtOp],
    block_ranges: &[std::ops::Range<usize>],
    pool: &RegisterPool,
    liveness: &CfgLiveness,
    layout: MemLayout,
    options: &AllocOptions,
) -> (Vec<RtOp>, Vec<std::ops::Range<usize>>, AllocStats) {
    allocate_cfg_probed(
        ops,
        block_ranges,
        pool,
        liveness,
        layout,
        options,
        &mut record_probe::Probe::disabled(),
    )
}

/// [`allocate`] with per-pass trace spans.
pub fn allocate_probed(
    ops: &[RtOp],
    pool: &RegisterPool,
    liveness: &Liveness,
    layout: MemLayout,
    options: &AllocOptions,
    probe: &mut record_probe::Probe<'_>,
) -> (Vec<RtOp>, AllocStats) {
    Allocator::new(pool, liveness, layout, options.clone()).run_probed(ops, probe)
}
