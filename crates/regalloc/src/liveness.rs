//! Statement-level liveness: def/use intervals per storage word.
//!
//! The unit of analysis is the [`Ref`] — one word of a bound program
//! variable (scalars are offset 0, array elements carry their constant
//! offset).  For straight-line flattened code an interval is simply the
//! span of statement indices between the first and last access; a value is
//! worth keeping register-resident exactly when it is accessed more than
//! once, or defined and then used later (the accumulator pattern).

use record_ir::{Cfg, FlatExpr, FlatStmt, Ref, Terminator};
use std::collections::{BTreeMap, BTreeSet};

/// Def/use profile of one storage word across a statement list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interval {
    /// The word this interval describes.
    pub reference: Ref,
    /// Statement indices that write the word, ascending.
    pub defs: Vec<usize>,
    /// Statement indices that read the word, ascending (a statement reading
    /// the word several times appears once).
    pub uses: Vec<usize>,
}

impl Interval {
    /// First statement touching the word.
    pub fn start(&self) -> usize {
        self.defs
            .first()
            .copied()
            .into_iter()
            .chain(self.uses.first().copied())
            .min()
            .expect("intervals are never empty")
    }

    /// Last statement touching the word.
    pub fn end(&self) -> usize {
        self.defs
            .last()
            .copied()
            .into_iter()
            .chain(self.uses.last().copied())
            .max()
            .expect("intervals are never empty")
    }

    /// Total number of accesses.
    pub fn accesses(&self) -> usize {
        self.defs.len() + self.uses.len()
    }

    /// Is the value read after `stmt` (exclusive)?
    pub fn used_after(&self, stmt: usize) -> bool {
        self.uses.last().is_some_and(|&u| u > stmt)
    }

    /// The next statement reading the word strictly after `stmt`.
    pub fn next_use_after(&self, stmt: usize) -> Option<usize> {
        let i = self.uses.partition_point(|&u| u <= stmt);
        self.uses.get(i).copied()
    }

    /// Would keeping this word in a register pay off?  True when the word
    /// is accessed more than once — every repeated access is a memory
    /// round-trip the allocator can try to remove.
    pub fn reused(&self) -> bool {
        self.accesses() > 1
    }
}

/// Liveness information for a flattened function body.
#[derive(Debug, Clone, Default)]
pub struct Liveness {
    intervals: BTreeMap<Ref, Interval>,
    statements: usize,
}

impl Liveness {
    /// Computes def/use intervals over `stmts`.
    pub fn analyze(stmts: &[FlatStmt]) -> Liveness {
        Liveness::analyze_block(stmts, &BTreeSet::new())
    }

    /// Computes def/use intervals over one basic block whose `live_out`
    /// words escape to other blocks.  Escaping words get an artificial
    /// use at index `stmts.len()` (one past the last statement), so
    /// [`Interval::used_after`] and Belady ranking treat them as read at
    /// the block boundary.  With an empty `live_out` this is exactly
    /// [`Liveness::analyze`].
    pub fn analyze_block(stmts: &[FlatStmt], live_out: &BTreeSet<Ref>) -> Liveness {
        let mut intervals: BTreeMap<Ref, Interval> = BTreeMap::new();
        let mut record = |r: &Ref, stmt: usize, is_def: bool| {
            let e = intervals.entry(r.clone()).or_insert_with(|| Interval {
                reference: r.clone(),
                defs: Vec::new(),
                uses: Vec::new(),
            });
            let sites = if is_def { &mut e.defs } else { &mut e.uses };
            if sites.last() != Some(&stmt) {
                sites.push(stmt);
            }
        };
        for (i, s) in stmts.iter().enumerate() {
            collect_uses(&s.value, &mut |r| record(r, i, false));
            record(&s.target, i, true);
        }
        for r in live_out {
            record(r, stmts.len(), false);
        }
        Liveness {
            intervals,
            statements: stmts.len(),
        }
    }

    /// Interval for one word, if the program touches it.
    pub fn interval(&self, r: &Ref) -> Option<&Interval> {
        self.intervals.get(r)
    }

    /// All intervals in `Ref` order.
    pub fn intervals(&self) -> impl Iterator<Item = &Interval> {
        self.intervals.values()
    }

    /// Number of analysed statements.
    pub fn statements(&self) -> usize {
        self.statements
    }

    /// Number of words accessed more than once — the allocator's upper
    /// bound on profitable register residency.
    pub fn reused_values(&self) -> usize {
        self.intervals.values().filter(|i| i.reused()).count()
    }
}

/// Per-block liveness for a lowered CFG: classic backward dataflow.
///
/// `live_in[b] = use[b] ∪ (live_out[b] − def[b])`,
/// `live_out[b] = ⋃ live_in[succ]`, iterated to fixpoint (the lattice is
/// finite sets under union, so it terminates).  A branch terminator's
/// condition reads count as uses at the end of the block.  The halt
/// block's live-out is empty *at this level*: program variables stay
/// observable at program end, but that is the allocator's dead-store
/// policy (it never kills variable words at a block boundary), not a
/// dataflow fact.
///
/// Each block also carries the [`Liveness`] interval data the Belady
/// ledger ranks by, computed with the block's live-out words as
/// artificial end-of-block uses.  For a single-block CFG this degenerates
/// to exactly [`Liveness::analyze`].
#[derive(Debug, Clone)]
pub struct CfgLiveness {
    blocks: Vec<Liveness>,
    live_in: Vec<BTreeSet<Ref>>,
    live_out: Vec<BTreeSet<Ref>>,
}

impl CfgLiveness {
    /// Runs the fixpoint over `cfg`.
    pub fn analyze(cfg: &Cfg) -> CfgLiveness {
        let n = cfg.blocks.len();
        // Upward-exposed uses and defs per block.  A branch condition is
        // evaluated after every statement, so its reads are exposed only
        // when the block does not define the word.
        let mut uses: Vec<BTreeSet<Ref>> = vec![BTreeSet::new(); n];
        let mut defs: Vec<BTreeSet<Ref>> = vec![BTreeSet::new(); n];
        for (i, b) in cfg.blocks.iter().enumerate() {
            for s in &b.stmts {
                collect_uses(&s.value, &mut |r| {
                    if !defs[i].contains(r) {
                        uses[i].insert(r.clone());
                    }
                });
                defs[i].insert(s.target.clone());
            }
            if let Terminator::Branch { cond, .. } = &b.term {
                collect_uses(cond, &mut |r| {
                    if !defs[i].contains(r) {
                        uses[i].insert(r.clone());
                    }
                });
            }
        }

        let mut live_in: Vec<BTreeSet<Ref>> = vec![BTreeSet::new(); n];
        let mut live_out: Vec<BTreeSet<Ref>> = vec![BTreeSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let mut out = BTreeSet::new();
                for s in cfg.blocks[i].term.successors() {
                    out.extend(live_in[s].iter().cloned());
                }
                let mut inn = uses[i].clone();
                inn.extend(out.difference(&defs[i]).cloned());
                if out != live_out[i] || inn != live_in[i] {
                    live_out[i] = out;
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }

        let blocks = cfg
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                // The branch condition's reads happen at the terminator:
                // artificial end-of-block uses, like escaping words.
                let mut end_uses = live_out[i].clone();
                if let Terminator::Branch { cond, .. } = &b.term {
                    collect_uses(cond, &mut |r| {
                        end_uses.insert(r.clone());
                    });
                }
                Liveness::analyze_block(&b.stmts, &end_uses)
            })
            .collect();
        CfgLiveness {
            blocks,
            live_in,
            live_out,
        }
    }

    /// Interval data of block `b` (live-out words appear as uses at the
    /// block's end index).
    pub fn block(&self, b: usize) -> &Liveness {
        &self.blocks[b]
    }

    /// Words live on entry to block `b`.
    pub fn live_in(&self, b: usize) -> &BTreeSet<Ref> {
        &self.live_in[b]
    }

    /// Words live on exit from block `b`.
    pub fn live_out(&self, b: usize) -> &BTreeSet<Ref> {
        &self.live_out[b]
    }

    /// Number of blocks analysed.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True for an empty CFG (never produced by lowering).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Words accessed more than once in some block — the per-block upper
    /// bound on profitable register residency, summed.
    pub fn reused_values(&self) -> usize {
        self.blocks.iter().map(Liveness::reused_values).sum()
    }
}

fn collect_uses(e: &FlatExpr, f: &mut impl FnMut(&Ref)) {
    match e {
        FlatExpr::Const(_) => {}
        FlatExpr::Load(r) => f(r),
        FlatExpr::Unary(_, a) => collect_uses(a, f),
        FlatExpr::Binary(_, a, b) => {
            collect_uses(a, f);
            collect_uses(b, f);
        }
    }
}
