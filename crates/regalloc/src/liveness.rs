//! Statement-level liveness: def/use intervals per storage word.
//!
//! The unit of analysis is the [`Ref`] — one word of a bound program
//! variable (scalars are offset 0, array elements carry their constant
//! offset).  For straight-line flattened code an interval is simply the
//! span of statement indices between the first and last access; a value is
//! worth keeping register-resident exactly when it is accessed more than
//! once, or defined and then used later (the accumulator pattern).

use record_ir::{FlatExpr, FlatStmt, Ref};
use std::collections::BTreeMap;

/// Def/use profile of one storage word across a statement list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interval {
    /// The word this interval describes.
    pub reference: Ref,
    /// Statement indices that write the word, ascending.
    pub defs: Vec<usize>,
    /// Statement indices that read the word, ascending (a statement reading
    /// the word several times appears once).
    pub uses: Vec<usize>,
}

impl Interval {
    /// First statement touching the word.
    pub fn start(&self) -> usize {
        self.defs
            .first()
            .copied()
            .into_iter()
            .chain(self.uses.first().copied())
            .min()
            .expect("intervals are never empty")
    }

    /// Last statement touching the word.
    pub fn end(&self) -> usize {
        self.defs
            .last()
            .copied()
            .into_iter()
            .chain(self.uses.last().copied())
            .max()
            .expect("intervals are never empty")
    }

    /// Total number of accesses.
    pub fn accesses(&self) -> usize {
        self.defs.len() + self.uses.len()
    }

    /// Is the value read after `stmt` (exclusive)?
    pub fn used_after(&self, stmt: usize) -> bool {
        self.uses.last().is_some_and(|&u| u > stmt)
    }

    /// The next statement reading the word strictly after `stmt`.
    pub fn next_use_after(&self, stmt: usize) -> Option<usize> {
        let i = self.uses.partition_point(|&u| u <= stmt);
        self.uses.get(i).copied()
    }

    /// Would keeping this word in a register pay off?  True when the word
    /// is accessed more than once — every repeated access is a memory
    /// round-trip the allocator can try to remove.
    pub fn reused(&self) -> bool {
        self.accesses() > 1
    }
}

/// Liveness information for a flattened function body.
#[derive(Debug, Clone, Default)]
pub struct Liveness {
    intervals: BTreeMap<Ref, Interval>,
    statements: usize,
}

impl Liveness {
    /// Computes def/use intervals over `stmts`.
    pub fn analyze(stmts: &[FlatStmt]) -> Liveness {
        let mut intervals: BTreeMap<Ref, Interval> = BTreeMap::new();
        let mut record = |r: &Ref, stmt: usize, is_def: bool| {
            let e = intervals.entry(r.clone()).or_insert_with(|| Interval {
                reference: r.clone(),
                defs: Vec::new(),
                uses: Vec::new(),
            });
            let sites = if is_def { &mut e.defs } else { &mut e.uses };
            if sites.last() != Some(&stmt) {
                sites.push(stmt);
            }
        };
        for (i, s) in stmts.iter().enumerate() {
            collect_uses(&s.value, &mut |r| record(r, i, false));
            record(&s.target, i, true);
        }
        Liveness {
            intervals,
            statements: stmts.len(),
        }
    }

    /// Interval for one word, if the program touches it.
    pub fn interval(&self, r: &Ref) -> Option<&Interval> {
        self.intervals.get(r)
    }

    /// All intervals in `Ref` order.
    pub fn intervals(&self) -> impl Iterator<Item = &Interval> {
        self.intervals.values()
    }

    /// Number of analysed statements.
    pub fn statements(&self) -> usize {
        self.statements
    }

    /// Number of words accessed more than once — the allocator's upper
    /// bound on profitable register residency.
    pub fn reused_values(&self) -> usize {
        self.intervals.values().filter(|i| i.reused()).count()
    }
}

fn collect_uses(e: &FlatExpr, f: &mut impl FnMut(&Ref)) {
    match e {
        FlatExpr::Const(_) => {}
        FlatExpr::Load(r) => f(r),
        FlatExpr::Unary(_, a) => collect_uses(a, f),
        FlatExpr::Binary(_, a, b) => {
            collect_uses(a, f);
            collect_uses(b, f);
        }
    }
}
