//! The register pool: which storages can hold values between statements.
//!
//! Discovered per target from the elaborated netlist and the extracted RT
//! template base: a register (or register file) is allocatable when the
//! templates can actually *route* values through it — something writes it,
//! something reads it.  Spill and reload templates (`dmem[#imm] := r`,
//! `r := dmem[#imm]`) are recorded when the instruction set provides them;
//! a register without them can hold values but never migrate them to
//! memory, so residency lost there is unrecoverable.

use record_codegen::Loc;
use record_netlist::{Netlist, StorageId, StorageKind};
use record_rtl::{Dest, Pattern, TemplateBase, TemplateId};
use std::collections::HashMap;

/// One allocatable register resource (a register, or a whole register file
/// whose cells are interchangeable).
#[derive(Debug, Clone)]
pub struct RegClass {
    /// The storage behind this class.
    pub storage: StorageId,
    /// Instance name (for diagnostics).
    pub name: String,
    /// Word width in bits.
    pub width: u16,
    /// Number of independently allocatable cells (1 for plain registers).
    pub cells: u64,
    /// `r := dmem[#imm]` template, when the ISA has one.  Informational:
    /// the current rewriter only ever deletes ops, so this records the
    /// target capability (for diagnostics and the planned
    /// template-switching follow-on) rather than something the allocator
    /// instantiates.
    pub reload: Option<TemplateId>,
    /// `dmem[#imm] := r` template, when the ISA has one (same caveat).
    pub spill: Option<TemplateId>,
}

/// The set of register resources the allocator may place values in.
#[derive(Debug, Clone)]
pub struct RegisterPool {
    data_mem: StorageId,
    mem_width: u16,
    classes: Vec<RegClass>,
    by_storage: HashMap<StorageId, usize>,
}

impl RegisterPool {
    /// A pool from explicit classes (tests and tools; production targets
    /// use [`RegisterPool::discover`]).
    pub fn new(data_mem: StorageId, mem_width: u16, classes: Vec<RegClass>) -> RegisterPool {
        let by_storage = classes
            .iter()
            .enumerate()
            .map(|(i, c)| (c.storage, i))
            .collect();
        RegisterPool {
            data_mem,
            mem_width,
            classes,
            by_storage,
        }
    }

    /// Discovers allocatable registers of `netlist` reachable by `base`'s
    /// templates, with spills targeting `data_mem`.
    pub fn discover(netlist: &Netlist, base: &TemplateBase, data_mem: StorageId) -> RegisterPool {
        let mut classes = Vec::new();
        let mut by_storage = HashMap::new();
        for s in netlist.storages() {
            if s.is_mode
                || s.is_pc
                || !matches!(s.kind, StorageKind::Register | StorageKind::RegFile)
            {
                continue;
            }
            let written = base.writing(s.id).next().is_some();
            let read = base
                .templates()
                .iter()
                .any(|t| t.src.reads().contains(&s.id));
            if !written || !read {
                continue;
            }
            let reload = base
                .templates()
                .iter()
                .find(|t| {
                    t.dest.storage() == Some(s.id)
                        && matches!(t.dest, Dest::Reg(_) | Dest::RegFile(_))
                        && matches!(
                            &t.src,
                            Pattern::MemRead(m, a)
                                if *m == data_mem && matches!(**a, Pattern::Imm { .. })
                        )
                })
                .map(|t| t.id);
            let spill = base
                .templates()
                .iter()
                .find(|t| {
                    matches!(&t.dest, Dest::Mem(m, a)
                        if *m == data_mem && matches!(a, Pattern::Imm { .. }))
                        && matches!(&t.src,
                            Pattern::Reg(r) | Pattern::RegFile(r) if *r == s.id)
                })
                .map(|t| t.id);
            by_storage.insert(s.id, classes.len());
            classes.push(RegClass {
                storage: s.id,
                name: s.name.clone(),
                width: s.width,
                cells: if s.kind == StorageKind::RegFile {
                    s.size
                } else {
                    1
                },
                reload,
                spill,
            });
        }
        RegisterPool {
            data_mem,
            mem_width: netlist.storage(data_mem).width,
            classes,
            by_storage,
        }
    }

    /// The data memory spills go to.
    pub fn data_mem(&self) -> StorageId {
        self.data_mem
    }

    /// Width of the data memory in bits.
    pub fn mem_width(&self) -> u16 {
        self.mem_width
    }

    /// All register classes.
    pub fn classes(&self) -> &[RegClass] {
        &self.classes
    }

    /// The class of a storage, if allocatable.
    pub fn class_of(&self, s: StorageId) -> Option<&RegClass> {
        self.by_storage.get(&s).map(|&i| &self.classes[i])
    }

    /// Total number of allocatable cells.
    pub fn capacity(&self) -> u64 {
        self.classes.iter().map(|c| c.cells).sum()
    }

    /// Is `loc` a register resource of this pool?
    pub fn is_allocatable(&self, loc: &Loc) -> bool {
        match loc {
            Loc::Reg(s) | Loc::Rf(s, _) => self.by_storage.contains_key(s),
            _ => false,
        }
    }

    /// May a value stored from register `s` be considered an exact copy of
    /// the memory word?  True when no bits are truncated by the store.
    pub fn store_preserves_value(&self, s: StorageId) -> bool {
        self.class_of(s).is_some_and(|c| c.width <= self.mem_width)
    }
}

/// One tracked residency: a register currently holding the value of a
/// memory word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resident {
    /// The memory address whose value the register holds.
    pub addr: u64,
    /// Next op index reading that address, for Belady-style ranking.
    pub next_use: Option<usize>,
}

/// What [`Residency::insert`] displaced: one whole register, with every
/// association it held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted {
    /// The register whose associations were dropped.
    pub loc: Loc,
    /// Every association it held, oldest first.
    pub residents: Vec<Resident>,
}

impl Evicted {
    /// Associations that still had a later read — each one forces a reload
    /// RT to stay in the output.
    pub fn live_count(&self) -> usize {
        self.residents
            .iter()
            .filter(|r| r.next_use.is_some())
            .count()
    }

    /// Was any association still profitable (a later read existed)?
    pub fn was_live(&self) -> bool {
        self.live_count() > 0
    }
}

/// The allocator's residency ledger: which registers hold which memory
/// words, bounded by the number of *distinct registers* tracked.  A
/// register may mirror *several* words at once (storing it to two
/// addresses makes all three locations equal — `x = a; y = a;` leaves the
/// accumulator equal to `a`, `x` and `y`), so entries are (register,
/// address) pairs — but only the register count is bounded: one register
/// fanning a value out to many addresses occupies one physical cell and
/// must never evict entries while other registers sit idle.
///
/// When a new register would exceed the capacity, the register whose
/// *nearest* next use is farthest in the future is evicted wholesale
/// (Belady's optimal replacement over registers, exact as long as the
/// caller refreshes `next_use` via [`Residency::refresh_next_uses`]
/// before inserting); registers with no remaining read go first, and ties
/// fall to the earliest-inserted register.
#[derive(Debug, Clone)]
pub struct Residency {
    capacity: usize,
    /// Insertion-ordered (determinism matters for reproducible eviction).
    entries: Vec<(Loc, Resident)>,
}

impl Residency {
    /// An empty ledger tracking at most `capacity` distinct registers.
    pub fn with_capacity(capacity: usize) -> Residency {
        Residency {
            capacity: capacity.max(1),
            entries: Vec::new(),
        }
    }

    /// Number of live associations (may exceed the register capacity when
    /// registers fan out to several addresses).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Number of distinct registers currently tracked — the quantity the
    /// capacity bounds.
    pub fn distinct_registers(&self) -> usize {
        self.per_register().len()
    }

    /// One summary per tracked register, in first-insertion order:
    /// `(register, nearest next use over its associations)`.
    fn per_register(&self) -> Vec<(&Loc, Option<usize>)> {
        let mut regs: Vec<(&Loc, Option<usize>)> = Vec::new();
        for (l, r) in &self.entries {
            match regs.iter_mut().find(|(reg, _)| *reg == l) {
                Some((_, nearest)) => {
                    *nearest = match (*nearest, r.next_use) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    }
                }
                None => regs.push((l, r.next_use)),
            }
        }
        regs
    }

    /// Is the ledger empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The distinct-register capacity (associations per register are
    /// unbounded — see [`Residency::len`]).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The addresses register `loc` currently mirrors, oldest first.
    pub fn lookup<'a>(&'a self, loc: &'a Loc) -> impl Iterator<Item = &'a Resident> + 'a {
        self.entries
            .iter()
            .filter(move |(l, _)| l == loc)
            .map(|(_, r)| r)
    }

    /// Does `loc` hold the value of `addr`?
    pub fn holds(&self, loc: &Loc, addr: u64) -> bool {
        self.lookup(loc).any(|r| r.addr == addr)
    }

    /// All live associations, oldest first.
    pub fn residents(&self) -> impl Iterator<Item = &(Loc, Resident)> {
        self.entries.iter()
    }

    /// Recomputes every entry's `next_use` (eviction key) via `f`.  Call
    /// before an insertion that may overflow: `next_use` values recorded
    /// at insertion time go stale as the pass advances, and stale keys
    /// would make Belady eviction pick live entries over dead ones.
    pub fn refresh_next_uses(&mut self, f: impl Fn(u64) -> Option<usize>) {
        for (_, r) in &mut self.entries {
            r.next_use = f(r.addr);
        }
    }

    /// Records that `loc` now holds `addr`'s value, alongside any other
    /// words it already mirrors.  Adding an association to an
    /// already-tracked register never evicts; a *new* register entering a
    /// full ledger evicts one whole register (pool overflow) and returns
    /// everything it held.
    pub fn insert(&mut self, loc: Loc, resident: Resident) -> Option<Evicted> {
        if let Some((_, r)) = self
            .entries
            .iter_mut()
            .find(|(l, r)| *l == loc && r.addr == resident.addr)
        {
            r.next_use = resident.next_use;
            return None;
        }
        // One pass over the entries: per-register nearest next use, in
        // first-insertion order (the order doubles as the tie-break key).
        let regs = self.per_register();
        let tracked = regs.iter().any(|(l, _)| **l == loc);
        let displaced = if !tracked && regs.len() >= self.capacity {
            // Overflow: evict the register whose nearest next use lies
            // farthest in the future (never-again-read registers first);
            // earliest-inserted register on ties.
            let victim = regs
                .iter()
                .enumerate()
                .max_by_key(|(i, (_, nearest))| {
                    (nearest.map_or((1, 0), |u| (0, u)), usize::MAX - i)
                })
                .map(|(_, (l, _))| (*l).clone())
                .expect("capacity >= 1, ledger non-empty");
            let residents = self.forget(&victim);
            Some(Evicted {
                loc: victim,
                residents,
            })
        } else {
            None
        };
        self.entries.push((loc, resident));
        displaced
    }

    /// Drops every association of one register (it was overwritten).
    pub fn forget(&mut self, loc: &Loc) -> Vec<Resident> {
        let mut removed = Vec::new();
        self.entries.retain(|(l, r)| {
            if l == loc {
                removed.push(r.clone());
                false
            } else {
                true
            }
        });
        removed
    }

    /// Drops every association to `addr` (the memory word was overwritten).
    pub fn forget_addr(&mut self, addr: u64) {
        self.entries.retain(|(_, r)| r.addr != addr);
    }

    /// Drops everything (a write to an unknown address).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}
