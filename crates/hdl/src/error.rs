//! Error reporting for the HDL frontend.

use std::error::Error;
use std::fmt;

/// What went wrong while processing HDL source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HdlErrorKind {
    /// A character that cannot start any token.
    Lex,
    /// A structurally malformed construct.
    Parse,
    /// A static-semantics violation (duplicate name, undefined reference,
    /// invalid width, malformed slice).
    Semantic,
}

impl fmt::Display for HdlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdlErrorKind::Lex => write!(f, "lexical error"),
            HdlErrorKind::Parse => write!(f, "parse error"),
            HdlErrorKind::Semantic => write!(f, "semantic error"),
        }
    }
}

/// An error produced by [`crate::parse`], with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HdlError {
    kind: HdlErrorKind,
    line: u32,
    col: u32,
    message: String,
}

impl HdlError {
    pub(crate) fn new(kind: HdlErrorKind, line: u32, col: u32, message: impl Into<String>) -> Self {
        HdlError {
            kind,
            line,
            col,
            message: message.into(),
        }
    }

    /// The category of the error.
    pub fn kind(&self) -> &HdlErrorKind {
        &self.kind
    }

    /// 1-based source line of the offending token.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// 1-based source column of the offending token.
    pub fn column(&self) -> u32 {
        self.col
    }

    /// Human-readable description without position information.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for HdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {}:{}: {}",
            self.kind, self.line, self.col, self.message
        )
    }
}

impl Error for HdlError {}
