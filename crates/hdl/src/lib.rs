//! A MIMOLA-flavoured hardware description language (HDL) frontend.
//!
//! The `record` compiler is retargeted from *HDL processor models* rather
//! than from tool-specific machine descriptions (paper §1).  The original
//! system parsed MIMOLA V4.1; the paper notes the concepts are
//! language-independent.  This crate defines a compact, self-contained HDL
//! in the MIMOLA tradition and parses it into an AST:
//!
//! * **Modules** describe primitive netlist entities.  Their behavioural
//!   complexity may range from a logic gate to a complete data path: outputs
//!   are defined by concurrent assignments, optionally selected by `case`
//!   over control ports.  Special forms declare clocked registers and
//!   addressable memories.
//! * A **processor** block instantiates modules (`parts`), wires them up
//!   (`connections`), declares tristate **busses** with guarded drivers,
//!   designates **mode registers** and fixes the **instruction word** width.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     module Acc {
//!         in d: bit(8);
//!         ctrl en: bit(1);
//!         out q: bit(8);
//!         register q = d when en == 1;
//!     }
//!     processor P {
//!         instruction word: bit(4);
//!         in pin: bit(8);
//!         parts { acc: Acc; }
//!         connections {
//!             acc.d = pin;
//!             acc.en = I[0];
//!         }
//!     }
//! "#;
//! let model = record_hdl::parse(src)?;
//! assert_eq!(model.processor.name, "P");
//! assert_eq!(model.modules.len(), 1);
//! # Ok::<(), record_hdl::HdlError>(())
//! ```

mod ast;
mod error;
mod lexer;
mod parser;

pub use ast::*;
pub use error::{HdlError, HdlErrorKind};
pub use lexer::{Lexer, Token, TokenKind};

/// Parses a complete HDL model (modules plus one `processor` block).
///
/// # Errors
///
/// Returns an [`HdlError`] carrying line/column information when the source
/// is lexically or syntactically malformed, or when basic static rules are
/// violated (duplicate names, unknown module references, width-zero ports).
pub fn parse(source: &str) -> Result<Model, HdlError> {
    parser::Parser::new(source)?.parse_model()
}

#[cfg(test)]
mod tests;
