//! Abstract syntax of the HDL.
//!
//! The AST mirrors the textual structure closely; all name resolution and
//! consistency checking beyond duplicate detection happens during netlist
//! elaboration in `record-netlist`.

/// Identifier type used throughout the AST.
pub type Ident = String;

/// A complete HDL model: module definitions plus exactly one processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    /// Module (component) definitions, in source order.
    pub modules: Vec<ModuleDef>,
    /// The single `processor` block instantiating and wiring the modules.
    pub processor: ProcessorDef,
}

impl Model {
    /// Looks up a module definition by name.
    pub fn module(&self, name: &str) -> Option<&ModuleDef> {
        self.modules.iter().find(|m| m.name == name)
    }
}

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Data input.
    In,
    /// Data output.
    Out,
    /// Control input (settable only from instruction/mode/decoder logic).
    Ctrl,
}

/// A port declaration `in name: bit(w);`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDef {
    pub name: Ident,
    pub dir: PortDir,
    /// Bit width, `1..=64`.
    pub width: u16,
}

/// A module definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleDef {
    pub name: Ident,
    pub ports: Vec<PortDef>,
    pub body: ModuleBody,
}

impl ModuleDef {
    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Option<&PortDef> {
        self.ports.iter().find(|p| p.name == name)
    }
}

/// The behavioural body of a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuleBody {
    /// Pure combinational behaviour: concurrent (possibly `case`-guarded)
    /// assignments to output ports.
    Combinational(Vec<Stmt>),
    /// A single word of clocked storage.
    Register(RegisterDef),
    /// An addressable memory with read and write ports.
    Memory(MemoryDef),
}

/// `register q = d when en == 1;` — a clocked storage element driving
/// output `out` and loading `input` whenever `guard` holds (every cycle if
/// absent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterDef {
    /// The output port continuously driven with the stored value.
    pub out: Ident,
    /// Next-value expression over data input ports.
    pub input: Expr,
    /// Load-enable condition over control ports (`None` = load every cycle).
    pub guard: Option<Expr>,
}

/// `memory cells[256]: bit(16);` plus `read`/`write` clauses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryDef {
    /// Name of the storage array (local to the module).
    pub array: Ident,
    /// Number of words.
    pub size: u64,
    /// Word width in bits.
    pub width: u16,
    /// Asynchronous read ports: `read dout = cells[addr];`.
    pub reads: Vec<ReadPort>,
    /// Synchronous write ports: `write cells[addr] = din when w == 1;`.
    pub writes: Vec<WritePort>,
}

/// An asynchronous memory read clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadPort {
    /// Output port that exposes the read word.
    pub out: Ident,
    /// Address expression over input ports.
    pub addr: Expr,
}

/// A synchronous memory write clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritePort {
    /// Address expression over input ports.
    pub addr: Expr,
    /// Data expression over input ports.
    pub data: Expr,
    /// Write-enable condition over control ports (`None` = write every
    /// cycle).
    pub guard: Option<Expr>,
}

/// A behavioural statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `y = expr;`
    Assign { port: Ident, value: Expr },
    /// `case sel { 0 => ...; 1, 2 => { ... } default => ... }`
    Case {
        /// Selector expression (must reduce to control ports; checked during
        /// elaboration).
        selector: Expr,
        arms: Vec<CaseArm>,
        /// Optional `default` arm body.
        default: Option<Vec<Stmt>>,
    },
}

/// One arm of a `case`; fires when the selector equals any label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseArm {
    pub labels: Vec<u64>,
    pub body: Vec<Stmt>,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise complement `~`.
    Not,
    /// Two's complement negation `-`.
    Neg,
    /// Logical negation `!` (used in guard conditions).
    LogicNot,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A behavioural expression over module ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Reference to a port of the enclosing module.
    Port(Ident),
    /// Integer constant.
    Const(u64),
    /// Bit slice `base[hi:lo]` (single-bit `base[i]` parses as `hi == lo`).
    Slice {
        base: Box<Expr>,
        hi: u16,
        lo: u16,
    },
    Unary {
        op: UnOp,
        arg: Box<Expr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a binary node.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }
}

// ---------------------------------------------------------------------------
// Processor-level syntax
// ---------------------------------------------------------------------------

/// The `processor` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessorDef {
    pub name: Ident,
    /// Width of the instruction word register `I` in bits.
    pub iword_width: u16,
    /// Primary processor ports (`In`/`Out` only).
    pub ports: Vec<PortDef>,
    /// Module instances.
    pub parts: Vec<PartDef>,
    /// Tristate bus declarations.
    pub busses: Vec<BusDef>,
    /// Guarded bus drivers (`drive` statements).
    pub drivers: Vec<BusDriver>,
    /// Point-to-point connections.
    pub connections: Vec<Connection>,
    /// Instances designated as mode registers (paper §2: "registers which
    /// store control signals that change only rarely").
    pub modes: Vec<Ident>,
    /// Memory instances designated as register files: their cells are
    /// interchangeable from the compiler's point of view (homogeneous
    /// register structure in the paper's target-class table).  A memory
    /// addressed by instruction fields is *structurally* indistinguishable
    /// from a direct-addressed data memory, so the distinction is declared.
    pub regfiles: Vec<Ident>,
    /// Register instance designated as the program counter.  The compiler
    /// treats writes to it as control transfers; a model without one is
    /// straight-line only.
    pub pc: Option<Ident>,
}

/// One instance declaration `acc: Acc;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartDef {
    pub inst: Ident,
    pub module: Ident,
}

/// A tristate bus `bus dbus: bit(16);`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusDef {
    pub name: Ident,
    pub width: u16,
}

/// `drive dbus = alu.y when I[3] == 1;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusDriver {
    pub bus: Ident,
    pub source: NetRef,
    /// Enable condition (`None` = drives constantly, which conflicts with
    /// any other constant driver of the same bus).
    pub guard: Option<Cond>,
}

/// Something readable at processor level: the right-hand side of a
/// connection or bus drive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetRef {
    /// `inst.port`
    InstPort { inst: Ident, port: Ident },
    /// A bare identifier: a bus or a primary processor input port
    /// (disambiguated during elaboration).
    Name(Ident),
    /// `I[hi:lo]` — a field of the instruction word.
    IField { hi: u16, lo: u16 },
    /// Integer constant (hardwired).
    Const(u64),
    /// `base[hi:lo]`
    Slice { base: Box<NetRef>, hi: u16, lo: u16 },
}

/// Left-hand side of a connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnTarget {
    /// `inst.port = ...` — an instance input or control port.
    InstPort { inst: Ident, port: Ident },
    /// `pout = ...` — a primary processor output port.
    ProcPort(Ident),
}

/// One connection statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    pub target: ConnTarget,
    pub source: NetRef,
}

/// Comparison operator in processor-level conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
}

/// A processor-level Boolean condition (bus-driver guard).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// `net == const` / `net != const`
    Cmp {
        lhs: NetRef,
        op: CmpOp,
        rhs: u64,
    },
    Not(Box<Cond>),
    And(Box<Cond>, Box<Cond>),
    Or(Box<Cond>, Box<Cond>),
}
