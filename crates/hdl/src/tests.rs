use crate::*;
use proptest::prelude::*;

const TINY: &str = r#"
-- A one-register machine: acc loads the ALU result when I[7] is set.
module Alu {
    in a: bit(8);
    in b: bit(8);
    ctrl f: bit(2);
    out y: bit(8);
    behavior {
        case f {
            0 => y = a + b;
            1 => y = a - b;
            2 => y = a & b;
            3 => y = a;
        }
    }
}
module Acc {
    in d: bit(8);
    ctrl en: bit(1);
    out q: bit(8);
    register q = d when en == 1;
}
processor Tiny {
    instruction word: bit(8);
    in pin: bit(8);
    out pout: bit(8);
    parts {
        alu: Alu;
        acc: Acc;
    }
    connections {
        alu.a = acc.q;
        alu.b = pin;
        alu.f = I[1:0];
        acc.d = alu.y;
        acc.en = I[7];
        pout = acc.q;
    }
}
"#;

#[test]
fn parses_tiny_model() {
    let m = parse(TINY).unwrap();
    assert_eq!(m.modules.len(), 2);
    assert_eq!(m.processor.name, "Tiny");
    assert_eq!(m.processor.iword_width, 8);
    assert_eq!(m.processor.parts.len(), 2);
    assert_eq!(m.processor.connections.len(), 6);
    let alu = m.module("Alu").unwrap();
    assert_eq!(alu.ports.len(), 4);
    assert_eq!(alu.port("f").unwrap().dir, PortDir::Ctrl);
    match &alu.body {
        ModuleBody::Combinational(stmts) => {
            assert_eq!(stmts.len(), 1);
            match &stmts[0] {
                Stmt::Case { arms, default, .. } => {
                    assert_eq!(arms.len(), 4);
                    assert!(default.is_none());
                }
                other => panic!("expected case, got {other:?}"),
            }
        }
        other => panic!("expected combinational, got {other:?}"),
    }
}

#[test]
fn parses_register_module() {
    let m = parse(TINY).unwrap();
    let acc = m.module("Acc").unwrap();
    match &acc.body {
        ModuleBody::Register(r) => {
            assert_eq!(r.out, "q");
            assert_eq!(r.input, Expr::Port("d".into()));
            assert!(r.guard.is_some());
        }
        other => panic!("expected register, got {other:?}"),
    }
}

#[test]
fn parses_memory_module() {
    let src = r#"
        module Ram {
            in addr: bit(8);
            in din: bit(16);
            ctrl w: bit(1);
            out dout: bit(16);
            memory cells[256]: bit(16);
            read dout = cells[addr];
            write cells[addr] = din when w == 1;
        }
        processor P {
            instruction word: bit(4);
            parts { ram: Ram; }
            connections {
                ram.addr = I[3:0];
                ram.din = ram.dout;
                ram.w = I[3];
            }
        }
    "#;
    let m = parse(src).unwrap();
    let ram = m.module("Ram").unwrap();
    match &ram.body {
        ModuleBody::Memory(mem) => {
            assert_eq!(mem.size, 256);
            assert_eq!(mem.width, 16);
            assert_eq!(mem.reads.len(), 1);
            assert_eq!(mem.writes.len(), 1);
        }
        other => panic!("expected memory, got {other:?}"),
    }
}

#[test]
fn parses_busses_and_drivers() {
    let src = r#"
        module R { in d: bit(8); ctrl en: bit(1); out q: bit(8);
                   register q = d when en == 1; }
        processor P {
            instruction word: bit(8);
            in pin: bit(8);
            bus dbus: bit(8);
            parts { r1: R; r2: R; }
            connections {
                drive dbus = r1.q when I[0] == 0;
                drive dbus = pin when I[0] == 1 & I[1] != 0;
                r1.d = dbus;
                r1.en = I[2];
                r2.d = dbus;
                r2.en = I[3];
            }
        }
    "#;
    let m = parse(src).unwrap();
    assert_eq!(m.processor.busses.len(), 1);
    assert_eq!(m.processor.drivers.len(), 2);
    let d = &m.processor.drivers[1];
    assert_eq!(d.bus, "dbus");
    assert!(matches!(d.guard, Some(Cond::And(_, _))));
}

#[test]
fn parses_modes() {
    let src = r#"
        module M { in d: bit(1); out q: bit(1); register q = d; }
        processor P {
            instruction word: bit(4);
            parts { st: M; }
            modes { st }
            connections { st.d = I[0]; }
        }
    "#;
    let m = parse(src).unwrap();
    assert_eq!(m.processor.modes, vec!["st".to_owned()]);
}

#[test]
fn expression_precedence() {
    // a + b * c parses as a + (b*c)
    let src = r#"
        module M { in a: bit(8); in b: bit(8); in c: bit(8); out y: bit(8);
                   behavior { y = a + b * c; } }
        processor P { instruction word: bit(1); parts { m: M; }
                      connections { m.a = 1; m.b = 2; m.c = 3; } }
    "#;
    let m = parse(src).unwrap();
    let def = m.module("M").unwrap();
    let ModuleBody::Combinational(stmts) = &def.body else {
        panic!()
    };
    let Stmt::Assign { value, .. } = &stmts[0] else {
        panic!()
    };
    match value {
        Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } => {
            assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
        }
        other => panic!("unexpected tree {other:?}"),
    }
}

#[test]
fn slice_parsing() {
    let src = r#"
        module M { in a: bit(16); out y: bit(8);
                   behavior { y = a[15:8]; } }
        processor P { instruction word: bit(1); parts { m: M; }
                      connections { m.a = I[0]; } }
    "#;
    let m = parse(src).unwrap();
    let def = m.module("M").unwrap();
    let ModuleBody::Combinational(stmts) = &def.body else {
        panic!()
    };
    let Stmt::Assign { value, .. } = &stmts[0] else {
        panic!()
    };
    assert!(matches!(value, Expr::Slice { hi: 15, lo: 8, .. }));
}

#[test]
fn hex_and_binary_literals() {
    let src = r#"
        module M { out y: bit(8); behavior { y = 0xFF & 0b1010; } }
        processor P { instruction word: bit(1); parts { m: M; } connections { } }
    "#;
    let m = parse(src).unwrap();
    let def = m.module("M").unwrap();
    let ModuleBody::Combinational(stmts) = &def.body else {
        panic!()
    };
    let Stmt::Assign { value, .. } = &stmts[0] else {
        panic!()
    };
    match value {
        Expr::Binary { lhs, rhs, .. } => {
            assert_eq!(**lhs, Expr::Const(255));
            assert_eq!(**rhs, Expr::Const(10));
        }
        other => panic!("unexpected {other:?}"),
    }
}

// --------------------------- error paths ----------------------------------

#[test]
fn rejects_missing_processor() {
    let err = parse("module M { out y: bit(1); behavior { y = 1; } }").unwrap_err();
    assert_eq!(*err.kind(), HdlErrorKind::Semantic);
    assert!(err.message().contains("no processor"));
}

#[test]
fn rejects_duplicate_module() {
    let src = r#"
        module M { out y: bit(1); behavior { y = 1; } }
        module M { out y: bit(1); behavior { y = 1; } }
        processor P { instruction word: bit(1); parts { } connections { } }
    "#;
    let err = parse(src).unwrap_err();
    assert!(err.message().contains("duplicate module"));
}

#[test]
fn rejects_bad_width() {
    let src = r#"
        module M { out y: bit(65); behavior { y = 1; } }
        processor P { instruction word: bit(1); parts { } connections { } }
    "#;
    let err = parse(src).unwrap_err();
    assert!(err.message().contains("out of range"));
}

#[test]
fn rejects_reversed_slice() {
    let src = r#"
        module M { in a: bit(8); out y: bit(8); behavior { y = a[0:7]; } }
        processor P { instruction word: bit(1); parts { } connections { } }
    "#;
    let err = parse(src).unwrap_err();
    assert!(err.message().contains("lo > hi"));
}

#[test]
fn rejects_module_without_body() {
    let src = r#"
        module M { in a: bit(8); out y: bit(8); }
        processor P { instruction word: bit(1); parts { } connections { } }
    "#;
    let err = parse(src).unwrap_err();
    assert!(err.message().contains("no behavior"));
}

#[test]
fn rejects_unknown_character() {
    let err = parse("module M @").unwrap_err();
    assert_eq!(*err.kind(), HdlErrorKind::Lex);
    assert_eq!(err.line(), 1);
}

#[test]
fn error_positions_are_tracked() {
    let src = "module M {\n  in a bit(8);\n}";
    let err = parse(src).unwrap_err();
    assert_eq!(err.line(), 2);
}

#[test]
fn rejects_two_registers() {
    let src = r#"
        module M { in d: bit(8); out q: bit(8);
                   register q = d;
                   register q = d; }
        processor P { instruction word: bit(1); parts { } connections { } }
    "#;
    let err = parse(src).unwrap_err();
    assert!(err.message().contains("more than one register"));
}

#[test]
fn rejects_memory_without_read() {
    let src = r#"
        module M { in a: bit(4); memory cells[16]: bit(8); }
        processor P { instruction word: bit(1); parts { } connections { } }
    "#;
    let err = parse(src).unwrap_err();
    assert!(err.message().contains("no read clause"));
}

// --------------------------- property tests -------------------------------

proptest! {
    /// The lexer never panics on arbitrary input.
    #[test]
    fn lexer_total(input in ".{0,200}") {
        let _ = Lexer::new(&input).tokenize();
    }

    /// The parser never panics on arbitrary token-ish text.
    #[test]
    fn parser_total(input in "[a-z0-9{}();:=\\[\\] .,+*&|!<>-]{0,200}") {
        let _ = parse(&input);
    }

    /// Round-trip: a generated case-ALU module always parses and keeps its
    /// arm count.
    #[test]
    fn case_arm_counts_survive(arms in 1usize..12) {
        let mut body = String::new();
        for i in 0..arms {
            body.push_str(&format!("{i} => y = a + {i};\n"));
        }
        let src = format!(
            "module M {{ in a: bit(8); ctrl f: bit(4); out y: bit(8);
              behavior {{ case f {{ {body} }} }} }}
             processor P {{ instruction word: bit(4); parts {{ m: M; }}
              connections {{ m.a = 1; m.f = I[3:0]; }} }}"
        );
        let m = parse(&src).unwrap();
        let ModuleBody::Combinational(stmts) = &m.module("M").unwrap().body else {
            panic!()
        };
        let Stmt::Case { arms: parsed, .. } = &stmts[0] else { panic!() };
        prop_assert_eq!(parsed.len(), arms);
    }
}
