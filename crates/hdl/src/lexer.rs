//! Hand-written lexer for the HDL.

use crate::error::{HdlError, HdlErrorKind};

/// The kind (and payload) of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Integer literal: decimal, `0x...` hex or `0b...` binary.
    Int(u64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Colon,
    Semi,
    Comma,
    Dot,
    FatArrow,
    EqEq,
    NotEq,
    LessEq,
    GreaterEq,
    Less,
    Greater,
    Shl,
    Shr,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Assign,
    /// End of input (always the final token).
    Eof,
}

impl TokenKind {
    /// A short printable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Eof => "end of input".to_owned(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Colon => ":",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Dot => ".",
            TokenKind::FatArrow => "=>",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::LessEq => "<=",
            TokenKind::GreaterEq => ">=",
            TokenKind::Less => "<",
            TokenKind::Greater => ">",
            TokenKind::Shl => "<<",
            TokenKind::Shr => ">>",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Amp => "&",
            TokenKind::Pipe => "|",
            TokenKind::Caret => "^",
            TokenKind::Tilde => "~",
            TokenKind::Bang => "!",
            TokenKind::Assign => "=",
            TokenKind::Ident(_) | TokenKind::Int(_) | TokenKind::Eof => unreachable!(),
        }
    }
}

/// A token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

/// Converts HDL source text into a token stream.
///
/// Comments run from `--` or `//` to end of line.
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Lexes the entire input, ending with a single [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Returns a [`HdlError`] on any character that cannot start a token or
    /// on malformed integer literals.
    pub fn tokenize(mut self) -> Result<Vec<Token>, HdlError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    line,
                    col,
                });
                return Ok(out);
            };
            let kind = if c.is_ascii_alphabetic() || c == b'_' {
                self.lex_ident()
            } else if c.is_ascii_digit() {
                self.lex_number(line, col)?
            } else {
                self.lex_punct(line, col)?
            };
            out.push(Token { kind, line, col });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => self.skip_line(),
                Some(b'/') if self.peek2() == Some(b'/') => self.skip_line(),
                _ => return,
            }
        }
    }

    fn skip_line(&mut self) {
        while let Some(c) = self.peek() {
            if c == b'\n' {
                return;
            }
            self.bump();
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .expect("identifier bytes are ASCII")
            .to_owned();
        TokenKind::Ident(text)
    }

    fn lex_number(&mut self, line: u32, col: u32) -> Result<TokenKind, HdlError> {
        let radix = if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X'))
        {
            self.bump();
            self.bump();
            16
        } else if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'b') | Some(b'B')) {
            self.bump();
            self.bump();
            2
        } else {
            10
        };
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text: String = std::str::from_utf8(&self.src[start..self.pos])
            .expect("number bytes are ASCII")
            .chars()
            .filter(|&c| c != '_')
            .collect();
        if text.is_empty() {
            return Err(HdlError::new(
                HdlErrorKind::Lex,
                line,
                col,
                "integer literal has no digits",
            ));
        }
        u64::from_str_radix(&text, radix)
            .map(TokenKind::Int)
            .map_err(|_| {
                HdlError::new(
                    HdlErrorKind::Lex,
                    line,
                    col,
                    format!("invalid integer literal `{text}`"),
                )
            })
    }

    fn lex_punct(&mut self, line: u32, col: u32) -> Result<TokenKind, HdlError> {
        let c = self.bump().expect("caller checked non-empty");
        let two = |l: &mut Self, kind: TokenKind| {
            l.bump();
            kind
        };
        let kind = match c {
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b':' => TokenKind::Colon,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'.' => TokenKind::Dot,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'&' => TokenKind::Amp,
            b'|' => TokenKind::Pipe,
            b'^' => TokenKind::Caret,
            b'~' => TokenKind::Tilde,
            b'=' => match self.peek() {
                Some(b'=') => two(self, TokenKind::EqEq),
                Some(b'>') => two(self, TokenKind::FatArrow),
                _ => TokenKind::Assign,
            },
            b'!' => match self.peek() {
                Some(b'=') => two(self, TokenKind::NotEq),
                _ => TokenKind::Bang,
            },
            b'<' => match self.peek() {
                Some(b'=') => two(self, TokenKind::LessEq),
                Some(b'<') => two(self, TokenKind::Shl),
                _ => TokenKind::Less,
            },
            b'>' => match self.peek() {
                Some(b'=') => two(self, TokenKind::GreaterEq),
                Some(b'>') => two(self, TokenKind::Shr),
                _ => TokenKind::Greater,
            },
            other => {
                return Err(HdlError::new(
                    HdlErrorKind::Lex,
                    line,
                    col,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };
        Ok(kind)
    }
}
