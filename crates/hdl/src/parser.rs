//! Recursive-descent parser for the HDL.

use crate::ast::*;
use crate::error::{HdlError, HdlErrorKind};
use crate::lexer::{Lexer, Token, TokenKind};

/// Parser over a pre-lexed token stream.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Lexes `source` and prepares a parser.
    ///
    /// # Errors
    ///
    /// Propagates lexical errors.
    pub fn new(source: &str) -> Result<Self, HdlError> {
        Ok(Parser {
            tokens: Lexer::new(source).tokenize()?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> HdlError {
        let t = self.peek();
        HdlError::new(HdlErrorKind::Parse, t.line, t.col, msg)
    }

    fn semantic_error(&self, msg: impl Into<String>) -> HdlError {
        let t = self.peek();
        HdlError::new(HdlErrorKind::Semantic, t.line, t.col, msg)
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), HdlError> {
        if self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().kind.describe()
            )))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<Ident, HdlError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), HdlError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found {}", other.describe()))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn int(&mut self) -> Result<u64, HdlError> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            _ => Err(self.error(format!(
                "expected integer, found {}",
                self.peek().kind.describe()
            ))),
        }
    }

    /// `bit ( w )` with `1 <= w <= 64`.
    fn width(&mut self) -> Result<u16, HdlError> {
        self.keyword("bit")?;
        self.expect(TokenKind::LParen)?;
        let w = self.int()?;
        if !(1..=64).contains(&w) {
            return Err(self.semantic_error(format!("bit width {w} out of range 1..=64")));
        }
        self.expect(TokenKind::RParen)?;
        Ok(w as u16)
    }

    // -----------------------------------------------------------------
    // Top level
    // -----------------------------------------------------------------

    /// Parses the whole model: any number of modules plus one processor.
    pub fn parse_model(mut self) -> Result<Model, HdlError> {
        let mut modules: Vec<ModuleDef> = Vec::new();
        let mut processor = None;
        loop {
            if self.peek().kind == TokenKind::Eof {
                break;
            }
            if self.at_keyword("module") {
                let m = self.parse_module()?;
                if modules.iter().any(|x| x.name == m.name) {
                    return Err(self.semantic_error(format!("duplicate module `{}`", m.name)));
                }
                modules.push(m);
            } else if self.at_keyword("processor") {
                if processor.is_some() {
                    return Err(self.semantic_error("more than one processor block"));
                }
                processor = Some(self.parse_processor()?);
            } else {
                return Err(self.error(format!(
                    "expected `module` or `processor`, found {}",
                    self.peek().kind.describe()
                )));
            }
        }
        let processor =
            processor.ok_or_else(|| self.semantic_error("model has no processor block"))?;
        Ok(Model { modules, processor })
    }

    // -----------------------------------------------------------------
    // Modules
    // -----------------------------------------------------------------

    fn parse_module(&mut self) -> Result<ModuleDef, HdlError> {
        self.keyword("module")?;
        let name = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut ports: Vec<PortDef> = Vec::new();
        let mut behavior: Option<Vec<Stmt>> = None;
        let mut register: Option<RegisterDef> = None;
        let mut memory: Option<MemoryDef> = None;
        let mut reads: Vec<ReadPort> = Vec::new();
        let mut writes: Vec<WritePort> = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.at_keyword("in") || self.at_keyword("out") || self.at_keyword("ctrl") {
                let p = self.parse_port()?;
                if ports.iter().any(|x| x.name == p.name) {
                    return Err(self.semantic_error(format!(
                        "duplicate port `{}` in module `{name}`",
                        p.name
                    )));
                }
                ports.push(p);
            } else if self.at_keyword("behavior") {
                if behavior.is_some() {
                    return Err(self.semantic_error("duplicate behavior block"));
                }
                self.bump();
                behavior = Some(self.parse_stmt_block()?);
            } else if self.at_keyword("register") {
                if register.is_some() {
                    return Err(self.semantic_error("module declares more than one register"));
                }
                register = Some(self.parse_register()?);
            } else if self.at_keyword("memory") {
                if memory.is_some() {
                    return Err(self.semantic_error("module declares more than one memory"));
                }
                memory = Some(self.parse_memory()?);
            } else if self.at_keyword("read") {
                reads.push(self.parse_read()?);
            } else if self.at_keyword("write") {
                writes.push(self.parse_write()?);
            } else {
                return Err(self.error(format!(
                    "unexpected {} in module body",
                    self.peek().kind.describe()
                )));
            }
        }
        let body = match (behavior, register, memory) {
            (Some(b), None, None) => {
                if !reads.is_empty() || !writes.is_empty() {
                    return Err(
                        self.semantic_error("read/write clauses require a memory declaration")
                    );
                }
                ModuleBody::Combinational(b)
            }
            (None, Some(r), None) => {
                if !reads.is_empty() || !writes.is_empty() {
                    return Err(
                        self.semantic_error("read/write clauses require a memory declaration")
                    );
                }
                ModuleBody::Register(r)
            }
            (None, None, Some(mut m)) => {
                if reads.is_empty() {
                    return Err(
                        self.semantic_error(format!("memory module `{name}` has no read clause"))
                    );
                }
                m.reads = reads;
                m.writes = writes;
                ModuleBody::Memory(m)
            }
            (None, None, None) => {
                return Err(self.semantic_error(format!(
                    "module `{name}` has no behavior, register or memory"
                )))
            }
            _ => {
                return Err(self.semantic_error(format!(
                    "module `{name}` mixes behavior/register/memory declarations"
                )))
            }
        };
        Ok(ModuleDef { name, ports, body })
    }

    fn parse_port(&mut self) -> Result<PortDef, HdlError> {
        let dir = match &self.peek().kind {
            TokenKind::Ident(s) if s == "in" => PortDir::In,
            TokenKind::Ident(s) if s == "out" => PortDir::Out,
            TokenKind::Ident(s) if s == "ctrl" => PortDir::Ctrl,
            other => {
                return Err(self.error(format!(
                    "expected port direction, found {}",
                    other.describe()
                )))
            }
        };
        self.bump();
        let name = self.ident()?;
        self.expect(TokenKind::Colon)?;
        let width = self.width()?;
        self.expect(TokenKind::Semi)?;
        Ok(PortDef { name, dir, width })
    }

    /// `register q = d when en == 1;`
    fn parse_register(&mut self) -> Result<RegisterDef, HdlError> {
        self.keyword("register")?;
        let out = self.ident()?;
        self.expect(TokenKind::Assign)?;
        let input = self.parse_expr()?;
        let guard = if self.at_keyword("when") {
            self.bump();
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect(TokenKind::Semi)?;
        Ok(RegisterDef { out, input, guard })
    }

    /// `memory cells[256]: bit(16);`
    fn parse_memory(&mut self) -> Result<MemoryDef, HdlError> {
        self.keyword("memory")?;
        let array = self.ident()?;
        self.expect(TokenKind::LBracket)?;
        let size = self.int()?;
        if size == 0 {
            return Err(self.semantic_error("memory size must be positive"));
        }
        self.expect(TokenKind::RBracket)?;
        self.expect(TokenKind::Colon)?;
        let width = self.width()?;
        self.expect(TokenKind::Semi)?;
        Ok(MemoryDef {
            array,
            size,
            width,
            reads: Vec::new(),
            writes: Vec::new(),
        })
    }

    /// `read dout = cells[addr];`
    fn parse_read(&mut self) -> Result<ReadPort, HdlError> {
        self.keyword("read")?;
        let out = self.ident()?;
        self.expect(TokenKind::Assign)?;
        let _array = self.ident()?;
        self.expect(TokenKind::LBracket)?;
        let addr = self.parse_expr()?;
        self.expect(TokenKind::RBracket)?;
        self.expect(TokenKind::Semi)?;
        Ok(ReadPort { out, addr })
    }

    /// `write cells[addr] = din when w == 1;`
    fn parse_write(&mut self) -> Result<WritePort, HdlError> {
        self.keyword("write")?;
        let _array = self.ident()?;
        self.expect(TokenKind::LBracket)?;
        let addr = self.parse_expr()?;
        self.expect(TokenKind::RBracket)?;
        self.expect(TokenKind::Assign)?;
        let data = self.parse_expr()?;
        let guard = if self.at_keyword("when") {
            self.bump();
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect(TokenKind::Semi)?;
        Ok(WritePort { addr, data, guard })
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    fn parse_stmt_block(&mut self) -> Result<Vec<Stmt>, HdlError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, HdlError> {
        if self.at_keyword("case") {
            return self.parse_case();
        }
        let port = self.ident()?;
        self.expect(TokenKind::Assign)?;
        let value = self.parse_expr()?;
        self.expect(TokenKind::Semi)?;
        Ok(Stmt::Assign { port, value })
    }

    fn parse_case(&mut self) -> Result<Stmt, HdlError> {
        self.keyword("case")?;
        let selector = self.parse_expr()?;
        self.expect(TokenKind::LBrace)?;
        let mut arms = Vec::new();
        let mut default = None;
        while !self.eat(&TokenKind::RBrace) {
            if self.at_keyword("default") {
                if default.is_some() {
                    return Err(self.semantic_error("duplicate default arm"));
                }
                self.bump();
                self.expect(TokenKind::FatArrow)?;
                default = Some(self.parse_arm_body()?);
                continue;
            }
            let mut labels = vec![self.int()?];
            while self.eat(&TokenKind::Comma) {
                labels.push(self.int()?);
            }
            self.expect(TokenKind::FatArrow)?;
            let body = self.parse_arm_body()?;
            arms.push(CaseArm { labels, body });
        }
        Ok(Stmt::Case {
            selector,
            arms,
            default,
        })
    }

    fn parse_arm_body(&mut self) -> Result<Vec<Stmt>, HdlError> {
        if self.peek().kind == TokenKind::LBrace {
            self.parse_stmt_block()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    // -----------------------------------------------------------------
    // Expressions (precedence climbing)
    // -----------------------------------------------------------------

    /// Parses a module-level expression.
    pub(crate) fn parse_expr(&mut self) -> Result<Expr, HdlError> {
        self.parse_bin(0)
    }

    fn bin_op(kind: &TokenKind) -> Option<(BinOp, u8)> {
        // Higher binds tighter.
        Some(match kind {
            TokenKind::Pipe => (BinOp::Or, 1),
            TokenKind::Caret => (BinOp::Xor, 2),
            TokenKind::Amp => (BinOp::And, 3),
            TokenKind::EqEq => (BinOp::Eq, 4),
            TokenKind::NotEq => (BinOp::Ne, 4),
            TokenKind::Less => (BinOp::Lt, 5),
            TokenKind::LessEq => (BinOp::Le, 5),
            TokenKind::Greater => (BinOp::Gt, 5),
            TokenKind::GreaterEq => (BinOp::Ge, 5),
            TokenKind::Shl => (BinOp::Shl, 6),
            TokenKind::Shr => (BinOp::Shr, 6),
            TokenKind::Plus => (BinOp::Add, 7),
            TokenKind::Minus => (BinOp::Sub, 7),
            TokenKind::Star => (BinOp::Mul, 8),
            TokenKind::Slash => (BinOp::Div, 8),
            TokenKind::Percent => (BinOp::Rem, 8),
            _ => return None,
        })
    }

    fn parse_bin(&mut self, min_prec: u8) -> Result<Expr, HdlError> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, prec)) = Self::bin_op(&self.peek().kind) {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_bin(prec + 1)?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, HdlError> {
        let op = match self.peek().kind {
            TokenKind::Tilde => Some(UnOp::Not),
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Bang => Some(UnOp::LogicNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let arg = self.parse_unary()?;
            return Ok(Expr::Unary {
                op,
                arg: Box::new(arg),
            });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, HdlError> {
        let mut e = self.parse_primary()?;
        while self.peek().kind == TokenKind::LBracket {
            self.bump();
            let hi = self.int()? as u16;
            let lo = if self.eat(&TokenKind::Colon) {
                self.int()? as u16
            } else {
                hi
            };
            if lo > hi {
                return Err(self.semantic_error(format!("slice [{hi}:{lo}] has lo > hi")));
            }
            self.expect(TokenKind::RBracket)?;
            e = Expr::Slice {
                base: Box::new(e),
                hi,
                lo,
            };
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, HdlError> {
        match &self.peek().kind {
            TokenKind::Int(v) => {
                let v = *v;
                self.bump();
                Ok(Expr::Const(v))
            }
            TokenKind::Ident(_) => Ok(Expr::Port(self.ident()?)),
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!("expected expression, found {}", other.describe()))),
        }
    }

    // -----------------------------------------------------------------
    // Processor block
    // -----------------------------------------------------------------

    fn parse_processor(&mut self) -> Result<ProcessorDef, HdlError> {
        self.keyword("processor")?;
        let name = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut iword_width: Option<u16> = None;
        let mut ports: Vec<PortDef> = Vec::new();
        let mut parts: Vec<PartDef> = Vec::new();
        let mut busses: Vec<BusDef> = Vec::new();
        let mut drivers: Vec<BusDriver> = Vec::new();
        let mut connections: Vec<Connection> = Vec::new();
        let mut modes: Vec<Ident> = Vec::new();
        let mut regfiles: Vec<Ident> = Vec::new();
        let mut pc: Option<Ident> = None;
        while !self.eat(&TokenKind::RBrace) {
            if self.at_keyword("instruction") {
                self.bump();
                self.keyword("word")?;
                self.expect(TokenKind::Colon)?;
                let w = self.width()?;
                self.expect(TokenKind::Semi)?;
                if iword_width.replace(w).is_some() {
                    return Err(self.semantic_error("duplicate instruction word declaration"));
                }
            } else if self.at_keyword("in") || self.at_keyword("out") {
                let p = self.parse_port()?;
                if ports.iter().any(|x| x.name == p.name) {
                    return Err(
                        self.semantic_error(format!("duplicate processor port `{}`", p.name))
                    );
                }
                ports.push(p);
            } else if self.at_keyword("parts") {
                self.bump();
                self.expect(TokenKind::LBrace)?;
                while !self.eat(&TokenKind::RBrace) {
                    let inst = self.ident()?;
                    self.expect(TokenKind::Colon)?;
                    let module = self.ident()?;
                    self.expect(TokenKind::Semi)?;
                    if parts.iter().any(|p| p.inst == inst) {
                        return Err(self.semantic_error(format!("duplicate instance `{inst}`")));
                    }
                    parts.push(PartDef { inst, module });
                }
            } else if self.at_keyword("bus") {
                self.bump();
                let bname = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let width = self.width()?;
                self.expect(TokenKind::Semi)?;
                if busses.iter().any(|b| b.name == bname) {
                    return Err(self.semantic_error(format!("duplicate bus `{bname}`")));
                }
                busses.push(BusDef { name: bname, width });
            } else if self.at_keyword("modes") {
                self.bump();
                self.expect(TokenKind::LBrace)?;
                while !self.eat(&TokenKind::RBrace) {
                    modes.push(self.ident()?);
                    // Separators are optional between mode names.
                    let _ = self.eat(&TokenKind::Semi) || self.eat(&TokenKind::Comma);
                }
            } else if self.at_keyword("regfiles") {
                self.bump();
                self.expect(TokenKind::LBrace)?;
                while !self.eat(&TokenKind::RBrace) {
                    regfiles.push(self.ident()?);
                    let _ = self.eat(&TokenKind::Semi) || self.eat(&TokenKind::Comma);
                }
            } else if self.at_keyword("pc") {
                self.bump();
                self.expect(TokenKind::LBrace)?;
                let inst = self.ident()?;
                let _ = self.eat(&TokenKind::Semi) || self.eat(&TokenKind::Comma);
                self.expect(TokenKind::RBrace)?;
                if pc.replace(inst).is_some() {
                    return Err(self.semantic_error("duplicate pc declaration"));
                }
            } else if self.at_keyword("connections") {
                self.bump();
                self.expect(TokenKind::LBrace)?;
                while !self.eat(&TokenKind::RBrace) {
                    if self.at_keyword("drive") {
                        drivers.push(self.parse_drive()?);
                    } else {
                        connections.push(self.parse_connection()?);
                    }
                }
            } else {
                return Err(self.error(format!(
                    "unexpected {} in processor body",
                    self.peek().kind.describe()
                )));
            }
        }
        let iword_width = iword_width
            .ok_or_else(|| self.semantic_error("processor lacks instruction word declaration"))?;
        Ok(ProcessorDef {
            name,
            iword_width,
            ports,
            parts,
            busses,
            drivers,
            connections,
            modes,
            regfiles,
            pc,
        })
    }

    /// `drive dbus = alu.y when I[3] == 1;`
    fn parse_drive(&mut self) -> Result<BusDriver, HdlError> {
        self.keyword("drive")?;
        let bus = self.ident()?;
        self.expect(TokenKind::Assign)?;
        let source = self.parse_netref()?;
        let guard = if self.at_keyword("when") {
            self.bump();
            Some(self.parse_cond()?)
        } else {
            None
        };
        self.expect(TokenKind::Semi)?;
        Ok(BusDriver { bus, source, guard })
    }

    /// `inst.port = source;` or `procport = source;`
    fn parse_connection(&mut self) -> Result<Connection, HdlError> {
        let first = self.ident()?;
        let target = if self.eat(&TokenKind::Dot) {
            let port = self.ident()?;
            ConnTarget::InstPort { inst: first, port }
        } else {
            ConnTarget::ProcPort(first)
        };
        self.expect(TokenKind::Assign)?;
        let source = self.parse_netref()?;
        self.expect(TokenKind::Semi)?;
        Ok(Connection { target, source })
    }

    /// Parses a net reference: `inst.port`, bare name, `I[h:l]`, constant,
    /// with optional trailing slices.
    fn parse_netref(&mut self) -> Result<NetRef, HdlError> {
        let mut base = match &self.peek().kind {
            TokenKind::Int(v) => {
                let v = *v;
                self.bump();
                NetRef::Const(v)
            }
            TokenKind::Ident(s) if s == "I" => {
                self.bump();
                self.expect(TokenKind::LBracket)?;
                let hi = self.int()? as u16;
                let lo = if self.eat(&TokenKind::Colon) {
                    self.int()? as u16
                } else {
                    hi
                };
                if lo > hi {
                    return Err(self.semantic_error(format!("field I[{hi}:{lo}] has lo > hi")));
                }
                self.expect(TokenKind::RBracket)?;
                NetRef::IField { hi, lo }
            }
            TokenKind::Ident(_) => {
                let name = self.ident()?;
                if self.eat(&TokenKind::Dot) {
                    let port = self.ident()?;
                    NetRef::InstPort { inst: name, port }
                } else {
                    NetRef::Name(name)
                }
            }
            other => {
                return Err(self.error(format!(
                    "expected net reference, found {}",
                    other.describe()
                )))
            }
        };
        while self.peek().kind == TokenKind::LBracket {
            self.bump();
            let hi = self.int()? as u16;
            let lo = if self.eat(&TokenKind::Colon) {
                self.int()? as u16
            } else {
                hi
            };
            if lo > hi {
                return Err(self.semantic_error(format!("slice [{hi}:{lo}] has lo > hi")));
            }
            self.expect(TokenKind::RBracket)?;
            base = NetRef::Slice {
                base: Box::new(base),
                hi,
                lo,
            };
        }
        Ok(base)
    }

    /// Parses a processor-level condition with `!`, `&`, `|`, parentheses
    /// and `net == const` / `net != const` atoms.
    fn parse_cond(&mut self) -> Result<Cond, HdlError> {
        self.parse_cond_or()
    }

    fn parse_cond_or(&mut self) -> Result<Cond, HdlError> {
        let mut lhs = self.parse_cond_and()?;
        while self.eat(&TokenKind::Pipe) {
            let rhs = self.parse_cond_and()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cond_and(&mut self) -> Result<Cond, HdlError> {
        let mut lhs = self.parse_cond_atom()?;
        while self.eat(&TokenKind::Amp) {
            let rhs = self.parse_cond_atom()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cond_atom(&mut self) -> Result<Cond, HdlError> {
        if self.eat(&TokenKind::Bang) {
            let inner = self.parse_cond_atom()?;
            return Ok(Cond::Not(Box::new(inner)));
        }
        if self.peek().kind == TokenKind::LParen {
            self.bump();
            let c = self.parse_cond()?;
            self.expect(TokenKind::RParen)?;
            return Ok(c);
        }
        let lhs = self.parse_netref()?;
        let op = if self.eat(&TokenKind::EqEq) {
            CmpOp::Eq
        } else if self.eat(&TokenKind::NotEq) {
            CmpOp::Ne
        } else {
            return Err(self.error(format!(
                "expected `==` or `!=` in condition, found {}",
                self.peek().kind.describe()
            )));
        };
        let rhs = self.int()?;
        Ok(Cond::Cmp { lhs, op, rhs })
    }
}
