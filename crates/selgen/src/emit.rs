//! Emission of a standalone Rust matcher (the iburg code-generation step).
//!
//! iburg reads a BNF tree grammar and emits C source for a grammar-specific
//! parser which is then compiled by the host C compiler; the paper's
//! retargeting times include both steps.  We mirror the artefact: given a
//! grammar, [`emit_rust`] renders a self-contained Rust module with the rule
//! tables and a hard-coded matcher.  The in-memory [`crate::Selector`] is
//! what the pipeline actually executes (Rust has no `dlopen`-style in-
//! process compilation), but the emitted source is a faithful, inspectable
//! equivalent of iburg's output and its generation cost is part of the
//! measured retargeting time.

use record_grammar::{GPat, TermKey, TreeGrammar};
use std::fmt::Write as _;

/// Renders `grammar` as a standalone Rust module implementing a
/// grammar-specific labeller.
///
/// The output is deterministic (stable across runs for the same grammar) so
/// it can be checked into a target's source tree and diffed on
/// re-retargeting.
pub fn emit_rust(grammar: &TreeGrammar, module_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "//! Generated tree parser `{module_name}` — do not edit.\n//!\n//! {} non-terminals, {} rules.\n",
        grammar.nonterm_count(),
        grammar.rules().len()
    );
    let _ = writeln!(
        out,
        "pub const NONTERM_COUNT: usize = {};",
        grammar.nonterm_count()
    );
    let _ = writeln!(
        out,
        "pub const RULE_COUNT: usize = {};\n",
        grammar.rules().len()
    );

    // Non-terminal names.
    let _ = writeln!(out, "pub const NONTERM_NAMES: [&str; NONTERM_COUNT] = [");
    for i in 0..grammar.nonterm_count() {
        let _ = writeln!(
            out,
            "    {:?},",
            grammar.nonterm_name(record_grammar::NonTermId(i as u32))
        );
    }
    let _ = writeln!(out, "];\n");

    // Rule table: (lhs, cost).
    let _ = writeln!(out, "/// `(lhs, cost)` per rule id.");
    let _ = writeln!(out, "pub const RULES: [(u32, u32); RULE_COUNT] = [");
    for r in grammar.rules() {
        let _ = writeln!(
            out,
            "    ({}, {}), // {}",
            r.lhs.0,
            r.cost,
            describe_rhs(&r.rhs)
        );
    }
    let _ = writeln!(out, "];\n");

    // A minimal node model mirroring record_grammar::EtKind.
    out.push_str(NODE_MODEL);

    // The matcher: one arm per rule.
    let _ = writeln!(
        out,
        "/// Attempts to match each rule at `node`; on success returns the sum of\n/// non-terminal leaf costs taken from `labels`."
    );
    let _ = writeln!(
        out,
        "pub fn match_rule(rule: u32, nodes: &[Node], node: usize, labels: &[[Option<u32>; NONTERM_COUNT]]) -> Option<u32> {{"
    );
    let _ = writeln!(out, "    match rule {{");
    for r in grammar.rules() {
        let mut body = String::new();
        let mut cost_terms: Vec<String> = Vec::new();
        emit_pat_check(&r.rhs, "node", &mut body, &mut cost_terms, &mut 0);
        let sum = if cost_terms.is_empty() {
            "0".to_owned()
        } else {
            cost_terms.join(" + ")
        };
        let _ = writeln!(out, "        {} => {{", r.id.0);
        out.push_str(&body);
        let _ = writeln!(out, "            Some({sum})");
        let _ = writeln!(out, "        }}");
    }
    let _ = writeln!(out, "        _ => None,");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    out
}

/// Emits the structural checks for `pat` rooted at Rust expression `at`.
fn emit_pat_check(
    pat: &GPat,
    at: &str,
    body: &mut String,
    cost_terms: &mut Vec<String>,
    tmp: &mut usize,
) {
    match pat {
        GPat::NT(nt) => {
            cost_terms.push(format!("labels[{at}][{}]?", nt.0));
        }
        GPat::T(key, kids) => {
            let check = key_check(key, at);
            let _ = writeln!(body, "            {check}");
            for (i, kid) in kids.iter().enumerate() {
                *tmp += 1;
                let var = format!("c{tmp}");
                let _ = writeln!(
                    body,
                    "            let {var} = *nodes[{at}].children.get({i})?;"
                );
                emit_pat_check(kid, &var, body, cost_terms, tmp);
            }
        }
    }
}

fn key_check(key: &TermKey, at: &str) -> String {
    match key {
        TermKey::Assign(k) => format!(
            "if nodes[{at}].kind != Kind::Assign({}) {{ return None; }}",
            assign_code(k)
        ),
        TermKey::Store(s) => format!(
            "if nodes[{at}].kind != Kind::Store({}) {{ return None; }}",
            s.0
        ),
        TermKey::Op(op) => format!(
            "if nodes[{at}].kind != Kind::Op({:?}) {{ return None; }}",
            op.to_string()
        ),
        TermKey::MemRead(s) => format!(
            "if nodes[{at}].kind != Kind::MemRead({}) {{ return None; }}",
            s.0
        ),
        TermKey::RegLeaf(s) => format!(
            "if nodes[{at}].kind != Kind::RegLeaf({}) {{ return None; }}",
            s.0
        ),
        TermKey::RfLeaf(s) => format!(
            "if nodes[{at}].kind != Kind::RfLeaf({}) {{ return None; }}",
            s.0
        ),
        TermKey::PortLeaf(p) => format!(
            "if nodes[{at}].kind != Kind::PortLeaf({}) {{ return None; }}",
            p.0
        ),
        TermKey::ConstVal(v) => {
            format!("if nodes[{at}].kind != Kind::Const({v}) {{ return None; }}")
        }
        TermKey::Imm { hi, lo } => {
            let width = hi - lo + 1;
            format!(
                "match nodes[{at}].kind {{ Kind::Const(v) if fits(v, {width}) => (), _ => return None, }}"
            )
        }
    }
}

fn assign_code(k: &record_grammar::AssignKey) -> String {
    match k {
        record_grammar::AssignKey::Reg(s) => format!("AssignKey::Reg({})", s.0),
        record_grammar::AssignKey::RegFile(s) => format!("AssignKey::RegFile({})", s.0),
        record_grammar::AssignKey::Port(p) => format!("AssignKey::Port({})", p.0),
    }
}

fn describe_rhs(p: &GPat) -> String {
    match p {
        GPat::NT(nt) => format!("nt{}", nt.0),
        GPat::T(key, kids) => {
            let head = format!("{key:?}");
            if kids.is_empty() {
                head
            } else {
                format!(
                    "{head}({})",
                    kids.iter().map(describe_rhs).collect::<Vec<_>>().join(", ")
                )
            }
        }
    }
}

const NODE_MODEL: &str = r#"/// Minimal expression-tree node model for the generated matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignKey { Reg(u32), RegFile(u32), Port(u32) }

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Assign(AssignKey),
    Store(u32),
    Op(&'static str),
    MemRead(u32),
    Const(u64),
    RegLeaf(u32),
    RfLeaf(u32),
    PortLeaf(u32),
}

#[derive(Debug, Clone)]
pub struct Node { pub kind: Kind, pub children: Vec<usize> }

/// Does `value` fit an unsigned field of `width` bits?
pub fn fits(value: u64, width: u16) -> bool {
    width >= 64 || value < (1u64 << width)
}

"#;
