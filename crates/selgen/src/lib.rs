//! Tree-parser generation and cost-optimal tree parsing (paper §3.2).
//!
//! The original system feeds the tree grammar to *iburg*, which emits a C
//! tree parser doing dynamic programming at parse time.  This crate plays
//! both roles:
//!
//! * [`Selector::generate`] is "parser generation": it compiles the grammar
//!   into indexed dispatch tables (rules by root terminal, chain rules by
//!   source non-terminal) — the moral equivalent of iburg's emitted tables.
//! * [`Selector::select`] is the generated parser: a bottom-up labelling
//!   pass computes, per ET node and non-terminal, the cheapest derivation
//!   cost and the rule achieving it (with chain-rule closure), then a
//!   top-down reduction emits the minimum-cost cover.
//! * [`emit_rust`] additionally renders the grammar-specific matcher as a
//!   standalone Rust source file, mirroring iburg's code-generation step;
//!   retargeting-time measurements include this emission.
//!
//! Covers are optimal with respect to accumulated rule costs: chained
//! operations (multiply-accumulate and friends) are exploited, pure data
//! moves are minimised, and special-purpose registers for intermediate
//! results fall out of the non-terminal assignment (paper §3.2).
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     module Acc {
//!         in d: bit(8);
//!         ctrl en: bit(1);
//!         out q: bit(8);
//!         register q = d when en == 1;
//!     }
//!     processor P {
//!         instruction word: bit(12);
//!         parts { acc: Acc; }
//!         connections { acc.d = I[7:0]; acc.en = I[8]; }
//!     }
//! "#;
//! use record_grammar::{Et, EtBuilder, EtDest, EtKind, TreeGrammar};
//! let model = record_hdl::parse(src)?;
//! let netlist = record_netlist::elaborate(&model)?;
//! let ex = record_isex::extract(&netlist, &Default::default())?;
//! let grammar = std::sync::Arc::new(TreeGrammar::from_base(&ex.base, &netlist));
//! let selector = record_selgen::Selector::generate(grammar);
//!
//! let acc = netlist.storage_by_name("acc").unwrap().id;
//! let mut b = EtBuilder::new();
//! b.leaf(EtKind::Const(42));
//! let et = Et::assign(EtDest::Reg(acc), b);
//! let cover = selector.select(&et)?;
//! assert_eq!(cover.cost, 1); // one immediate-load RT
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod emit;
mod selector;

pub use emit::emit_rust;
pub use selector::{Cover, RuleApp, SelectError, SelectStats, Selector};

#[cfg(test)]
mod tests;
