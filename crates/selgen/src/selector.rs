//! The dynamic-programming tree parser.

use record_grammar::{Et, EtKind, GPat, NodeIdx, NonTermId, RuleId, TermKey, TreeGrammar};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Code selection failed: some subtree has no derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectError {
    /// Rendered subtree that could not be covered.
    pub subtree: String,
    /// Human-readable explanation.
    pub reason: String,
    /// When the derivation broke at an operator node for which the
    /// grammar has *no rule at all*, the operator's mnemonic.  This
    /// separates "the data path lacks this operation" (a hardware gap)
    /// from "rules exist but none matched in context" (a selector gap).
    pub missing_op: Option<&'static str>,
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no cover for `{}`: {}", self.subtree, self.reason)
    }
}

impl Error for SelectError {}

/// One rule application in a cover, in emission (post) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleApp {
    /// The applied rule.
    pub rule: RuleId,
    /// ET node where the rule's root matched.
    pub at: NodeIdx,
    /// The non-terminal this application derives.
    pub nt: NonTermId,
    /// For every non-terminal leaf of the rule pattern (left-to-right): the
    /// non-terminal and the ET node it derives.
    pub operands: Vec<(NonTermId, NodeIdx)>,
}

/// Work counters of one [`Selector::select`] call.
///
/// Plain fields incremented inside the labelling loops — always on,
/// machine-independent, and deterministic for a given grammar and tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectStats {
    /// Candidate rules whose pattern was matched against a node
    /// (including chain-closure re-visits).
    pub rules_tried: u64,
    /// Label-matrix entries written (first writes and improvements).
    pub labels_set: u64,
}

impl SelectStats {
    /// Accumulates another call's counters into this one.
    pub fn absorb(&mut self, other: &SelectStats) {
        self.rules_tried += other.rules_tried;
        self.labels_set += other.labels_set;
    }
}

/// A minimum-cost cover of an expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    /// Total accumulated cost (number of RT rules for unit costs).
    pub cost: u32,
    /// Applications in evaluation order: operands before consumers.
    pub apps: Vec<RuleApp>,
    /// Labelling work done to find this cover.
    pub stats: SelectStats,
}

impl Cover {
    /// Applications that correspond to RT templates (cost-bearing rules).
    pub fn template_apps<'a>(
        &'a self,
        grammar: &'a TreeGrammar,
    ) -> impl Iterator<Item = &'a RuleApp> {
        self.apps
            .iter()
            .filter(move |a| grammar.rule(a.rule).template().is_some())
    }
}

#[derive(Debug, Clone, Copy)]
enum Via {
    Base(RuleId),
    Chain(RuleId),
}

#[derive(Debug, Clone, Copy)]
struct LabelEntry {
    cost: u32,
    via: Via,
    /// 1 if the rule's operand non-terminals are pairwise distinct.
    diversity: u8,
}

/// Dense node-major labelling matrix: one allocation of
/// `nodes x non-terminals` entries instead of a `Vec` of `Vec`s.
#[derive(Debug)]
struct LabelMatrix {
    entries: Vec<Option<LabelEntry>>,
    nt_count: usize,
}

impl LabelMatrix {
    fn new(nodes: usize, nt_count: usize) -> LabelMatrix {
        LabelMatrix {
            entries: vec![None; nodes * nt_count],
            nt_count,
        }
    }

    #[inline]
    fn at(&self, idx: NodeIdx, nt: NonTermId) -> Option<LabelEntry> {
        self.entries[idx * self.nt_count + nt.0 as usize]
    }

    #[inline]
    fn slot(&mut self, idx: NodeIdx, nt: NonTermId) -> &mut Option<LabelEntry> {
        &mut self.entries[idx * self.nt_count + nt.0 as usize]
    }

    /// Does node `idx` carry no label for any non-terminal?
    fn unlabelled(&self, idx: NodeIdx) -> bool {
        self.entries[idx * self.nt_count..(idx + 1) * self.nt_count]
            .iter()
            .all(Option::is_none)
    }
}

/// A grammar-specific tree parser (see crate docs).
///
/// Generation precomputes everything `select` needs per node: candidate
/// rules live in one flat arena sliced per root terminal (so dispatching
/// on an ET node kind is a map lookup returning a borrowed slice, never a
/// clone), and dynamic-programming labels go into a dense
/// node-major matrix allocated in one piece.
#[derive(Debug, Clone)]
pub struct Selector {
    /// Shared, not cloned: the grammar is part of the frozen retarget
    /// artifact and the selector only ever reads it.
    grammar: Arc<TreeGrammar>,
    /// Flat arena of candidate rule ids, sliced by `by_key` ranges.
    rule_arena: Vec<RuleId>,
    /// Rules indexed by the exact root terminal: `(start, end)` ranges
    /// into `rule_arena`.
    by_key: HashMap<TermKey, (u32, u32)>,
    /// Rules whose root is a hardwired constant or immediate terminal
    /// (candidates for `Const` ET nodes).
    const_root_rules: Vec<RuleId>,
    /// Chain rules: (rule, target, source, cost).
    chains: Vec<(RuleId, NonTermId, NonTermId, u32)>,
    nt_count: usize,
}

impl Selector {
    /// "Parser generation": compiles `grammar` into dispatch tables.
    ///
    /// Takes the grammar by `Arc` so the retarget artifact and the
    /// selector share one rule set instead of duplicating it.
    pub fn generate(grammar: Arc<TreeGrammar>) -> Selector {
        let mut grouped: HashMap<TermKey, Vec<RuleId>> = HashMap::new();
        let mut const_root_rules = Vec::new();
        let mut chains = Vec::new();
        for r in grammar.rules() {
            match &r.rhs {
                GPat::NT(src) => chains.push((r.id, r.lhs, *src, r.cost)),
                GPat::T(key, _) => match key {
                    TermKey::ConstVal(_) | TermKey::Imm { .. } => const_root_rules.push(r.id),
                    other => grouped.entry(*other).or_default().push(r.id),
                },
            }
        }
        // Flatten the per-key groups into one arena so `candidates`
        // returns borrowed slices.
        let mut rule_arena = Vec::new();
        let mut by_key = HashMap::with_capacity(grouped.len());
        for (key, rules) in grouped {
            let start = rule_arena.len() as u32;
            rule_arena.extend(rules);
            by_key.insert(key, (start, rule_arena.len() as u32));
        }
        let nt_count = grammar.nonterm_count();
        Selector {
            grammar,
            rule_arena,
            by_key,
            const_root_rules,
            chains,
            nt_count,
        }
    }

    /// The grammar this parser was generated from.
    pub fn grammar(&self) -> &TreeGrammar {
        &self.grammar
    }

    /// A shared handle to the grammar.
    pub fn grammar_arc(&self) -> Arc<TreeGrammar> {
        Arc::clone(&self.grammar)
    }

    /// Number of rules reachable through the dispatch tables (diagnostic).
    pub fn table_size(&self) -> usize {
        self.rule_arena.len() + self.const_root_rules.len() + self.chains.len()
    }

    /// Computes a minimum-cost cover of `et`.
    ///
    /// # Errors
    ///
    /// Returns [`SelectError`] when no derivation of the whole tree from
    /// `START` exists — e.g. an operator the data path lacks, or a constant
    /// that fits no immediate field and no hardwired constant.
    pub fn select(&self, et: &Et) -> Result<Cover, SelectError> {
        let mut stats = SelectStats::default();
        let labels = self.label(et, &mut stats);
        let root_entry = labels.at(et.root(), NonTermId::START);
        if root_entry.is_none() {
            return Err(self.diagnose(et, &labels));
        }
        let mut apps = Vec::new();
        self.reduce(et, &labels, et.root(), NonTermId::START, &mut apps);
        let cost = root_entry.expect("checked above").cost;
        Ok(Cover { cost, apps, stats })
    }

    /// Bottom-up labelling: per node, per non-terminal, cheapest cost and
    /// the rule achieving it.  Nodes are created children-first by
    /// [`record_grammar::EtBuilder`], so index order is a valid bottom-up
    /// order.  The matrix is one dense allocation; rows are written in
    /// place, so labelling performs no per-node allocation at all.
    fn label(&self, et: &Et, stats: &mut SelectStats) -> LabelMatrix {
        let mut labels = LabelMatrix::new(et.len(), self.nt_count);
        for idx in 0..et.len() {
            for &rid in self.candidates(et.kind(idx)) {
                stats.rules_tried += 1;
                let rule = self.grammar.rule(rid);
                if let Some(child_cost) = self.match_cost(&rule.rhs, et, idx, &labels) {
                    let total = rule.cost.saturating_add(child_cost);
                    let diversity = Self::operand_diversity(&rule.rhs);
                    let slot = labels.slot(idx, rule.lhs);
                    // On cost ties prefer rules whose operand non-terminals
                    // are pairwise distinct: tree parsing is interference-
                    // blind, but a cover that needs the same register for
                    // two simultaneously-live operands is unimplementable,
                    // so diversity is a free anti-conflict heuristic.
                    let better = match *slot {
                        None => true,
                        Some(e) => total < e.cost || (total == e.cost && diversity > e.diversity),
                    };
                    if better {
                        stats.labels_set += 1;
                        *slot = Some(LabelEntry {
                            cost: total,
                            via: Via::Base(rid),
                            diversity,
                        });
                    }
                }
            }
            // Chain-rule closure (costs are non-negative; strict improvement
            // guarantees termination).
            let mut changed = true;
            while changed {
                changed = false;
                for &(rid, tgt, src, cost) in &self.chains {
                    stats.rules_tried += 1;
                    let Some(src_entry) = labels.at(idx, src) else {
                        continue;
                    };
                    let total = src_entry.cost.saturating_add(cost);
                    let slot = labels.slot(idx, tgt);
                    if slot.is_none_or(|e| total < e.cost) {
                        stats.labels_set += 1;
                        *slot = Some(LabelEntry {
                            cost: total,
                            via: Via::Chain(rid),
                            diversity: src_entry.diversity,
                        });
                        changed = true;
                    }
                }
            }
        }
        labels
    }

    /// Candidate rules whose root terminal may match `kind`, as a
    /// borrowed slice of the precomputed dispatch arena.
    fn candidates(&self, kind: EtKind) -> &[RuleId] {
        match kind {
            EtKind::Const(_) => &self.const_root_rules,
            EtKind::Assign(k) => self.lookup(TermKey::Assign(k)),
            EtKind::Store(s) => self.lookup(TermKey::Store(s)),
            EtKind::Op(o) => self.lookup(TermKey::Op(o)),
            EtKind::MemRead(s) => self.lookup(TermKey::MemRead(s)),
            EtKind::RegLeaf(s) => self.lookup(TermKey::RegLeaf(s)),
            EtKind::RfLeaf(s, _) => self.lookup(TermKey::RfLeaf(s)),
            EtKind::PortLeaf(p) => self.lookup(TermKey::PortLeaf(p)),
        }
    }

    fn lookup(&self, key: TermKey) -> &[RuleId] {
        match self.by_key.get(&key) {
            Some(&(start, end)) => &self.rule_arena[start as usize..end as usize],
            None => &[],
        }
    }

    /// 1 when the pattern's non-terminal leaves are pairwise distinct.
    fn operand_diversity(rhs: &GPat) -> u8 {
        let leaves = rhs.nonterm_leaves();
        let mut sorted = leaves.clone();
        sorted.sort_unstable();
        sorted.dedup();
        u8::from(sorted.len() == leaves.len())
    }

    /// Cost of matching `pat` structurally at `idx` (sum of non-terminal
    /// leaf costs), or `None` if it does not match.
    fn match_cost(&self, pat: &GPat, et: &Et, idx: NodeIdx, labels: &LabelMatrix) -> Option<u32> {
        match pat {
            GPat::NT(nt) => labels.at(idx, *nt).map(|e| e.cost),
            GPat::T(key, kids) => {
                if !et.kind_matches(idx, key) {
                    return None;
                }
                let children = et.children(idx);
                if children.len() != kids.len() {
                    return None;
                }
                let mut total = 0u32;
                for (kpat, &kidx) in kids.iter().zip(children) {
                    total = total.saturating_add(self.match_cost(kpat, et, kidx, labels)?);
                }
                Some(total)
            }
        }
    }

    /// Collects non-terminal leaf bindings of a matching pattern.
    fn bindings(&self, pat: &GPat, et: &Et, idx: NodeIdx, out: &mut Vec<(NonTermId, NodeIdx)>) {
        match pat {
            GPat::NT(nt) => out.push((*nt, idx)),
            GPat::T(_, kids) => {
                for (kpat, &kidx) in kids.iter().zip(et.children(idx)) {
                    self.bindings(kpat, et, kidx, out);
                }
            }
        }
    }

    /// Top-down reduction emitting applications in evaluation order.
    fn reduce(
        &self,
        et: &Et,
        labels: &LabelMatrix,
        idx: NodeIdx,
        nt: NonTermId,
        out: &mut Vec<RuleApp>,
    ) {
        let entry = labels.at(idx, nt).expect("reduce called on labelled goal");
        match entry.via {
            Via::Chain(rid) => {
                let rule = self.grammar.rule(rid);
                let src = rule.rhs.as_chain().expect("chain rule body");
                self.reduce(et, labels, idx, src, out);
                out.push(RuleApp {
                    rule: rid,
                    at: idx,
                    nt,
                    operands: vec![(src, idx)],
                });
            }
            Via::Base(rid) => {
                let rule = self.grammar.rule(rid);
                let mut operands = Vec::new();
                self.bindings(&rule.rhs, et, idx, &mut operands);
                for &(op_nt, op_idx) in &operands {
                    self.reduce(et, labels, op_idx, op_nt, out);
                }
                out.push(RuleApp {
                    rule: rid,
                    at: idx,
                    nt,
                    operands,
                });
            }
        }
    }

    /// Builds a helpful error by finding the most informative unlabelled
    /// node: an unlabelled node whose children are all labelled is where
    /// derivation actually broke (bare constants such as addresses are
    /// matched structurally inside patterns and are expected to be
    /// unlabelled, so inner nodes are preferred over leaves).
    fn diagnose(&self, et: &Et, labels: &LabelMatrix) -> SelectError {
        let unlabelled = |i: NodeIdx| labels.unlabelled(i);
        let mut best: Option<NodeIdx> = None;
        for idx in 0..et.len() {
            if !unlabelled(idx) {
                continue;
            }
            // Children must be labelled or structural leaves (constants are
            // matched inside patterns and are expected to be unlabelled).
            if et
                .children(idx)
                .iter()
                .any(|&c| unlabelled(c) && !et.children(c).is_empty())
            {
                continue;
            }
            let better = match best {
                None => true,
                // Prefer inner nodes; among equals, the later (outer) one.
                Some(b) => !et.children(idx).is_empty() || et.children(b).is_empty(),
            };
            if better {
                best = Some(idx);
            }
        }
        match best {
            Some(idx) => {
                // Distinguish "the machine has no rule for this operator"
                // (missing hardware) from "rules exist but none fit here"
                // (a selector gap).
                let missing_op = match et.kind(idx) {
                    EtKind::Op(o) if self.lookup(TermKey::Op(o)).is_empty() => Some(o.mnemonic()),
                    _ => None,
                };
                let reason = match missing_op {
                    Some(op) => format!("the grammar has no rule for operator `{op}`"),
                    None => "no rule matches this subtree for any location".into(),
                };
                SelectError {
                    subtree: et.render(idx),
                    reason,
                    missing_op,
                }
            }
            None => SelectError {
                subtree: et.render(et.root()),
                reason: "subtrees are derivable but no start rule covers the destination".into(),
                missing_op: None,
            },
        }
    }
}
