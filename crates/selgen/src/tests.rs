use crate::*;
use proptest::prelude::*;
use record_grammar::*;
use record_netlist::Netlist;
use record_rtl::OpKind;

fn pipeline(src: &str) -> (Netlist, std::sync::Arc<TreeGrammar>) {
    let model = record_hdl::parse(src).expect("parses");
    let n = record_netlist::elaborate(&model).expect("elaborates");
    let ex = record_isex::extract(&n, &Default::default()).expect("extracts");
    let g = std::sync::Arc::new(TreeGrammar::from_base(&ex.base, &n));
    (n, g)
}

const ACC_MACHINE: &str = r#"
    module Alu {
        in a: bit(8);
        in b: bit(8);
        ctrl f: bit(2);
        out y: bit(8);
        behavior {
            case f {
                0 => y = a + b;
                1 => y = a - b;
                2 => y = a & b;
                3 => y = a;
            }
        }
    }
    module Acc {
        in d: bit(8);
        ctrl en: bit(1);
        out q: bit(8);
        register q = d when en == 1;
    }
    module Ram {
        in addr: bit(4);
        in din: bit(8);
        ctrl w: bit(1);
        out dout: bit(8);
        memory cells[16]: bit(8);
        read dout = cells[addr];
        write cells[addr] = din when w == 1;
    }
    processor AccMachine {
        instruction word: bit(8);
        out pout: bit(8);
        parts { alu: Alu; acc: Acc; ram: Ram; }
        connections {
            alu.a = acc.q;
            alu.b = ram.dout;
            alu.f = I[1:0];
            acc.d = alu.y;
            acc.en = I[7];
            ram.addr = I[5:2];
            ram.din = acc.q;
            ram.w = I[6];
            pout = acc.q;
        }
    }
"#;

#[test]
fn selects_single_rt_for_memory_operand_add() {
    let (n, g) = pipeline(ACC_MACHINE);
    let sel = Selector::generate(g.clone());
    let acc = n.storage_by_name("acc").unwrap().id;
    let ram = n.storage_by_name("ram").unwrap().id;

    // acc := acc + ram[5]
    let mut b = EtBuilder::new();
    let a = b.leaf(EtKind::RegLeaf(acc));
    let addr = b.leaf(EtKind::Const(5));
    let m = b.node(EtKind::MemRead(ram), vec![addr]);
    b.node(EtKind::Op(OpKind::Add), vec![a, m]);
    let et = Et::assign(EtDest::Reg(acc), b);

    let cover = sel.select(&et).unwrap();
    assert_eq!(cover.cost, 1, "memory-register add is one RT");
    assert_eq!(cover.template_apps(&g).count(), 1);
    // Evaluation order: operand derivations (the stop rule) come first.
    assert!(cover.apps.len() >= 2);
    let first = g.rule(cover.apps[0].rule);
    assert!(matches!(first.origin, RuleOrigin::Stop(_)));
}

#[test]
fn store_statement_selected() {
    let (n, g) = pipeline(ACC_MACHINE);
    let sel = Selector::generate(g.clone());
    let acc = n.storage_by_name("acc").unwrap().id;
    let ram = n.storage_by_name("ram").unwrap().id;

    // ram[7] := acc
    let mut b = EtBuilder::new();
    let addr = b.leaf(EtKind::Const(7));
    let val = b.leaf(EtKind::RegLeaf(acc));
    let et = Et::store(ram, addr, val, b);

    let cover = sel.select(&et).unwrap();
    assert_eq!(cover.cost, 1);
}

#[test]
fn chained_mac_selected_as_one_template() {
    let src = r#"
        module Mul { in a: bit(16); in b: bit(16); out y: bit(16);
                     behavior { y = a * b; } }
        module Add { in a: bit(16); in b: bit(16); out y: bit(16);
                     behavior { y = a + b; } }
        module Reg16 { in d: bit(16); ctrl en: bit(1); out q: bit(16);
                       register q = d when en == 1; }
        module Ram {
            in addr: bit(4); in din: bit(16); ctrl w: bit(1); out dout: bit(16);
            memory cells[16]: bit(16);
            read dout = cells[addr];
            write cells[addr] = din when w == 1;
        }
        processor Mac {
            instruction word: bit(8);
            parts { mul: Mul; add: Add; acc: Reg16; t: Reg16; ram: Ram; }
            connections {
                mul.a = t.q;
                mul.b = ram.dout;
                add.a = acc.q;
                add.b = mul.y;
                acc.d = add.y;
                acc.en = I[0];
                t.d = ram.dout;
                t.en = I[1];
                ram.addr = I[7:4];
                ram.din = acc.q;
                ram.w = I[2];
            }
        }
    "#;
    let (n, g) = pipeline(src);
    let sel = Selector::generate(g.clone());
    let acc = n.storage_by_name("acc").unwrap().id;
    let t = n.storage_by_name("t").unwrap().id;
    let ram = n.storage_by_name("ram").unwrap().id;

    // acc := acc + t * ram[3]  — classic multiply-accumulate.
    let mut b = EtBuilder::new();
    let a = b.leaf(EtKind::RegLeaf(acc));
    let tv = b.leaf(EtKind::RegLeaf(t));
    let addr = b.leaf(EtKind::Const(3));
    let m = b.node(EtKind::MemRead(ram), vec![addr]);
    let mul = b.node(EtKind::Op(OpKind::Mul), vec![tv, m]);
    b.node(EtKind::Op(OpKind::Add), vec![a, mul]);
    let et = Et::assign(EtDest::Reg(acc), b);

    let cover = sel.select(&et).unwrap();
    assert_eq!(cover.cost, 1, "MAC must be exploited as a chained op");
}

#[test]
fn chain_rules_reduce_in_order() {
    let src = r#"
        module R { in d: bit(8); ctrl en: bit(1); out q: bit(8);
                   register q = d when en == 1; }
        processor P {
            instruction word: bit(4);
            in pin: bit(8);
            parts { r1: R; r2: R; }
            connections {
                r1.d = pin;
                r1.en = I[0];
                r2.d = r1.q;
                r2.en = I[1];
            }
        }
    "#;
    let (n, g) = pipeline(src);
    let sel = Selector::generate(g.clone());
    let r2 = n.storage_by_name("r2").unwrap().id;

    // r2 := pin — needs r1 := pin, then r2 := r1.
    let mut b = EtBuilder::new();
    b.leaf(EtKind::PortLeaf(record_netlist::ProcPortId(0)));
    let et = Et::assign(EtDest::Reg(r2), b);
    let cover = sel.select(&et).unwrap();
    assert_eq!(cover.cost, 2);
    let rts: Vec<_> = cover.template_apps(&g).collect();
    assert_eq!(rts.len(), 2);
    // First the load into r1, then the move into r2.
    assert_eq!(g.nonterm_name(rts[0].nt), "r1");
    assert_eq!(g.nonterm_name(rts[1].nt), "r2");
}

#[test]
fn missing_operator_is_diagnosed() {
    let (n, g) = pipeline(ACC_MACHINE);
    let sel = Selector::generate(g.clone());
    let acc = n.storage_by_name("acc").unwrap().id;

    // acc := acc * acc — the ALU has no multiplier.
    let mut b = EtBuilder::new();
    let a1 = b.leaf(EtKind::RegLeaf(acc));
    let a2 = b.leaf(EtKind::RegLeaf(acc));
    b.node(EtKind::Op(OpKind::Mul), vec![a1, a2]);
    let et = Et::assign(EtDest::Reg(acc), b);
    let err = sel.select(&et).unwrap_err();
    assert!(err.subtree.contains("mul"), "{err}");
}

#[test]
fn oversized_constant_is_diagnosed() {
    let (n, g) = pipeline(ACC_MACHINE);
    let sel = Selector::generate(g.clone());
    let acc = n.storage_by_name("acc").unwrap().id;
    let ram = n.storage_by_name("ram").unwrap().id;

    // Address 200 does not fit the 4-bit direct address field.
    let mut b = EtBuilder::new();
    let a = b.leaf(EtKind::RegLeaf(acc));
    let addr = b.leaf(EtKind::Const(200));
    let m = b.node(EtKind::MemRead(ram), vec![addr]);
    b.node(EtKind::Op(OpKind::Add), vec![a, m]);
    let et = Et::assign(EtDest::Reg(acc), b);
    assert!(sel.select(&et).is_err());
}

#[test]
fn cover_cost_equals_sum_of_rule_costs() {
    let (n, g) = pipeline(ACC_MACHINE);
    let sel = Selector::generate(g.clone());
    let acc = n.storage_by_name("acc").unwrap().id;
    let ram = n.storage_by_name("ram").unwrap().id;

    // acc := (acc - ram[1]) & ram[2]  — two RTs.
    let mut b = EtBuilder::new();
    let a = b.leaf(EtKind::RegLeaf(acc));
    let a1 = b.leaf(EtKind::Const(1));
    let m1 = b.node(EtKind::MemRead(ram), vec![a1]);
    let sub = b.node(EtKind::Op(OpKind::Sub), vec![a, m1]);
    let a2 = b.leaf(EtKind::Const(2));
    let m2 = b.node(EtKind::MemRead(ram), vec![a2]);
    b.node(EtKind::Op(OpKind::And), vec![sub, m2]);
    let et = Et::assign(EtDest::Reg(acc), b);

    let cover = sel.select(&et).unwrap();
    let total: u32 = cover.apps.iter().map(|a| g.rule(a.rule).cost).sum();
    assert_eq!(cover.cost, total);
    assert_eq!(cover.cost, 2);
}

#[test]
fn table_size_reflects_rules() {
    let (_, g) = pipeline(ACC_MACHINE);
    let sel = Selector::generate(g.clone());
    assert_eq!(sel.table_size(), g.rules().len());
}

#[test]
fn emitted_rust_is_deterministic_and_complete() {
    let (n, g) = pipeline(ACC_MACHINE);
    let s1 = emit_rust(&g, "acc_machine");
    let s2 = emit_rust(&g, "acc_machine");
    assert_eq!(s1, s2);
    assert!(s1.contains(&format!(
        "pub const RULE_COUNT: usize = {};",
        g.rules().len()
    )));
    assert!(s1.contains("pub fn match_rule"));
    assert!(s1.contains("Kind::Const"));
    let _ = n;
}

// ---------------------------------------------------------------------------
// Property: the DP cover never costs more than a random valid derivation of
// the same tree (upper-bound witness for optimality), and covers are
// structurally well-formed.
// ---------------------------------------------------------------------------

/// Builds a random ET by expanding the grammar from START, returning the
/// derivation cost as an upper bound.  `choices` drives rule selection.
fn random_derivation(g: &TreeGrammar, choices: &[u8]) -> Option<(Et, u32)> {
    fn expand(
        g: &TreeGrammar,
        nt: NonTermId,
        b: &mut EtBuilder,
        choices: &[u8],
        pos: &mut usize,
        depth: usize,
        cost: &mut u32,
    ) -> Option<NodeIdx> {
        let rules: Vec<_> = g.rules_for(nt).collect();
        if rules.is_empty() {
            return None;
        }
        // Prefer terminal (leaf-only) rules when out of depth budget.
        let pick_from: Vec<_> = if depth == 0 {
            let t: Vec<_> = rules
                .iter()
                .filter(|r| r.rhs.nonterm_leaves().is_empty() && r.rhs.as_chain().is_none())
                .copied()
                .collect();
            if t.is_empty() {
                return None;
            }
            t
        } else {
            rules
        };
        let c = choices.get(*pos).copied().unwrap_or(0) as usize;
        *pos += 1;
        let rule = pick_from[c % pick_from.len()];
        *cost += rule.cost;
        build_pat(g, &rule.rhs, b, choices, pos, depth.saturating_sub(1), cost)
    }

    fn build_pat(
        g: &TreeGrammar,
        pat: &GPat,
        b: &mut EtBuilder,
        choices: &[u8],
        pos: &mut usize,
        depth: usize,
        cost: &mut u32,
    ) -> Option<NodeIdx> {
        match pat {
            GPat::NT(nt) => expand(g, *nt, b, choices, pos, depth, cost),
            GPat::T(key, kids) => {
                let mut children = Vec::new();
                for k in kids {
                    children.push(build_pat(g, k, b, choices, pos, depth, cost)?);
                }
                let kind = match key {
                    TermKey::Assign(_) | TermKey::Store(_) => return None, // only at root
                    TermKey::Op(o) => EtKind::Op(*o),
                    TermKey::MemRead(s) => EtKind::MemRead(*s),
                    TermKey::RegLeaf(s) => EtKind::RegLeaf(*s),
                    TermKey::RfLeaf(s) => EtKind::RfLeaf(*s, 0),
                    TermKey::PortLeaf(p) => EtKind::PortLeaf(*p),
                    TermKey::ConstVal(v) => EtKind::Const(*v),
                    TermKey::Imm { hi, lo } => {
                        // Any value that fits; pick 1 (or 0 for 0-bit).
                        let w = hi - lo + 1;
                        EtKind::Const(if w >= 1 { 1 } else { 0 })
                    }
                };
                Some(b.node(kind, children))
            }
        }
    }

    // Choose a start rule (register destinations only, to keep it simple).
    let start_rules: Vec<_> = g
        .rules_for(NonTermId::START)
        .filter(|r| matches!(r.origin, RuleOrigin::Start))
        .collect();
    if start_rules.is_empty() {
        return None;
    }
    let rule = start_rules[choices.first().copied().unwrap_or(0) as usize % start_rules.len()];
    let GPat::T(TermKey::Assign(key), kids) = &rule.rhs else {
        return None;
    };
    let GPat::NT(dest_nt) = &kids[0] else {
        return None;
    };
    let mut b = EtBuilder::new();
    let mut cost = rule.cost;
    let mut pos = 1usize;
    expand(g, *dest_nt, &mut b, choices, &mut pos, 3, &mut cost)?;
    let dest = match key {
        AssignKey::Reg(s) => EtDest::Reg(*s),
        AssignKey::RegFile(s) => EtDest::RegFile(*s, 0),
        AssignKey::Port(p) => EtDest::Port(*p),
    };
    Some((Et::assign(dest, b), cost))
}

proptest! {
    #[test]
    fn dp_cover_is_no_worse_than_random_derivation(choices in prop::collection::vec(any::<u8>(), 1..40)) {
        let (_, g) = pipeline(ACC_MACHINE);
        let sel = Selector::generate(g.clone());
        if let Some((et, upper)) = random_derivation(&g, &choices) {
            let cover = sel.select(&et).expect("tree from the grammar language must be coverable");
            prop_assert!(cover.cost <= upper, "DP {} > random {}", cover.cost, upper);
            // Structural well-formedness: every app derives its own nt.
            for app in &cover.apps {
                prop_assert_eq!(g.rule(app.rule).lhs, app.nt);
            }
            // Operands are produced before their consumers.
            let mut produced = std::collections::HashSet::new();
            for app in &cover.apps {
                for op in &app.operands {
                    prop_assert!(produced.contains(op), "operand {op:?} not yet produced");
                }
                produced.insert((app.nt, app.at));
            }
        }
    }
}
