//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment for this workspace has no crates.io access, so the
//! property tests link against this vendored subset instead of the real
//! crate.  It implements the API surface `tests/properties.rs` uses —
//! `Strategy` with `prop_map` / `prop_recursive`, ranges and tuples as
//! strategies, `prop_oneof!`, `prop::collection::vec`, the `proptest!`
//! test macro and the `prop_assert*` macros — over a deterministic
//! xorshift generator.  There is no shrinking: a failing case reports the
//! seed and case number instead of a minimised input.  Swap the
//! `[workspace.dependencies]` entry for the real crate to get shrinking.

use std::rc::Rc;

pub mod test_runner {
    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed with this message.
        Fail(String),
        /// The case asked to be rejected/skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Deterministic xorshift64* generator; the per-test seed is derived from
/// the test name so failures reproduce across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (test name).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of values of one type.  Unlike real proptest there is no
/// value tree: `new_value` directly produces a value, and no shrinking
/// happens on failure.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `depth` levels of `recurse` applied on
    /// top of `self` (the leaf strategy).  The `_desired_size` and
    /// `_expected_branch_size` parameters of the real API are accepted and
    /// ignored.
    fn prop_recursive<S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: impl Fn(BoxedStrategy<Self::Value>) -> S,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut strat: BoxedStrategy<Self::Value> = self.boxed();
        for _ in 0..depth {
            // Each level either stays at the previous depth or recurses
            // once more; mixing keeps generated sizes varied.
            let deeper = recurse(strat.clone()).boxed();
            strat = Union {
                options: vec![strat, deeper],
            }
            .boxed();
        }
        strat
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.new_value(rng)),
        }
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// See [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// String literals are regex strategies in proptest.  The shim supports
/// the subset the workspace tests use: `ATOM{lo,hi}` where `ATOM` is `.`
/// (any printable ASCII character) or a `[...]` class with ranges and
/// backslash escapes.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_simple_regex(self)
            .unwrap_or_else(|| panic!("proptest shim: unsupported regex strategy `{self}`"));
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..n)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `.{lo,hi}` / `[class]{lo,hi}` into (alphabet, lo, hi).
fn parse_simple_regex(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let (atom, rep) = if let Some(rest) = pat.strip_prefix('.') {
        let printable: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
        (printable, rest)
    } else if let Some(rest) = pat.strip_prefix('[') {
        let end = {
            let mut escaped = false;
            rest.char_indices()
                .find(|&(_, c)| {
                    let is_end = c == ']' && !escaped;
                    escaped = c == '\\' && !escaped;
                    is_end
                })?
                .0
        };
        let class: Vec<char> = {
            let mut out = Vec::new();
            let chars: Vec<char> = rest[..end].chars().collect();
            let mut i = 0;
            while i < chars.len() {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    out.push(chars[i + 1]);
                    i += 2;
                } else if i + 2 < chars.len() && chars[i + 1] == '-' {
                    let (a, b) = (chars[i], chars[i + 2]);
                    for c in a..=b {
                        out.push(c);
                    }
                    i += 3;
                } else {
                    out.push(chars[i]);
                    i += 1;
                }
            }
            out
        };
        (class, &rest[end + 1..])
    } else {
        return None;
    };
    let rep = rep.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = rep.split_once(',')?;
    Some((atom, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                lo + (rng.below(span + 1)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Generates `Vec`s with lengths drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A vector strategy over `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        let len = len.into();
        VecStrategy {
            element,
            min: len.min,
            max: len.max,
        }
    }

    /// Inclusive-min, exclusive-max length range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.min + rng.below((self.max - self.min) as u64) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    /// Mirror of real proptest's `pub use crate as prop` prelude alias, so
    /// `prop::collection::vec(...)` resolves.
    pub use crate as prop;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        Strategy,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "condition failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Uniform choice between strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests.  Each `fn name(pat in strategy, ...) { body }`
/// runs its body over generated inputs; attributes (including the user's
/// `#[test]`) are passed through unchanged, as in real proptest.
#[macro_export]
macro_rules! proptest {
    // Argument binder: normalises `x in strategy` and `x: Type` forms.
    (@bind $rng:ident $(,)?) => {};
    (@bind $rng:ident, $arg:ident in $strategy:expr $(,)?) => {
        let $arg = $crate::Strategy::new_value(&($strategy), $rng);
    };
    (@bind $rng:ident, $arg:ident in $strategy:expr, $($rest:tt)+) => {
        let $arg = $crate::Strategy::new_value(&($strategy), $rng);
        $crate::proptest!(@bind $rng, $($rest)+);
    };
    (@bind $rng:ident, $arg:ident: $ty:ty $(,)?) => {
        let $arg = $crate::Strategy::new_value(&$crate::any::<$ty>(), $rng);
    };
    (@bind $rng:ident, $arg:ident: $ty:ty, $($rest:tt)+) => {
        let $arg = $crate::Strategy::new_value(&$crate::any::<$ty>(), $rng);
        $crate::proptest!(@bind $rng, $($rest)+);
    };
    (@cfg ($config:expr) $($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let rng = &mut $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $crate::proptest!(@bind rng, $($args)*);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property `{}` failed at case {case}: {msg}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}
