//! RT template ADTs.

use crate::op::OpKind;
use record_bdd::Bdd;
use record_netlist::{Netlist, ProcPortId, StorageId};
use std::fmt;

/// Identifier of a template inside a [`TemplateBase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemplateId(pub u32);

/// A tree pattern: the right-hand side of an RT template.
///
/// Leaves are storages, ports, constants or instruction immediates; inner
/// nodes are operators or memory reads (whose address is itself a pattern,
/// which is how indirect and post-modify addressing surface).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pattern {
    /// Operator application.
    Op(OpKind, Vec<Pattern>),
    /// Value stored in a register.
    Reg(StorageId),
    /// Value stored in some cell of a register file (cell chosen by the
    /// compiler, encoded in an instruction field).
    RegFile(StorageId),
    /// Memory read; the boxed pattern computes the address.
    MemRead(StorageId, Box<Pattern>),
    /// Primary processor input port.
    Port(ProcPortId),
    /// Hardwired constant.
    Const(u64),
    /// Instruction field used as data (an immediate operand).
    Imm { hi: u16, lo: u16 },
}

impl Pattern {
    /// Number of nodes in the pattern tree.
    pub fn size(&self) -> usize {
        match self {
            Pattern::Op(_, args) => 1 + args.iter().map(Pattern::size).sum::<usize>(),
            Pattern::MemRead(_, addr) => 1 + addr.size(),
            _ => 1,
        }
    }

    /// Depth of the pattern tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Pattern::Op(_, args) => 1 + args.iter().map(Pattern::depth).max().unwrap_or(0),
            Pattern::MemRead(_, addr) => 1 + addr.depth(),
            _ => 1,
        }
    }

    /// All storages read by this pattern (with duplicates).
    pub fn reads(&self) -> Vec<StorageId> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut Vec<StorageId>) {
        match self {
            Pattern::Op(_, args) => args.iter().for_each(|a| a.collect_reads(out)),
            Pattern::Reg(s) | Pattern::RegFile(s) => out.push(*s),
            Pattern::MemRead(s, addr) => {
                out.push(*s);
                addr.collect_reads(out);
            }
            Pattern::Port(_) | Pattern::Const(_) | Pattern::Imm { .. } => {}
        }
    }

    /// Renders the pattern with storage/port names from `netlist`.
    pub fn display<'a>(&'a self, netlist: &'a Netlist) -> PatternDisplay<'a> {
        PatternDisplay {
            pattern: self,
            netlist,
        }
    }
}

/// Helper for [`Pattern::display`].
#[derive(Debug)]
pub struct PatternDisplay<'a> {
    pattern: &'a Pattern,
    netlist: &'a Netlist,
}

impl fmt::Display for PatternDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_pattern(self.pattern, self.netlist, f)
    }
}

fn fmt_pattern(p: &Pattern, n: &Netlist, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match p {
        Pattern::Op(op, args) if op.arity() == 2 => {
            write!(f, "(")?;
            fmt_pattern(&args[0], n, f)?;
            write!(f, " {} ", op.symbol())?;
            fmt_pattern(&args[1], n, f)?;
            write!(f, ")")
        }
        Pattern::Op(OpKind::Slice(hi, lo), args) => {
            fmt_pattern(&args[0], n, f)?;
            write!(f, "[{hi}:{lo}]")
        }
        Pattern::Op(op, args) => {
            write!(f, "{}(", op)?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                fmt_pattern(a, n, f)?;
            }
            write!(f, ")")
        }
        Pattern::Reg(s) => write!(f, "{}", n.storage(*s).name),
        Pattern::RegFile(s) => write!(f, "{}[*]", n.storage(*s).name),
        Pattern::MemRead(s, addr) => {
            write!(f, "{}[", n.storage(*s).name)?;
            fmt_pattern(addr, n, f)?;
            write!(f, "]")
        }
        Pattern::Port(p) => write!(f, "{}", n.proc_port(*p).name),
        Pattern::Const(v) => write!(f, "{v}"),
        Pattern::Imm { hi, lo } => write!(f, "#I[{hi}:{lo}]"),
    }
}

/// The destination of an RT template.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dest {
    /// A register.
    Reg(StorageId),
    /// Some cell of a register file (chosen by the compiler).
    RegFile(StorageId),
    /// A memory cell; the pattern computes the address.
    Mem(StorageId, Pattern),
    /// A primary processor output port.
    Port(ProcPortId),
}

impl Dest {
    /// The storage written, if the destination is a storage.
    pub fn storage(&self) -> Option<StorageId> {
        match self {
            Dest::Reg(s) | Dest::RegFile(s) | Dest::Mem(s, _) => Some(*s),
            Dest::Port(_) => None,
        }
    }

    /// Renders the destination with names from `netlist`.
    pub fn display<'a>(&'a self, netlist: &'a Netlist) -> DestDisplay<'a> {
        DestDisplay {
            dest: self,
            netlist,
        }
    }
}

/// Helper for [`Dest::display`].
#[derive(Debug)]
pub struct DestDisplay<'a> {
    dest: &'a Dest,
    netlist: &'a Netlist,
}

impl fmt::Display for DestDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dest {
            Dest::Reg(s) => write!(f, "{}", self.netlist.storage(*s).name),
            Dest::RegFile(s) => write!(f, "{}[*]", self.netlist.storage(*s).name),
            Dest::Mem(s, addr) => {
                write!(f, "{}[", self.netlist.storage(*s).name)?;
                fmt_pattern(addr, self.netlist, f)?;
                write!(f, "]")
            }
            Dest::Port(p) => write!(f, "{}", self.netlist.proc_port(*p).name),
        }
    }
}

/// Where a template came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemplateOrigin {
    /// Extracted from the netlist by ISE.
    Extracted,
    /// Commutative variant of another template.
    Commutative(TemplateId),
    /// Produced by a transformation-library rewrite of another template.
    Rewrite(TemplateId),
}

/// A runtime data predicate guarding a template: the transfer fires only
/// when `(eval(test) == value) == eq` holds in the executing machine.
///
/// Conditional PC updates (branches) surface as templates carrying one of
/// these; ordinary templates have none.  The test is a data pattern (e.g.
/// the accumulator), not an instruction-word condition — those live in
/// `cond`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CondPred {
    /// Data value the hardware compares.
    pub test: Pattern,
    /// Constant it is compared against.
    pub value: u64,
    /// `true`: fires when equal; `false`: fires when not equal.
    pub eq: bool,
}

/// One RT template: `dest := src` under execution condition `cond`.
#[derive(Debug, Clone, PartialEq)]
pub struct RtTemplate {
    pub id: TemplateId,
    pub dest: Dest,
    pub src: Pattern,
    /// Execution condition over instruction-word and mode-register bits.
    pub cond: Bdd,
    pub origin: TemplateOrigin,
    /// Runtime data predicate; `Some` only for conditional transfers
    /// (conditional branches on PC-carrying machines).
    pub pred: Option<CondPred>,
}

impl RtTemplate {
    /// Renders `dest := src` with names from `netlist`; predicated
    /// templates show their firing condition.
    pub fn render(&self, netlist: &Netlist) -> String {
        let base = format!(
            "{} := {}",
            self.dest.display(netlist),
            self.src.display(netlist)
        );
        match &self.pred {
            None => base,
            Some(p) => format!(
                "{base} when {} {} {}",
                p.test.display(netlist),
                if p.eq { "==" } else { "!=" },
                p.value
            ),
        }
    }
}

/// The (extended) RT template base of a target processor.
#[derive(Debug, Clone, Default)]
pub struct TemplateBase {
    templates: Vec<RtTemplate>,
}

impl TemplateBase {
    /// An empty base.
    pub fn new() -> Self {
        TemplateBase::default()
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Is the base empty?
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// All templates.
    pub fn templates(&self) -> &[RtTemplate] {
        &self.templates
    }

    /// A template by id.
    pub fn template(&self, id: TemplateId) -> &RtTemplate {
        &self.templates[id.0 as usize]
    }

    /// Adds a template, assigning its id.  Returns the id.
    pub fn push(
        &mut self,
        dest: Dest,
        src: Pattern,
        cond: Bdd,
        origin: TemplateOrigin,
    ) -> TemplateId {
        self.push_pred(dest, src, cond, origin, None)
    }

    /// Adds a template carrying a runtime data predicate (a conditional
    /// branch shape).  Returns the id.
    pub fn push_pred(
        &mut self,
        dest: Dest,
        src: Pattern,
        cond: Bdd,
        origin: TemplateOrigin,
        pred: Option<CondPred>,
    ) -> TemplateId {
        let id = TemplateId(self.templates.len() as u32);
        self.templates.push(RtTemplate {
            id,
            dest,
            src,
            cond,
            origin,
            pred,
        });
        id
    }

    /// Widens the execution condition of `id` by OR-ing in `cond`.
    ///
    /// Used by ISE when several data-transfer routes produce the same
    /// `dest := src` shape under different encodings: the merged template is
    /// executable under either condition.
    pub fn merge_cond(&mut self, id: TemplateId, cond: Bdd, manager: &mut record_bdd::BddManager) {
        let t = &mut self.templates[id.0 as usize];
        t.cond = manager.or(t.cond, cond);
    }

    /// Looks up an unpredicated template with exactly this `dest`/`src`
    /// shape.
    pub fn find(&self, dest: &Dest, src: &Pattern) -> Option<TemplateId> {
        self.find_pred(dest, src, None)
    }

    /// Looks up a template with exactly this `dest`/`src`/`pred` shape.
    pub fn find_pred(
        &self,
        dest: &Dest,
        src: &Pattern,
        pred: Option<&CondPred>,
    ) -> Option<TemplateId> {
        self.templates
            .iter()
            .find(|t| &t.dest == dest && &t.src == src && t.pred.as_ref() == pred)
            .map(|t| t.id)
    }

    /// Iterates over templates writing storage `s`.
    pub fn writing(&self, s: StorageId) -> impl Iterator<Item = &RtTemplate> {
        self.templates
            .iter()
            .filter(move |t| t.dest.storage() == Some(s))
    }
}

impl FromIterator<RtTemplate> for TemplateBase {
    fn from_iter<I: IntoIterator<Item = RtTemplate>>(iter: I) -> Self {
        let mut base = TemplateBase::new();
        for t in iter {
            base.push_pred(t.dest, t.src, t.cond, t.origin, t.pred);
        }
        base
    }
}
