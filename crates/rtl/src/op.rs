//! The operator vocabulary shared by HDL data paths and source programs.

use record_hdl::{BinOp, UnOp};
use std::fmt;

/// A hardware/IR operator.
///
/// `record` compiles fixed-point DSP code: all values are unsigned bit
/// vectors of some width with two's-complement interpretation where order
/// matters.  [`OpKind::eval`] defines the single semantics both the RT-level
/// simulator and the mini-C interpreter use, so codegen correctness tests
/// can compare the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Bitwise complement (unary).
    Not,
    /// Two's complement negation (unary).
    Neg,
    Eq,
    Ne,
    /// Signed less-than.
    Lt,
    Le,
    Gt,
    Ge,
    /// Bit-field extraction (unary), parameters are bit positions.
    Slice(u16, u16),
}

impl OpKind {
    /// Number of operands.
    pub fn arity(self) -> usize {
        match self {
            OpKind::Not | OpKind::Neg | OpKind::Slice(..) => 1,
            _ => 2,
        }
    }

    /// Is `op(a, b) == op(b, a)` for all inputs?
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            OpKind::Add
                | OpKind::Mul
                | OpKind::And
                | OpKind::Or
                | OpKind::Xor
                | OpKind::Eq
                | OpKind::Ne
        )
    }

    /// Converts an HDL binary operator.
    pub fn from_bin(op: BinOp) -> OpKind {
        match op {
            BinOp::Add => OpKind::Add,
            BinOp::Sub => OpKind::Sub,
            BinOp::Mul => OpKind::Mul,
            BinOp::Div => OpKind::Div,
            BinOp::Rem => OpKind::Rem,
            BinOp::And => OpKind::And,
            BinOp::Or => OpKind::Or,
            BinOp::Xor => OpKind::Xor,
            BinOp::Shl => OpKind::Shl,
            BinOp::Shr => OpKind::Shr,
            BinOp::Eq => OpKind::Eq,
            BinOp::Ne => OpKind::Ne,
            BinOp::Lt => OpKind::Lt,
            BinOp::Le => OpKind::Le,
            BinOp::Gt => OpKind::Gt,
            BinOp::Ge => OpKind::Ge,
        }
    }

    /// Converts an HDL unary operator.
    ///
    /// # Panics
    ///
    /// Panics on [`UnOp::LogicNot`], which only occurs in guards and is
    /// eliminated during elaboration.
    pub fn from_un(op: UnOp) -> OpKind {
        match op {
            UnOp::Not => OpKind::Not,
            UnOp::Neg => OpKind::Neg,
            UnOp::LogicNot => panic!("LogicNot has no data-path counterpart"),
        }
    }

    /// Evaluates the operator on operands already masked to `width` bits,
    /// returning a result masked to `width` bits.
    ///
    /// Division and remainder by zero return 0 (hardware convention chosen
    /// for this model; real parts saturate or trap, which no kernel relies
    /// on).  Comparisons return 0/1 and interpret operands as signed
    /// two's-complement numbers of `width` bits.
    pub fn eval(self, args: &[u64], width: u16) -> u64 {
        let mask = mask(width);
        let a = args[0] & mask;
        let b = *args.get(1).unwrap_or(&0) & mask;
        let signed = |x: u64| sign_extend(x, width);
        let r = match self {
            OpKind::Add => a.wrapping_add(b),
            OpKind::Sub => a.wrapping_sub(b),
            OpKind::Mul => a.wrapping_mul(b),
            OpKind::Div => a.checked_div(b).unwrap_or(0),
            OpKind::Rem => {
                if b == 0 {
                    0
                } else {
                    a % b
                }
            }
            OpKind::And => a & b,
            OpKind::Or => a | b,
            OpKind::Xor => a ^ b,
            OpKind::Shl => {
                if b >= width as u64 {
                    0
                } else {
                    a << b
                }
            }
            OpKind::Shr => {
                if b >= width as u64 {
                    0
                } else {
                    a >> b
                }
            }
            OpKind::Not => !a,
            OpKind::Neg => a.wrapping_neg(),
            OpKind::Eq => u64::from(a == b),
            OpKind::Ne => u64::from(a != b),
            OpKind::Lt => u64::from(signed(a) < signed(b)),
            OpKind::Le => u64::from(signed(a) <= signed(b)),
            OpKind::Gt => u64::from(signed(a) > signed(b)),
            OpKind::Ge => u64::from(signed(a) >= signed(b)),
            OpKind::Slice(hi, lo) => {
                let w = hi - lo + 1;
                (a >> lo) & crate::op::mask(w)
            }
        };
        r & mask
    }

    /// A short mnemonic used in grammar terminal names and listings.
    ///
    /// Allocation-free: `Slice` renders as a bare `"slice"` here; use the
    /// [`fmt::Display`] impl when the bit parameters must be part of the
    /// name (e.g. to keep distinct slices distinguishable).
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::Rem => "rem",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::Shl => "shl",
            OpKind::Shr => "shr",
            OpKind::Not => "not",
            OpKind::Neg => "neg",
            OpKind::Eq => "eq",
            OpKind::Ne => "ne",
            OpKind::Lt => "lt",
            OpKind::Le => "le",
            OpKind::Gt => "gt",
            OpKind::Ge => "ge",
            OpKind::Slice(..) => "slice",
        }
    }

    /// The infix symbol used when pretty-printing patterns.
    pub fn symbol(self) -> &'static str {
        match self {
            OpKind::Add => "+",
            OpKind::Sub => "-",
            OpKind::Mul => "*",
            OpKind::Div => "/",
            OpKind::Rem => "%",
            OpKind::And => "&",
            OpKind::Or => "|",
            OpKind::Xor => "^",
            OpKind::Shl => "<<",
            OpKind::Shr => ">>",
            OpKind::Not => "~",
            OpKind::Neg => "-",
            OpKind::Eq => "==",
            OpKind::Ne => "!=",
            OpKind::Lt => "<",
            OpKind::Le => "<=",
            OpKind::Gt => ">",
            OpKind::Ge => ">=",
            OpKind::Slice(..) => "[:]",
        }
    }
}

impl fmt::Display for OpKind {
    /// The full name: like [`OpKind::mnemonic`], but `Slice` carries its
    /// bit parameters (`slice_7_0`) so distinct slices render distinctly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Slice(hi, lo) => write!(f, "slice_{hi}_{lo}"),
            other => write!(f, "{}", other.mnemonic()),
        }
    }
}

/// All-ones mask of `width` bits.
pub(crate) fn mask(width: u16) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Sign-extends the `width`-bit value `x` into an `i64`.
pub(crate) fn sign_extend(x: u64, width: u16) -> i64 {
    if width == 0 || width >= 64 {
        return x as i64;
    }
    let shift = 64 - width as u32;
    ((x << shift) as i64) >> shift
}
