use crate::*;
use proptest::prelude::*;
use record_bdd::Bdd;
use record_netlist::StorageId;

fn reg(i: u32) -> Pattern {
    Pattern::Reg(StorageId(i))
}

#[test]
fn op_arity_and_commutativity() {
    assert_eq!(OpKind::Add.arity(), 2);
    assert_eq!(OpKind::Not.arity(), 1);
    assert_eq!(OpKind::Slice(7, 0).arity(), 1);
    assert!(OpKind::Add.is_commutative());
    assert!(OpKind::Mul.is_commutative());
    assert!(!OpKind::Sub.is_commutative());
    assert!(!OpKind::Shl.is_commutative());
}

#[test]
fn op_eval_wraps_to_width() {
    assert_eq!(OpKind::Add.eval(&[0xFFFF, 1], 16), 0);
    assert_eq!(OpKind::Sub.eval(&[0, 1], 16), 0xFFFF);
    assert_eq!(OpKind::Mul.eval(&[0x8000, 2], 16), 0);
    assert_eq!(OpKind::Neg.eval(&[1], 8), 0xFF);
    assert_eq!(OpKind::Not.eval(&[0], 4), 0xF);
}

#[test]
fn op_eval_signed_comparisons() {
    // 0xFFFF is -1 in 16-bit two's complement.
    assert_eq!(OpKind::Lt.eval(&[0xFFFF, 0], 16), 1);
    assert_eq!(OpKind::Gt.eval(&[0x7FFF, 0xFFFF], 16), 1);
    assert_eq!(OpKind::Ge.eval(&[5, 5], 16), 1);
}

#[test]
fn op_eval_division_by_zero_is_zero() {
    assert_eq!(OpKind::Div.eval(&[42, 0], 16), 0);
    assert_eq!(OpKind::Rem.eval(&[42, 0], 16), 0);
}

#[test]
fn op_eval_shift_saturation() {
    assert_eq!(OpKind::Shl.eval(&[1, 20], 16), 0);
    assert_eq!(OpKind::Shr.eval(&[0x8000, 20], 16), 0);
}

#[test]
fn op_eval_slice() {
    assert_eq!(OpKind::Slice(7, 4).eval(&[0xAB], 8), 0xA);
    assert_eq!(OpKind::Slice(3, 0).eval(&[0xAB], 8), 0xB);
}

#[test]
fn pattern_size_and_depth() {
    let p = Pattern::Op(
        OpKind::Add,
        vec![
            reg(0),
            Pattern::Op(OpKind::Mul, vec![reg(1), Pattern::Const(2)]),
        ],
    );
    assert_eq!(p.size(), 5);
    assert_eq!(p.depth(), 3);
    assert_eq!(p.reads(), vec![StorageId(0), StorageId(1)]);
}

#[test]
fn memread_counts_address_reads() {
    let p = Pattern::MemRead(StorageId(2), Box::new(reg(3)));
    assert_eq!(p.reads(), vec![StorageId(2), StorageId(3)]);
    assert_eq!(p.size(), 2);
}

#[test]
fn template_base_push_find() {
    let mut base = TemplateBase::new();
    let d = Dest::Reg(StorageId(0));
    let s = Pattern::Op(OpKind::Add, vec![reg(0), reg(1)]);
    let id = base.push(d.clone(), s.clone(), Bdd::TRUE, TemplateOrigin::Extracted);
    assert_eq!(base.len(), 1);
    assert_eq!(base.find(&d, &s), Some(id));
    assert_eq!(base.template(id).render_smoke(), ());
    assert_eq!(base.writing(StorageId(0)).count(), 1);
    assert_eq!(base.writing(StorageId(1)).count(), 0);
}

impl RtTemplate {
    /// Compile-time smoke helper so tests touch the public fields.
    fn render_smoke(&self) {
        let _ = (&self.dest, &self.src, self.cond, self.origin);
    }
}

#[test]
fn commutative_extension_adds_swapped_mac() {
    // acc := acc + (t * mem)  =>  variants with + and * swapped.
    let mac = Pattern::Op(
        OpKind::Add,
        vec![
            reg(0),
            Pattern::Op(
                OpKind::Mul,
                vec![
                    reg(1),
                    Pattern::MemRead(StorageId(2), Box::new(Pattern::Imm { hi: 7, lo: 0 })),
                ],
            ),
        ],
    );
    let mut base = TemplateBase::new();
    base.push(
        Dest::Reg(StorageId(0)),
        mac,
        Bdd::TRUE,
        TemplateOrigin::Extracted,
    );
    let stats = extend(
        &mut base,
        &ExtensionOptions {
            commutativity: true,
            max_variants_per_template: 16,
            library: TransformLibrary::empty(),
        },
    );
    // Swaps: (+ args), (* args), both => 3 new variants.
    assert_eq!(stats.commutative_added, 3);
    assert_eq!(base.len(), 4);
    // All variants share the original's execution condition.
    assert!(base.templates().iter().all(|t| t.cond == Bdd::TRUE));
}

#[test]
fn extension_is_idempotent() {
    let mut base = TemplateBase::new();
    base.push(
        Dest::Reg(StorageId(0)),
        Pattern::Op(OpKind::Add, vec![reg(0), reg(1)]),
        Bdd::TRUE,
        TemplateOrigin::Extracted,
    );
    let opts = ExtensionOptions::default();
    let s1 = extend(&mut base, &opts);
    let len1 = base.len();
    let s2 = extend(&mut base, &opts);
    assert_eq!(base.len(), len1);
    assert_eq!(s2.commutative_added, 0);
    assert_eq!(s2.rewrite_added, 0);
    assert!(s1.commutative_added > 0);
}

#[test]
fn no_commutativity_option() {
    let mut base = TemplateBase::new();
    base.push(
        Dest::Reg(StorageId(0)),
        Pattern::Op(OpKind::Add, vec![reg(0), reg(1)]),
        Bdd::TRUE,
        TemplateOrigin::Extracted,
    );
    let stats = extend(&mut base, &ExtensionOptions::none());
    assert_eq!(stats.commutative_added, 0);
    assert_eq!(base.len(), 1);
}

#[test]
fn standard_library_generates_mul_from_shl() {
    let mut base = TemplateBase::new();
    base.push(
        Dest::Reg(StorageId(0)),
        Pattern::Op(OpKind::Shl, vec![reg(0), Pattern::Const(1)]),
        Bdd::TRUE,
        TemplateOrigin::Extracted,
    );
    let stats = extend(&mut base, &ExtensionOptions::default());
    assert!(stats.rewrite_added >= 1);
    assert!(base
        .find(
            &Dest::Reg(StorageId(0)),
            &Pattern::Op(OpKind::Mul, vec![reg(0), Pattern::Const(2)])
        )
        .is_some());
}

#[test]
fn variant_cap_limits_blowup() {
    // A 5-level sum-of-products would have 2^5 orderings; cap at 8.
    let mut p = reg(0);
    for i in 1..6 {
        p = Pattern::Op(OpKind::Add, vec![p, reg(i)]);
    }
    let mut base = TemplateBase::new();
    base.push(
        Dest::Reg(StorageId(9)),
        p,
        Bdd::TRUE,
        TemplateOrigin::Extracted,
    );
    let stats = extend(
        &mut base,
        &ExtensionOptions {
            commutativity: true,
            max_variants_per_template: 8,
            library: TransformLibrary::empty(),
        },
    );
    assert!(stats.commutative_added <= 8);
}

// ------------------------ property tests ----------------------------------

fn op_strategy() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        Just(OpKind::Add),
        Just(OpKind::Sub),
        Just(OpKind::Mul),
        Just(OpKind::And),
        Just(OpKind::Or),
        Just(OpKind::Xor),
        Just(OpKind::Eq),
        Just(OpKind::Ne),
    ]
}

proptest! {
    /// Commutative ops really commute under eval, at every width.
    #[test]
    fn commutative_ops_commute(op in op_strategy(), a: u64, b: u64, w in 1u16..32) {
        if op.is_commutative() {
            let m = if w >= 64 { u64::MAX } else { (1 << w) - 1 };
            prop_assert_eq!(op.eval(&[a & m, b & m], w), op.eval(&[b & m, a & m], w));
        }
    }

    /// eval result always fits the width.
    #[test]
    fn eval_masks_result(op in op_strategy(), a: u64, b: u64, w in 1u16..32) {
        let r = op.eval(&[a, b], w);
        let m = (1u64 << w) - 1;
        prop_assert_eq!(r & !m, 0);
    }

    /// Commutative variants of a pattern all evaluate identically when the
    /// pattern is interpreted over a fixed register valuation.
    #[test]
    fn commutative_variants_preserve_semantics(
        vals in prop::collection::vec(0u64..0xFFFF, 4),
        seed in 0u8..4,
    ) {
        // Build (r0 op1 (r1 op2 r2)) with commutative ops chosen by seed.
        let ops = [OpKind::Add, OpKind::Mul, OpKind::And, OpKind::Xor];
        let op1 = ops[(seed % 4) as usize];
        let op2 = ops[((seed / 2) % 4) as usize];
        let p = Pattern::Op(op1, vec![
            reg(0),
            Pattern::Op(op2, vec![reg(1), reg(2)]),
        ]);
        fn eval_pattern(p: &Pattern, vals: &[u64]) -> u64 {
            match p {
                Pattern::Op(op, args) => {
                    let a: Vec<u64> = args.iter().map(|x| eval_pattern(x, vals)).collect();
                    op.eval(&a, 16)
                }
                Pattern::Reg(s) => vals[s.0 as usize],
                _ => 0,
            }
        }
        let want = eval_pattern(&p, &vals);
        let mut base = TemplateBase::new();
        base.push(Dest::Reg(StorageId(3)), p, Bdd::TRUE, TemplateOrigin::Extracted);
        extend(&mut base, &ExtensionOptions {
            commutativity: true,
            max_variants_per_template: 16,
            library: TransformLibrary::empty(),
        });
        for t in base.templates() {
            prop_assert_eq!(eval_pattern(&t.src, &vals), want);
        }
    }
}
