//! Register-transfer (RT) templates: the behavioural processor view.
//!
//! An RT template represents one primitive processor operation executable in
//! a single machine cycle — "`dest := exp`" together with an *execution
//! condition* over instruction-word and mode-register bits (paper §2).  The
//! template base extracted from the netlist is the tree-based processor
//! model from which the code-selector grammar is built.
//!
//! This crate provides:
//!
//! * [`OpKind`] — the shared operator vocabulary of HDL data paths and
//!   source expressions, with evaluation semantics used by both the RT-level
//!   simulator and the mini-C interpreter,
//! * [`Pattern`], [`Dest`], [`RtTemplate`], [`TemplateBase`] — the template
//!   ADTs,
//! * [`extend`] — the algebraic extension phase (paper §3): commutative
//!   variants plus application-specific rewrite rules from a
//!   [`TransformLibrary`].
//!
//! # Example
//!
//! ```
//! use record_rtl::{OpKind, Pattern};
//! use record_netlist::StorageId;
//!
//! // acc + mem-cell, as a tree pattern
//! let p = Pattern::Op(
//!     OpKind::Add,
//!     vec![
//!         Pattern::Reg(StorageId(0)),
//!         Pattern::MemRead(StorageId(1), Box::new(Pattern::Imm { hi: 7, lo: 0 })),
//!     ],
//! );
//! assert_eq!(p.size(), 4);
//! ```

mod extend;
mod op;
mod template;

pub use extend::{
    extend, ExtensionOptions, ExtensionStats, RulePat, TransformLibrary, TransformRule,
};
pub use op::OpKind;
pub use template::{CondPred, Dest, Pattern, RtTemplate, TemplateBase, TemplateId, TemplateOrigin};

#[cfg(test)]
mod tests;
