//! Algebraic extension of the RT template base (paper §3).
//!
//! The template base delivered by instruction-set extraction only contains
//! what the hardware literally computes.  To widen the search space of code
//! selection, two families of templates are added:
//!
//! 1. **Commutative variants** — for every template containing a commutative
//!    operator, variants with swapped arguments.  This prevents code-quality
//!    loss from badly-structured expression trees (important for the
//!    sum-of-products shapes that dominate DSP code).
//! 2. **Rewrite-library variants** — application-specific algebraic rules
//!    (e.g. `x * 2^k` computable by `x << k`) produce templates that match
//!    source shapes the data path supports only indirectly.

use crate::op::OpKind;
use crate::template::{Pattern, RtTemplate, TemplateBase, TemplateOrigin};
use std::collections::BTreeMap;

/// Options controlling [`extend`].
#[derive(Debug, Clone)]
pub struct ExtensionOptions {
    /// Add swapped-argument variants for commutative operators.
    pub commutativity: bool,
    /// Upper bound on variants generated from a single template (guards
    /// against exponential blow-up on deep sum-of-product patterns).
    pub max_variants_per_template: usize,
    /// Rewrite rules to apply.
    pub library: TransformLibrary,
}

impl Default for ExtensionOptions {
    fn default() -> Self {
        ExtensionOptions {
            commutativity: true,
            max_variants_per_template: 16,
            library: TransformLibrary::standard(),
        }
    }
}

impl ExtensionOptions {
    /// No extension at all (ablation baseline).
    pub fn none() -> Self {
        ExtensionOptions {
            commutativity: false,
            max_variants_per_template: 16,
            library: TransformLibrary::empty(),
        }
    }
}

/// Statistics reported by [`extend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtensionStats {
    /// Commutative variants added.
    pub commutative_added: usize,
    /// Rewrite-rule variants added.
    pub rewrite_added: usize,
}

/// A pattern with metavariables, used on both sides of a rewrite rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RulePat {
    /// Metavariable: matches any subpattern; equal indices must bind equal
    /// subpatterns.
    Var(u8),
    /// Matches exactly this constant.
    Const(u64),
    /// Operator node.
    Op(OpKind, Vec<RulePat>),
}

/// One transformation rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformRule {
    /// `machine` ⇒ also usable for `source` (both sides share
    /// metavariables).  Example: machine `x + (~y + 1)`, source `x - y`.
    Linear {
        name: String,
        machine: RulePat,
        source: RulePat,
    },
    /// A shift-left by constant also computes multiplication by a power of
    /// two: `x << k` ⇒ `x * 2^k`.  Needs a computed constant, hence not
    /// expressible as a `Linear` rule.
    ShlToMulPow2,
    /// `0 - x` also computes unary negation.
    SubZeroToNeg,
}

impl TransformRule {
    /// Display name for diagnostics and docs.
    pub fn name(&self) -> &str {
        match self {
            TransformRule::Linear { name, .. } => name,
            TransformRule::ShlToMulPow2 => "shl-to-mul-pow2",
            TransformRule::SubZeroToNeg => "sub-zero-to-neg",
        }
    }
}

/// An external transformation library (paper §3: "application-specific
/// rewrite rules retrieved from an external transformation library").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransformLibrary {
    rules: Vec<TransformRule>,
}

impl TransformLibrary {
    /// No rules.
    pub fn empty() -> Self {
        TransformLibrary::default()
    }

    /// The standard library shipped with `record`: power-of-two strength
    /// "de-reduction", negation via subtraction, and subtraction via
    /// complement-add for machines without a subtracter.
    pub fn standard() -> Self {
        TransformLibrary {
            rules: vec![
                TransformRule::ShlToMulPow2,
                TransformRule::SubZeroToNeg,
                TransformRule::Linear {
                    name: "add-complement-to-sub".into(),
                    machine: RulePat::Op(
                        OpKind::Add,
                        vec![
                            RulePat::Var(0),
                            RulePat::Op(
                                OpKind::Add,
                                vec![
                                    RulePat::Op(OpKind::Not, vec![RulePat::Var(1)]),
                                    RulePat::Const(1),
                                ],
                            ),
                        ],
                    ),
                    source: RulePat::Op(OpKind::Sub, vec![RulePat::Var(0), RulePat::Var(1)]),
                },
            ],
        }
    }

    /// Adds a rule.
    pub fn push(&mut self, rule: TransformRule) {
        self.rules.push(rule);
    }

    /// The rules in application order.
    pub fn rules(&self) -> &[TransformRule] {
        &self.rules
    }
}

impl FromIterator<TransformRule> for TransformLibrary {
    fn from_iter<I: IntoIterator<Item = TransformRule>>(iter: I) -> Self {
        TransformLibrary {
            rules: iter.into_iter().collect(),
        }
    }
}

/// Extends `base` in place; returns statistics.
///
/// Every added template is deduplicated against the whole base by
/// (`dest`, `src`) shape, so repeated extension is idempotent.
pub fn extend(base: &mut TemplateBase, opts: &ExtensionOptions) -> ExtensionStats {
    let mut stats = ExtensionStats::default();
    let original: Vec<RtTemplate> = base.templates().to_vec();

    if opts.commutativity {
        for t in &original {
            // Predicated templates (conditional branches) are control
            // transfers, not algebraic shapes; extension does not apply.
            if t.pred.is_some() {
                continue;
            }
            for variant in commutative_variants(&t.src, opts.max_variants_per_template) {
                if variant == t.src {
                    continue;
                }
                if base.find(&t.dest, &variant).is_none() {
                    base.push(
                        t.dest.clone(),
                        variant,
                        t.cond,
                        TemplateOrigin::Commutative(t.id),
                    );
                    stats.commutative_added += 1;
                }
            }
        }
    }

    // Rewrites run on the commutatively-extended base so that e.g. a swapped
    // MAC pattern also gets its power-of-two variant.
    let after_comm: Vec<RtTemplate> = base.templates().to_vec();
    for rule in opts.library.rules() {
        for t in &after_comm {
            if t.pred.is_some() {
                continue;
            }
            for rewritten in apply_rule(rule, &t.src) {
                if base.find(&t.dest, &rewritten).is_none() {
                    base.push(
                        t.dest.clone(),
                        rewritten,
                        t.cond,
                        TemplateOrigin::Rewrite(t.id),
                    );
                    stats.rewrite_added += 1;
                }
            }
        }
    }
    stats
}

/// All argument-order variants of `p` obtainable by swapping commutative
/// operator arguments, including `p` itself, capped at `cap` results.
fn commutative_variants(p: &Pattern, cap: usize) -> Vec<Pattern> {
    fn rec(p: &Pattern, cap: usize) -> Vec<Pattern> {
        match p {
            Pattern::Op(op, args) if op.arity() == 2 => {
                let lhs = rec(&args[0], cap);
                let rhs = rec(&args[1], cap);
                let mut out = Vec::new();
                'outer: for l in &lhs {
                    for r in &rhs {
                        out.push(Pattern::Op(*op, vec![l.clone(), r.clone()]));
                        if op.is_commutative() {
                            out.push(Pattern::Op(*op, vec![r.clone(), l.clone()]));
                        }
                        if out.len() >= cap {
                            break 'outer;
                        }
                    }
                }
                out.dedup();
                out
            }
            Pattern::Op(op, args) => {
                let inner = rec(&args[0], cap);
                inner
                    .into_iter()
                    .map(|a| Pattern::Op(*op, vec![a]))
                    .collect()
            }
            Pattern::MemRead(s, addr) => rec(addr, cap)
                .into_iter()
                .map(|a| Pattern::MemRead(*s, Box::new(a)))
                .collect(),
            leaf => vec![leaf.clone()],
        }
    }
    let mut v = rec(p, cap);
    v.sort();
    v.dedup();
    v.truncate(cap);
    v
}

type Bindings = BTreeMap<u8, Pattern>;

/// Matches `rule` against `p` (at the root), binding metavariables.
fn match_rule(rule: &RulePat, p: &Pattern, bind: &mut Bindings) -> bool {
    match (rule, p) {
        (RulePat::Var(v), _) => match bind.get(v) {
            Some(existing) => existing == p,
            None => {
                bind.insert(*v, p.clone());
                true
            }
        },
        (RulePat::Const(c), Pattern::Const(pc)) => c == pc,
        (RulePat::Op(op, rargs), Pattern::Op(pop, pargs)) => {
            op == pop
                && rargs.len() == pargs.len()
                && rargs.iter().zip(pargs).all(|(r, q)| match_rule(r, q, bind))
        }
        _ => false,
    }
}

/// Instantiates a rule side under `bind`.
fn instantiate(rule: &RulePat, bind: &Bindings) -> Pattern {
    match rule {
        RulePat::Var(v) => bind
            .get(v)
            .cloned()
            .expect("rule sides share metavariables"),
        RulePat::Const(c) => Pattern::Const(*c),
        RulePat::Op(op, args) => {
            Pattern::Op(*op, args.iter().map(|a| instantiate(a, bind)).collect())
        }
    }
}

/// Applies `rule` at every position of `p`, returning each rewritten whole
/// pattern (one result per matching position).
fn apply_rule(rule: &TransformRule, p: &Pattern) -> Vec<Pattern> {
    let mut out = Vec::new();
    rewrite_positions(rule, p, &mut |new_whole| out.push(new_whole));
    out
}

/// Walks `p`; wherever the rule matches a node, yields a copy of `p` with
/// that node replaced.
fn rewrite_positions(rule: &TransformRule, p: &Pattern, emit: &mut dyn FnMut(Pattern)) {
    // Try at root.
    if let Some(replacement) = rewrite_at(rule, p) {
        emit(replacement);
    }
    // Recurse, rebuilding the spine.
    match p {
        Pattern::Op(op, args) => {
            for (i, a) in args.iter().enumerate() {
                rewrite_positions(rule, a, &mut |new_child| {
                    let mut new_args = args.clone();
                    new_args[i] = new_child;
                    emit(Pattern::Op(*op, new_args));
                });
            }
        }
        Pattern::MemRead(s, addr) => {
            rewrite_positions(rule, addr, &mut |new_addr| {
                emit(Pattern::MemRead(*s, Box::new(new_addr)));
            });
        }
        _ => {}
    }
}

/// Applies `rule` at exactly this node, if it matches.
fn rewrite_at(rule: &TransformRule, p: &Pattern) -> Option<Pattern> {
    match rule {
        TransformRule::Linear {
            machine, source, ..
        } => {
            let mut bind = Bindings::new();
            if match_rule(machine, p, &mut bind) {
                Some(instantiate(source, &bind))
            } else {
                None
            }
        }
        TransformRule::ShlToMulPow2 => {
            if let Pattern::Op(OpKind::Shl, args) = p {
                if let Pattern::Const(k) = args[1] {
                    if k < 63 {
                        return Some(Pattern::Op(
                            OpKind::Mul,
                            vec![args[0].clone(), Pattern::Const(1u64 << k)],
                        ));
                    }
                }
                // `x << #imm` also multiplies by a power of two, but the
                // factor is instruction-dependent; only constant shifts are
                // rewritten.
            }
            None
        }
        TransformRule::SubZeroToNeg => {
            if let Pattern::Op(OpKind::Sub, args) = p {
                if args[0] == Pattern::Const(0) {
                    return Some(Pattern::Op(OpKind::Neg, vec![args[1].clone()]));
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod rule_tests {
    use super::*;
    use record_netlist::StorageId;

    fn reg(i: u32) -> Pattern {
        Pattern::Reg(StorageId(i))
    }

    #[test]
    fn shl_const_rewrites_to_mul() {
        let p = Pattern::Op(OpKind::Shl, vec![reg(0), Pattern::Const(3)]);
        let out = apply_rule(&TransformRule::ShlToMulPow2, &p);
        assert_eq!(
            out,
            vec![Pattern::Op(OpKind::Mul, vec![reg(0), Pattern::Const(8)])]
        );
    }

    #[test]
    fn shl_imm_not_rewritten() {
        let p = Pattern::Op(OpKind::Shl, vec![reg(0), Pattern::Imm { hi: 3, lo: 0 }]);
        assert!(apply_rule(&TransformRule::ShlToMulPow2, &p).is_empty());
    }

    #[test]
    fn sub_zero_rewrites_to_neg() {
        let p = Pattern::Op(OpKind::Sub, vec![Pattern::Const(0), reg(1)]);
        let out = apply_rule(&TransformRule::SubZeroToNeg, &p);
        assert_eq!(out, vec![Pattern::Op(OpKind::Neg, vec![reg(1)])]);
    }

    #[test]
    fn linear_rule_with_shared_metavars() {
        // machine: x + (~y + 1)  =>  source: x - y
        let lib = TransformLibrary::standard();
        let rule = &lib.rules()[2];
        let p = Pattern::Op(
            OpKind::Add,
            vec![
                reg(0),
                Pattern::Op(
                    OpKind::Add,
                    vec![Pattern::Op(OpKind::Not, vec![reg(1)]), Pattern::Const(1)],
                ),
            ],
        );
        let out = apply_rule(rule, &p);
        assert_eq!(out, vec![Pattern::Op(OpKind::Sub, vec![reg(0), reg(1)])]);
    }

    #[test]
    fn rewrite_applies_at_inner_positions() {
        // (r0 + (r1 << 2)) gets an inner mul variant.
        let p = Pattern::Op(
            OpKind::Add,
            vec![
                reg(0),
                Pattern::Op(OpKind::Shl, vec![reg(1), Pattern::Const(2)]),
            ],
        );
        let out = apply_rule(&TransformRule::ShlToMulPow2, &p);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0],
            Pattern::Op(
                OpKind::Add,
                vec![
                    reg(0),
                    Pattern::Op(OpKind::Mul, vec![reg(1), Pattern::Const(4)])
                ]
            )
        );
    }
}
