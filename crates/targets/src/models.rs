//! The six HDL processor models of Table 3.

/// A target processor model.
#[derive(Debug, Clone, Copy)]
pub struct TargetModel {
    /// Display name (matches the paper's Table 3 rows).
    pub name: &'static str,
    /// HDL source.
    pub hdl: &'static str,
    /// Data word width in bits.
    pub data_width: u16,
    /// Instance name of the data memory program variables live in.
    pub data_mem: &'static str,
}

/// All six targets in Table 3 order.
pub fn models() -> [TargetModel; 6] {
    [
        TargetModel {
            name: "demo",
            hdl: DEMO,
            data_width: 16,
            data_mem: "dmem",
        },
        TargetModel {
            name: "ref",
            hdl: REF_MACHINE,
            data_width: 16,
            data_mem: "dmem",
        },
        TargetModel {
            name: "manocpu",
            hdl: MANOCPU,
            data_width: 16,
            data_mem: "mem",
        },
        TargetModel {
            name: "tanenbaum",
            hdl: TANENBAUM,
            data_width: 16,
            data_mem: "mem",
        },
        TargetModel {
            name: "bass_boost",
            hdl: BASS_BOOST,
            data_width: 16,
            data_mem: "dmem",
        },
        TargetModel {
            name: "tms320c25",
            hdl: TMS320C25,
            data_width: 16,
            data_mem: "dmem",
        },
    ]
}

/// Looks up a model by name.
pub fn model(name: &str) -> Option<TargetModel> {
    models().into_iter().find(|m| m.name == name)
}

/// `demo` — a small horizontal-microcode machine: every control signal is a
/// dedicated instruction field, two operand busses, a rich ALU.  Horizontal
/// formats make many RT combinations satisfiable, so the template base is
/// large relative to the datapath and compaction packs aggressively.
pub const DEMO: &str = r#"
module Alu8 {
    in a: bit(16);
    in b: bit(16);
    ctrl f: bit(3);
    out y: bit(16);
    behavior {
        case f {
            0 => y = a + b;
            1 => y = a - b;
            2 => y = a & b;
            3 => y = a | b;
            4 => y = a ^ b;
            5 => y = a << b;
            6 => y = a >> b;
            7 => y = b;
        }
    }
}
module Reg16 {
    in d: bit(16);
    ctrl en: bit(1);
    out q: bit(16);
    register q = d when en == 1;
}
module Ram {
    in addr: bit(6);
    in din: bit(16);
    ctrl w: bit(1);
    out dout: bit(16);
    memory cells[64]: bit(16);
    read dout = cells[addr];
    write cells[addr] = din when w == 1;
}
processor Demo {
    instruction word: bit(32);
    in pin: bit(16);
    out pout: bit(16);
    bus abus: bit(16);
    bus bbus: bit(16);
    parts {
        alu: Alu8; acc: Reg16; r0: Reg16; r1: Reg16; dmem: Ram;
    }
    connections {
        -- Bus A drivers (field I[17:16])
        drive abus = acc.q   when I[17:16] == 0;
        drive abus = r0.q    when I[17:16] == 1;
        drive abus = r1.q    when I[17:16] == 2;
        drive abus = dmem.dout when I[17:16] == 3;
        -- Bus B drivers (field I[20:18])
        drive bbus = acc.q   when I[20:18] == 0;
        drive bbus = r0.q    when I[20:18] == 1;
        drive bbus = r1.q    when I[20:18] == 2;
        drive bbus = dmem.dout when I[20:18] == 3;
        drive bbus = I[15:8] when I[20:18] == 4;
        drive bbus = pin     when I[20:18] == 5;
        alu.a = abus;
        alu.b = bbus;
        alu.f = I[23:21];
        acc.d = alu.y;
        acc.en = I[24];
        r0.d = alu.y;
        r0.en = I[25];
        r1.d = alu.y;
        r1.en = I[26];
        dmem.addr = I[5:0];
        dmem.din = abus;
        dmem.w = I[27];
        pout = alu.y;
    }
}
"#;

/// `ref` — the large reference machine: three function units (ALU, shared
/// multiplier path, barrel shifter), a comparator, a homogeneous register
/// file, two operand busses with many drivers, and a program counter with
/// guarded update paths (unconditional jump, branch-if-zero and
/// branch-if-nonzero on the accumulator).  The combinatorial product of bus
/// drivers, ALU functions and chained multiplier routes makes this the
/// largest template base, as in the paper.
pub const REF_MACHINE: &str = r#"
module Alu8 {
    in a: bit(16);
    in b: bit(16);
    ctrl f: bit(3);
    out y: bit(16);
    behavior {
        case f {
            0 => y = a + b;
            1 => y = a - b;
            2 => y = a & b;
            3 => y = a | b;
            4 => y = a ^ b;
            5 => y = ~a;
            6 => y = -a;
            7 => y = b;
        }
    }
}
module Mul16 {
    in a: bit(16);
    in b: bit(16);
    out y: bit(16);
    behavior { y = a * b; }
}
module Shift {
    in a: bit(16);
    in b: bit(16);
    ctrl f: bit(1);
    out y: bit(16);
    behavior {
        case f {
            0 => y = a << b;
            1 => y = a >> b;
        }
    }
}
module Mux2 {
    in a: bit(16);
    in b: bit(16);
    ctrl s: bit(1);
    out y: bit(16);
    behavior { case s { 0 => y = a; 1 => y = b; } }
}
module Mux4 {
    in a: bit(16);
    in b: bit(16);
    in c: bit(16);
    in d: bit(16);
    ctrl s: bit(2);
    out y: bit(16);
    behavior { case s { 0 => y = a; 1 => y = b; 2 => y = c; 3 => y = d; } }
}
module Cmp {
    in a: bit(16);
    in b: bit(16);
    ctrl f: bit(3);
    out y: bit(1);
    behavior {
        case f {
            0 => y = a < b;
            1 => y = a <= b;
            2 => y = a > b;
            3 => y = a >= b;
            4 => y = a == b;
            5 => y = a != b;
        }
    }
}
module Pc {
    in d: bit(8);
    in v: bit(16);
    ctrl br: bit(2);
    out q: bit(8);
    register q = d when (br == 1) | ((br == 2) & (v == 0)) | ((br == 3) & (v != 0));
}
module Reg16 {
    in d: bit(16);
    ctrl en: bit(1);
    out q: bit(16);
    register q = d when en == 1;
}
module Rf8 {
    in raddr: bit(3);
    in waddr: bit(3);
    in din: bit(16);
    ctrl w: bit(1);
    out dout: bit(16);
    memory cells[8]: bit(16);
    read dout = cells[raddr];
    write cells[waddr] = din when w == 1;
}
module Ram {
    in addr: bit(6);
    in din: bit(16);
    ctrl w: bit(1);
    out dout: bit(16);
    memory cells[64]: bit(16);
    read dout = cells[addr];
    write cells[addr] = din when w == 1;
}
processor RefMachine {
    instruction word: bit(48);
    in pin: bit(16);
    out pout: bit(16);
    bus abus: bit(16);
    bus bbus: bit(16);
    parts {
        alu: Alu8; mul: Mul16; sh: Shift; cmp: Cmp; bmux: Mux2; resmux: Mux4;
        acc: Reg16; t: Reg16; rf: Rf8; dmem: Ram; pc: Pc;
    }
    regfiles { rf }
    pc { pc }
    connections {
        drive abus = acc.q     when I[17:16] == 0;
        drive abus = rf.dout   when I[17:16] == 1;
        drive abus = dmem.dout when I[17:16] == 2;
        drive abus = t.q       when I[17:16] == 3;
        drive bbus = rf.dout   when I[20:18] == 0;
        drive bbus = dmem.dout when I[20:18] == 1;
        drive bbus = I[15:8]   when I[20:18] == 2;
        drive bbus = pin       when I[20:18] == 3;
        drive bbus = acc.q     when I[20:18] == 4;
        mul.a = t.q;
        mul.b = bbus;
        bmux.a = bbus;
        bmux.b = mul.y;
        bmux.s = I[21];
        alu.a = abus;
        alu.b = bmux.y;
        alu.f = I[24:22];
        sh.a = abus;
        sh.b = bbus;
        sh.f = I[25];
        cmp.a = abus;
        cmp.b = dmem.dout;
        cmp.f = I[42:40];
        resmux.a = alu.y;
        resmux.b = sh.y;
        resmux.c = mul.y;
        resmux.d = cmp.y;
        resmux.s = I[27:26];
        acc.d = resmux.y;
        acc.en = I[28];
        t.d = resmux.y;
        t.en = I[29];
        rf.din = resmux.y;
        rf.w = I[30];
        rf.raddr = I[34:32];
        rf.waddr = I[37:35];
        dmem.addr = I[5:0];
        dmem.din = abus;
        dmem.w = I[31];
        pc.d = I[15:8];
        pc.v = acc.q;
        pc.br = I[44:43];
        pout = alu.y;
    }
}
"#;

/// `manocpu` — Mano's Basic Computer (Computer System Architecture, 3rd
/// ed.): accumulator AC with E-less simplification, data register DR, one
/// memory addressed by the instruction's 8-bit address field, encoded 4-bit
/// opcode driving a decoder.
pub const MANOCPU: &str = r#"
module Alu {
    in a: bit(16);
    in b: bit(16);
    ctrl f: bit(3);
    out y: bit(16);
    behavior {
        case f {
            0 => y = a & b;
            1 => y = a + b;
            2 => y = b;
            3 => y = ~a;
            4 => y = a >> 1;
            5 => y = a << 1;
            6 => y = a + 1;
            7 => y = a;
        }
    }
}
module Reg16 {
    in d: bit(16);
    ctrl en: bit(1);
    out q: bit(16);
    register q = d when en == 1;
}
module Ram {
    in addr: bit(8);
    in din: bit(16);
    ctrl w: bit(1);
    out dout: bit(16);
    memory cells[256]: bit(16);
    read dout = cells[addr];
    write cells[addr] = din when w == 1;
}
module Dec {
    ctrl op: bit(4);
    out alu_f: bit(3);
    out ac_en: bit(1);
    out dr_en: bit(1);
    out mem_w: bit(1);
    behavior {
        case op {
            0  => { alu_f = 0; ac_en = 1; dr_en = 0; mem_w = 0; }  -- AND
            1  => { alu_f = 1; ac_en = 1; dr_en = 0; mem_w = 0; }  -- ADD
            2  => { alu_f = 2; ac_en = 1; dr_en = 0; mem_w = 0; }  -- LDA
            3  => { alu_f = 7; ac_en = 0; dr_en = 0; mem_w = 1; }  -- STA
            4  => { alu_f = 3; ac_en = 1; dr_en = 0; mem_w = 0; }  -- CMA
            5  => { alu_f = 4; ac_en = 1; dr_en = 0; mem_w = 0; }  -- SHR
            6  => { alu_f = 5; ac_en = 1; dr_en = 0; mem_w = 0; }  -- SHL
            7  => { alu_f = 6; ac_en = 1; dr_en = 0; mem_w = 0; }  -- INC
            8  => { alu_f = 2; ac_en = 0; dr_en = 1; mem_w = 0; }  -- LDD
            default => { alu_f = 7; ac_en = 0; dr_en = 0; mem_w = 0; } -- NOP
        }
    }
}
processor ManoCpu {
    instruction word: bit(12);
    parts {
        alu: Alu; ac: Reg16; dr: Reg16; mem: Ram; dec: Dec;
    }
    connections {
        dec.op = I[11:8];
        alu.a = ac.q;
        alu.b = mem.dout;
        alu.f = dec.alu_f;
        ac.d = alu.y;
        ac.en = dec.ac_en;
        dr.d = mem.dout;
        dr.en = dec.dr_en;
        mem.addr = I[7:0];
        mem.din = ac.q;
        mem.w = dec.mem_w;
    }
}
"#;

/// `tanenbaum` — the Mac-1-flavoured accumulator machine from Structured
/// Computer Organization (3rd ed.): AC plus a one-level stack register,
/// memory-direct and immediate addressing, encoded 4-bit opcodes.
pub const TANENBAUM: &str = r#"
module Alu {
    in a: bit(16);
    in b: bit(16);
    ctrl f: bit(2);
    out y: bit(16);
    behavior {
        case f {
            0 => y = a + b;
            1 => y = a - b;
            2 => y = b;
            3 => y = a;
        }
    }
}
module Mux3 {
    in a: bit(16);
    in b: bit(16);
    in c: bit(16);
    ctrl s: bit(2);
    out y: bit(16);
    behavior { case s { 0 => y = a; 1 => y = b; 2 => y = c; } }
}
module Reg16 {
    in d: bit(16);
    ctrl en: bit(1);
    out q: bit(16);
    register q = d when en == 1;
}
module Ram {
    in addr: bit(8);
    in din: bit(16);
    ctrl w: bit(1);
    out dout: bit(16);
    memory cells[256]: bit(16);
    read dout = cells[addr];
    write cells[addr] = din when w == 1;
}
module Dec {
    ctrl op: bit(4);
    out alu_f: bit(2);
    out bsel: bit(2);
    out ac_en: bit(1);
    out sp_en: bit(1);
    out mem_w: bit(1);
    out wsel: bit(1);
    behavior {
        case op {
            0 => { alu_f = 2; bsel = 0; ac_en = 1; sp_en = 0; mem_w = 0; wsel = 0; } -- LODD
            1 => { alu_f = 0; bsel = 0; ac_en = 1; sp_en = 0; mem_w = 0; wsel = 0; } -- ADDD
            2 => { alu_f = 1; bsel = 0; ac_en = 1; sp_en = 0; mem_w = 0; wsel = 0; } -- SUBD
            3 => { alu_f = 2; bsel = 1; ac_en = 1; sp_en = 0; mem_w = 0; wsel = 0; } -- LOCO
            4 => { alu_f = 0; bsel = 1; ac_en = 1; sp_en = 0; mem_w = 0; wsel = 0; } -- ADDI
            5 => { alu_f = 3; bsel = 0; ac_en = 0; sp_en = 0; mem_w = 1; wsel = 0; } -- STOD
            6 => { alu_f = 2; bsel = 2; ac_en = 1; sp_en = 0; mem_w = 0; wsel = 0; } -- POP-ish
            7 => { alu_f = 3; bsel = 0; ac_en = 0; sp_en = 1; mem_w = 0; wsel = 0; } -- PUSH-ish
            8 => { alu_f = 0; bsel = 2; ac_en = 1; sp_en = 0; mem_w = 0; wsel = 0; } -- ADDS
            9 => { alu_f = 1; bsel = 2; ac_en = 1; sp_en = 0; mem_w = 0; wsel = 0; } -- SUBS
            10 => { alu_f = 3; bsel = 0; ac_en = 0; sp_en = 0; mem_w = 1; wsel = 1; } -- STOS
            default => { alu_f = 3; bsel = 0; ac_en = 0; sp_en = 0; mem_w = 0; wsel = 0; }
        }
    }
}
processor Tanenbaum {
    instruction word: bit(12);
    parts {
        alu: Alu; bmux: Mux3; ac: Reg16; sp: Reg16; mem: Ram; dec: Dec; wmux: Mux3;
    }
    connections {
        dec.op = I[11:8];
        bmux.a = mem.dout;
        bmux.b = I[7:0];
        bmux.c = sp.q;
        bmux.s = dec.bsel;
        alu.a = ac.q;
        alu.b = bmux.y;
        alu.f = dec.alu_f;
        ac.d = alu.y;
        ac.en = dec.ac_en;
        sp.d = alu.y;
        sp.en = dec.sp_en;
        wmux.a = ac.q;
        wmux.b = sp.q;
        wmux.c = mem.dout;
        wmux.s = dec.wsel;
        mem.addr = I[7:0];
        mem.din = wmux.y;
        mem.w = dec.mem_w;
    }
}
"#;

/// `bass_boost` — a Philips-style in-house audio ASIP (Strik et al., ED&TC
/// 1995): a bare MAC data path with a sample register, a coefficient ROM
/// and a small state memory; the smallest template base of the set.
pub const BASS_BOOST: &str = r#"
module Mac {
    in acc: bit(16);
    in x: bit(16);
    in c: bit(16);
    ctrl f: bit(2);
    out y: bit(16);
    behavior {
        case f {
            0 => y = acc + x * c;
            1 => y = acc - x * c;
            2 => y = x * c;
            3 => y = x;
        }
    }
}
module Reg16 {
    in d: bit(16);
    ctrl en: bit(1);
    out q: bit(16);
    register q = d when en == 1;
}
module Rom {
    in addr: bit(4);
    out dout: bit(16);
    memory cells[16]: bit(16);
    read dout = cells[addr];
}
module Ram {
    in addr: bit(4);
    in din: bit(16);
    ctrl w: bit(1);
    out dout: bit(16);
    memory cells[16]: bit(16);
    read dout = cells[addr];
    write cells[addr] = din when w == 1;
}
processor BassBoost {
    instruction word: bit(12);
    in sample_in: bit(16);
    out sample_out: bit(16);
    parts {
        mac: Mac; acc: Reg16; x: Reg16; coef: Rom; dmem: Ram; xmux: Mux2i;
    }
    connections {
        mac.acc = acc.q;
        mac.x = x.q;
        mac.c = coef.dout;
        mac.f = I[1:0];
        acc.d = mac.y;
        acc.en = I[2];
        xmux.a = sample_in;
        xmux.b = dmem.dout;
        xmux.s = I[3];
        x.d = xmux.y;
        x.en = I[4];
        coef.addr = I[11:8];
        dmem.addr = I[11:8];
        dmem.din = acc.q;
        dmem.w = I[5];
        sample_out = acc.q;
    }
}
module Mux2i {
    in a: bit(16);
    in b: bit(16);
    ctrl s: bit(1);
    out y: bit(16);
    behavior { case s { 0 => y = a; 1 => y = b; } }
}
"#;

/// TMS320C25-like DSP (TI user's guide, rev. B 1990), narrowed to 16-bit
/// arithmetic: accumulator ACC, multiplier input register T, product
/// register P, two auxiliary registers AR0/AR1 selected by the ARP mode
/// register (indirect addressing), 8-bit direct address field, encoded
/// 8-bit opcodes through an instruction decoder.
pub const TMS320C25: &str = r#"
module Alu {
    in a: bit(16);
    in b: bit(16);
    ctrl f: bit(3);
    out y: bit(16);
    behavior {
        case f {
            0 => y = a + b;
            1 => y = a - b;
            2 => y = a & b;
            3 => y = a | b;
            4 => y = a ^ b;
            5 => y = b;
            6 => y = a << 1;
            7 => y = a >> 1;
        }
    }
}
module Mul16 {
    in a: bit(16);
    in b: bit(16);
    out y: bit(16);
    behavior { y = a * b; }
}
module Mux3 {
    in a: bit(16);
    in b: bit(16);
    in c: bit(16);
    ctrl s: bit(2);
    out y: bit(16);
    behavior { case s { 0 => y = a; 1 => y = b; 2 => y = c; } }
}
module AddrMux {
    in direct: bit(8);
    in ar0: bit(8);
    in ar1: bit(8);
    ctrl s: bit(1);
    ctrl arp: bit(1);
    out y: bit(8);
    behavior {
        case s {
            0 => y = direct;
            1 => case arp {
                0 => y = ar0;
                1 => y = ar1;
            }
        }
    }
}
module ArUnit {
    in cur: bit(8);
    in imm: bit(8);
    ctrl f: bit(2);
    out y: bit(8);
    behavior {
        case f {
            0 => y = imm;
            1 => y = cur + 1;
            2 => y = cur - 1;
            3 => y = cur;
        }
    }
}
module Reg16 {
    in d: bit(16);
    ctrl en: bit(1);
    out q: bit(16);
    register q = d when en == 1;
}
module Reg8 {
    in d: bit(8);
    ctrl en: bit(1);
    out q: bit(8);
    register q = d when en == 1;
}
module Reg1 {
    in d: bit(1);
    ctrl en: bit(1);
    out q: bit(1);
    register q = d when en == 1;
}
module Ram {
    in addr: bit(8);
    in din: bit(16);
    ctrl w: bit(1);
    out dout: bit(16);
    memory cells[256]: bit(16);
    read dout = cells[addr];
    write cells[addr] = din when w == 1;
}
module Dec {
    ctrl op: bit(8);
    out alu_f: bit(3);
    out bsel: bit(2);
    out acc_en: bit(1);
    out t_en: bit(1);
    out p_en: bit(1);
    out mem_w: bit(1);
    out msel: bit(1);
    out wsel: bit(1);
    out addr_s: bit(1);
    out ar_f: bit(2);
    out ar_en: bit(1);
    out arp_en: bit(1);
    behavior {
        case op {
            -- direct-addressing ALU group (b = dmem)
            0  => { alu_f = 0; bsel = 0; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- ADD
            1  => { alu_f = 1; bsel = 0; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- SUB
            2  => { alu_f = 2; bsel = 0; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- AND
            3  => { alu_f = 3; bsel = 0; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- OR
            4  => { alu_f = 4; bsel = 0; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- XOR
            5  => { alu_f = 5; bsel = 0; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- LAC
            -- indirect-addressing ALU group
            6  => { alu_f = 0; bsel = 0; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 1; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- ADD*
            7  => { alu_f = 1; bsel = 0; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 1; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- SUB*
            8  => { alu_f = 5; bsel = 0; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 1; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- LAC*
            -- accumulator/product group
            9  => { alu_f = 0; bsel = 1; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- APAC
            10 => { alu_f = 1; bsel = 1; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- SPAC
            11 => { alu_f = 5; bsel = 1; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- PAC
            12 => { alu_f = 5; bsel = 2; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- LACK
            13 => { alu_f = 6; bsel = 1; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- SFL
            14 => { alu_f = 7; bsel = 1; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- SFR
            -- T / P group
            16 => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 1; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- LT
            17 => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 1; p_en = 0; mem_w = 0; addr_s = 1; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- LT*
            18 => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 0; p_en = 1; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- MPY
            19 => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 0; p_en = 1; mem_w = 0; addr_s = 1; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- MPY*
            -- stores
            20 => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 0; p_en = 0; mem_w = 1; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- SACL
            21 => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 0; p_en = 0; mem_w = 1; addr_s = 1; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- SACL*
            -- AR / ARP group
            24 => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 0; ar_en = 1; arp_en = 0; msel = 0; wsel = 0; } -- LARK
            25 => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 1; ar_en = 1; arp_en = 0; msel = 0; wsel = 0; } -- AR+
            26 => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 2; ar_en = 1; arp_en = 0; msel = 0; wsel = 0; } -- AR-
            27 => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 1; msel = 0; wsel = 0; } -- LARP
            -- immediate ALU group
            28 => { alu_f = 0; bsel = 2; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- ADDK
            29 => { alu_f = 1; bsel = 2; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- SUBK
            30 => { alu_f = 2; bsel = 2; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- ANDK
            31 => { alu_f = 3; bsel = 2; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- ORK
            32 => { alu_f = 4; bsel = 2; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- XORK
            -- multiply immediate
            33 => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 0; p_en = 1; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 1; wsel = 0; } -- MPYK
            -- indirect with post-modify (access and AR update in one word)
            34 => { alu_f = 0; bsel = 0; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 1; ar_f = 1; ar_en = 1; arp_en = 0; msel = 0; wsel = 0; } -- ADD*+
            35 => { alu_f = 0; bsel = 0; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 1; ar_f = 2; ar_en = 1; arp_en = 0; msel = 0; wsel = 0; } -- ADD*-
            36 => { alu_f = 1; bsel = 0; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 1; ar_f = 1; ar_en = 1; arp_en = 0; msel = 0; wsel = 0; } -- SUB*+
            37 => { alu_f = 5; bsel = 0; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 1; ar_f = 1; ar_en = 1; arp_en = 0; msel = 0; wsel = 0; } -- LAC*+
            38 => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 1; p_en = 0; mem_w = 0; addr_s = 1; ar_f = 1; ar_en = 1; arp_en = 0; msel = 0; wsel = 0; } -- LT*+
            39 => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 0; p_en = 1; mem_w = 0; addr_s = 1; ar_f = 1; ar_en = 1; arp_en = 0; msel = 0; wsel = 0; } -- MPY*+
            40 => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 0; p_en = 0; mem_w = 1; addr_s = 1; ar_f = 1; ar_en = 1; arp_en = 0; msel = 0; wsel = 0; } -- SACL*+
            -- store P (SPL) in all three addressing modes
            41 => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 0; p_en = 0; mem_w = 1; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 1; } -- SPL
            42 => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 0; p_en = 0; mem_w = 1; addr_s = 1; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 1; } -- SPL*
            -- accumulator logic with P (paper's chained-op family)
            43 => { alu_f = 2; bsel = 1; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- ANDP
            44 => { alu_f = 3; bsel = 1; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- ORP
            45 => { alu_f = 4; bsel = 1; acc_en = 1; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- XORP
            default => { alu_f = 5; bsel = 0; acc_en = 0; t_en = 0; p_en = 0; mem_w = 0; addr_s = 0; ar_f = 3; ar_en = 0; arp_en = 0; msel = 0; wsel = 0; } -- NOP
        }
    }
}
module ArMux {
    in a: bit(8);
    in b: bit(8);
    ctrl s: bit(1);
    out y: bit(8);
    behavior { case s { 0 => y = a; 1 => y = b; } }
}
module ArMux16 {
    in a: bit(16);
    in b: bit(16);
    ctrl s: bit(1);
    out y: bit(16);
    behavior { case s { 0 => y = a; 1 => y = b; } }
}
module ArGate {
    ctrl en: bit(1);
    ctrl sel: bit(1);
    out e0: bit(1);
    out e1: bit(1);
    behavior {
        case en {
            0 => { e0 = 0; e1 = 0; }
            1 => case sel {
                0 => { e0 = 1; e1 = 0; }
                1 => { e0 = 0; e1 = 1; }
            }
        }
    }
}
processor Tms320c25 {
    instruction word: bit(16);
    out pout: bit(16);
    parts {
        alu: Alu; mul: Mul16; bmux: Mux3; amux: AddrMux; mmux: ArMux16; wmux: ArMux16;
        acc: Reg16; t: Reg16; p: Reg16;
        ar0: Reg8; ar1: Reg8; aru: ArUnit; armux: ArMux; argate: ArGate; arp: Reg1;
        dmem: Ram; dec: Dec;
    }
    modes { arp }
    connections {
        dec.op = I[15:8];
        amux.direct = I[7:0];
        amux.ar0 = ar0.q;
        amux.ar1 = ar1.q;
        amux.s = dec.addr_s;
        amux.arp = arp.q;
        dmem.addr = amux.y;
        mul.a = t.q;
        mmux.a = dmem.dout;
        mmux.b = I[7:0];
        mmux.s = dec.msel;
        mul.b = mmux.y;
        bmux.a = dmem.dout;
        bmux.b = p.q;
        bmux.c = I[7:0];
        bmux.s = dec.bsel;
        alu.a = acc.q;
        alu.b = bmux.y;
        alu.f = dec.alu_f;
        acc.d = alu.y;
        acc.en = dec.acc_en;
        t.d = dmem.dout;
        t.en = dec.t_en;
        p.d = mul.y;
        p.en = dec.p_en;
        wmux.a = acc.q;
        wmux.b = p.q;
        wmux.s = dec.wsel;
        dmem.din = wmux.y;
        dmem.w = dec.mem_w;
        armux.a = ar0.q;
        armux.b = ar1.q;
        armux.s = I[0];
        aru.cur = armux.y;
        aru.imm = I[7:0];
        aru.f = dec.ar_f;
        argate.en = dec.ar_en;
        argate.sel = I[0];
        ar0.d = aru.y;
        ar0.en = argate.e0;
        ar1.d = aru.y;
        ar1.en = argate.e1;
        arp.d = I[0];
        arp.en = dec.arp_en;
        pout = acc.q;
    }
}
"#;
