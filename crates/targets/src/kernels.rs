//! The ten DSPstone basic blocks of Figure 2, in mini-C.
//!
//! Kernel bodies follow the DSPstone "application benchmark" definitions
//! (Zivojnovic et al., ICSPAT 1994) at fixed sizes small enough to unroll.
//! Each kernel carries a hand-written reference code size for the
//! TMS320C25-like model: the instruction counts of the assembly a DSP
//! programmer would write (listings in comments), playing the role of the
//! paper's "hand-written code = 100 %" bars.

/// One benchmark kernel.
#[derive(Debug, Clone, Copy)]
pub struct Kernel {
    /// DSPstone kernel name (Figure 2 x-axis).
    pub name: &'static str,
    /// Mini-C source.
    pub source: &'static str,
    /// Name of the function to compile.
    pub function: &'static str,
    /// Hand-written instruction count on the TMS320C25-like model.
    pub hand_ops: usize,
}

/// All ten kernels in Figure 2 order.
pub fn kernels() -> [Kernel; 10] {
    [
        // LT a; MPY b; LAC c; APAC; SACL d            = 5
        Kernel {
            name: "real_update",
            source: "int a, b, c, d;
                     void kernel() { d = c + a * b; }",
            function: "kernel",
            hand_ops: 5,
        },
        // cr: LT ar; MPY br; PAC; LT ai; MPY bi; SPAC; SACL cr = 7
        // ci: LT ar; MPY bi; PAC; LT ai; MPY br; APAC; SACL ci = 7
        Kernel {
            name: "complex_mult",
            source: "int ar, ai, br, bi, cr, ci;
                     void kernel() {
                         cr = ar * br - ai * bi;
                         ci = ar * bi + ai * br;
                     }",
            function: "kernel",
            hand_ops: 14,
        },
        // As complex_mult but accumulating: LAC cr first => 8 + 8
        Kernel {
            name: "complex_update",
            source: "int ar, ai, br, bi, cr, ci;
                     void kernel() {
                         cr = cr + ar * br - ai * bi;
                         ci = ci + ar * bi + ai * br;
                     }",
            function: "kernel",
            hand_ops: 16,
        },
        // Per element: LT a[i]; MPY b[i]; LAC c[i]; APAC; SACL d[i] = 5 x 4
        Kernel {
            name: "n_real_updates",
            source: "int a[4], b[4], c[4], d[4];
                     void kernel() {
                         int i;
                         for (i = 0; i < 4; i++) { d[i] = c[i] + a[i] * b[i]; }
                     }",
            function: "kernel",
            hand_ops: 20,
        },
        // Per pair: complex update = 16, x2 pairs
        Kernel {
            name: "n_complex_updates",
            source: "int ar[2], ai[2], br[2], bi[2], cr[2], ci[2];
                     void kernel() {
                         int i;
                         for (i = 0; i < 2; i++) {
                             cr[i] = cr[i] + ar[i] * br[i] - ai[i] * bi[i];
                             ci[i] = ci[i] + ar[i] * bi[i] + ai[i] * br[i];
                         }
                     }",
            function: "kernel",
            hand_ops: 32,
        },
        // Sum: LACK 0 (1) + 8x(LT; MPY; APAC) (24) + SACL y (1) = 26
        // Delay line: 7 x (LAC x[i-1]; SACL x[i]) = 14            -> 40
        Kernel {
            name: "fir",
            source: "int c[8], x[8], y;
                     void kernel() {
                         int i;
                         y = 0;
                         for (i = 0; i < 8; i++) { y += c[i] * x[i]; }
                         x[7] = x[6]; x[6] = x[5]; x[5] = x[4]; x[4] = x[3];
                         x[3] = x[2]; x[2] = x[1]; x[1] = x[0];
                     }",
            function: "kernel",
            hand_ops: 40,
        },
        // w = x - a1*w1 - a2*w2: LAC x; LT w1; MPY a1; SPAC; LT w2; MPY a2; SPAC; SACL w  = 8
        // y = b0*w + b1*w1 + b2*w2: LT w; MPY b0; PAC; LT w1; MPY b1; APAC; LT w2; MPY b2; APAC; SACL y = 10
        // w2 = w1; w1 = w: 2 x (LAC; SACL) = 4                     -> 22
        Kernel {
            name: "biquad_one",
            source: "int x, y, w, w1, w2, a1, a2, b0, b1, b2;
                     void kernel() {
                         w = x - a1 * w1 - a2 * w2;
                         y = b0 * w + b1 * w1 + b2 * w2;
                         w2 = w1;
                         w1 = w;
                     }",
            function: "kernel",
            hand_ops: 22,
        },
        // 2 sections x 22
        Kernel {
            name: "biquad_N",
            source: "int x, y[2], w[2], w1[2], w2[2], a1[2], a2[2], b0[2], b1[2], b2[2];
                     void kernel() {
                         int i;
                         for (i = 0; i < 2; i++) {
                             w[i] = x - a1[i] * w1[i] - a2[i] * w2[i];
                             y[i] = b0[i] * w[i] + b1[i] * w1[i] + b2[i] * w2[i];
                             w2[i] = w1[i];
                             w1[i] = w[i];
                         }
                     }",
            function: "kernel",
            hand_ops: 44,
        },
        // LACK 0 + 8 x (LT; MPY; APAC) + SACL = 26
        Kernel {
            name: "dot_product",
            source: "int a[8], b[8], s;
                     void kernel() {
                         int i;
                         s = 0;
                         for (i = 0; i < 8; i++) { s += a[i] * b[i]; }
                     }",
            function: "kernel",
            hand_ops: 26,
        },
        // Same MAC structure with reversed operand indexing = 26
        Kernel {
            name: "convolution",
            source: "int h[8], x[8], y;
                     void kernel() {
                         int i;
                         y = 0;
                         for (i = 0; i < 8; i++) { y += h[i] * x[7 - i]; }
                     }",
            function: "kernel",
            hand_ops: 26,
        },
    ]
}

/// Control-flow kernels: data-dependent branches and loops that cannot be
/// resolved at compile time, exercising the CFG path of the compiler
/// (basic-block lowering, branch emission against the target's PC update
/// templates, per-block liveness and compaction).
///
/// These are deliberately kept out of [`kernels`]: the Figure 2 experiment
/// and the golden listings iterate the straight-line set, whose output is
/// pinned byte-for-byte.  `hand_ops` counts assume a conditional-branch
/// machine in the TMS320C25 style (compare, branch, move per element).
pub fn control_kernels() -> [Kernel; 4] {
    [
        // Per element: LAC max; SUB a[i]; BGEZ skip; LAC a[i]; SACL max = ~5 x 7 + 2
        Kernel {
            name: "vec_max",
            source: "int a[8], max;
                     void kernel() {
                         int i;
                         max = a[0];
                         for (i = 1; i < 8; i++) {
                             if (max < a[i]) { max = a[i]; }
                         }
                     }",
            function: "kernel",
            hand_ops: 37,
        },
        // Per element: two compare-and-move clamps against memory bounds.
        Kernel {
            name: "clip",
            source: "int x[8], lo, hi;
                     void kernel() {
                         int i;
                         for (i = 0; i < 8; i++) {
                             if (hi < x[i]) { x[i] = hi; }
                             if (x[i] < lo) { x[i] = lo; }
                         }
                     }",
            function: "kernel",
            hand_ops: 64,
        },
        // Per element: compare against a threshold, accumulate when above.
        Kernel {
            name: "cond_accum",
            source: "int a[8], t, s;
                     void kernel() {
                         int i;
                         s = 0;
                         for (i = 0; i < 8; i++) {
                             if (t < a[i]) { s += a[i]; }
                         }
                     }",
            function: "kernel",
            hand_ops: 42,
        },
        // A genuine runtime loop: the trip count depends on input data, so
        // the frontend cannot unroll it and must lower a CFG with a back
        // edge.
        Kernel {
            name: "count_down",
            source: "int n, s;
                     void kernel() {
                         s = 0;
                         while (n) {
                             s += n;
                             n = n - 1;
                         }
                     }",
            function: "kernel",
            hand_ops: 8,
        },
    ]
}

/// Looks up a kernel by name, searching the straight-line set first and
/// the control-flow set second.
pub fn kernel(name: &str) -> Option<Kernel> {
    kernels()
        .into_iter()
        .find(|k| k.name == name)
        .or_else(|| control_kernels().into_iter().find(|k| k.name == name))
}
