//! Target processor models and benchmark workloads.
//!
//! This crate carries the *data* of the evaluation:
//!
//! * [`mod@models`] — HDL descriptions of the six target processors of the
//!   paper's Table 3: `demo` and `ref` (horizontal/multi-bus machines),
//!   `manocpu` (Mano's Basic Computer), `tanenbaum` (the Mac-1-style
//!   accumulator machine), `bass_boost` (a Philips-style audio MAC ASIP)
//!   and a TMS320C25-like DSP.  The paper does not reproduce its MIMOLA
//!   sources, so these models are written from the cited references and
//!   sized to yield template bases of comparable magnitude and ordering.
//! * [`mod@kernels`] — the ten DSPstone basic blocks of Figure 2, in mini-C,
//!   each with a hand-written reference code size for the C25-like model
//!   (the paper's "hand-written code = 100 %" baselines).

pub mod kernels;
pub mod models;

pub use kernels::{control_kernels, kernel, kernels, Kernel};
pub use models::{models, TargetModel};
