//! The internal graph model of a target processor.
//!
//! Instruction-set extraction does not work on HDL syntax but on an
//! elaborated *netlist* (paper §2): primitive entities are module instances
//! whose I/O ports are interconnected by wires and tristate busses.  This
//! crate turns a parsed [`record_hdl::Model`] into that graph:
//!
//! * module behaviour is normalised into per-output **guarded expressions**
//!   (each `case` nesting becomes an explicit guard over control ports),
//! * every instance input/control port is resolved to at most one driver
//!   [`Net`] (instance output, primary input, instruction field, bus,
//!   constant, or a slice thereof),
//! * storages (registers, memories) are enumerated and classified; a memory
//!   addressed exclusively by instruction fields is classified as a
//!   **register file**, whose cells the code selector may use for
//!   intermediate results,
//! * widths are checked across connections, behaviours and bus drivers.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     module Acc {
//!         in d: bit(8);
//!         ctrl en: bit(1);
//!         out q: bit(8);
//!         register q = d when en == 1;
//!     }
//!     processor P {
//!         instruction word: bit(4);
//!         in pin: bit(8);
//!         parts { acc: Acc; }
//!         connections { acc.d = pin; acc.en = I[0]; }
//!     }
//! "#;
//! let model = record_hdl::parse(src)?;
//! let netlist = record_netlist::elaborate(&model)?;
//! assert_eq!(netlist.storages().len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod elab;
mod error;
mod types;

pub use error::NetlistError;
pub use types::*;

/// Elaborates a parsed HDL model into a [`Netlist`].
///
/// # Errors
///
/// Returns a [`NetlistError`] for unresolved names, direction violations,
/// multiply-driven ports, width mismatches and malformed behaviours (e.g. a
/// `case` selector that mixes data and control ports).
pub fn elaborate(model: &record_hdl::Model) -> Result<Netlist, NetlistError> {
    elab::Elaborator::new(model).run()
}

#[cfg(test)]
mod tests;
