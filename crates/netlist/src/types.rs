//! Elaborated netlist data types.

pub use record_hdl::PortDir;
use record_hdl::{PortDef, UnOp};
use std::fmt;

/// Index of an elaborated module definition inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DefId(pub u32);

/// Index of a module instance inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

/// Index of a bus inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BusId(pub u32);

/// Index of a primary processor port inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcPortId(pub u32);

/// Index of a storage (register, memory or register file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StorageId(pub u32);

/// Index of a port within its module definition's port list.
pub type PortIdx = usize;

/// A driver of an instance input/control port: where the data comes from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Net {
    /// Output `port` of instance `inst`.
    InstOut { inst: InstId, port: PortIdx },
    /// A primary processor input port.
    ProcIn(ProcPortId),
    /// Bits `hi..=lo` of the instruction word.
    IField { hi: u16, lo: u16 },
    /// A tristate bus.
    Bus(BusId),
    /// A hardwired constant.
    Const(u64),
    /// A bit slice of another net.
    Slice { base: Box<Net>, hi: u16, lo: u16 },
}

/// A data expression over a module's input ports (behaviour right-hand
/// side), after normalisation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DataExpr {
    /// Input port, by index into the module's port list.
    Port(PortIdx),
    Const(u64),
    Slice {
        base: Box<DataExpr>,
        hi: u16,
        lo: u16,
    },
    Unary {
        op: UnOp,
        arg: Box<DataExpr>,
    },
    Binary {
        op: record_hdl::BinOp,
        lhs: Box<DataExpr>,
        rhs: Box<DataExpr>,
    },
}

/// A control expression: an expression over *control* ports that control
/// analysis can evaluate symbolically (paper §2 traces these back to the
/// instruction register and mode registers).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CtrlExpr {
    /// Control port, by index into the module's port list.
    Port(PortIdx),
    Const(u64),
    Slice {
        base: Box<CtrlExpr>,
        hi: u16,
        lo: u16,
    },
}

/// A guard over control ports, produced from `case` nesting and `when`
/// clauses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Guard {
    True,
    False,
    /// `sel == value`
    Cmp {
        sel: CtrlExpr,
        value: u64,
    },
    /// `port == value` where `port` is a *data* input of the module: a
    /// runtime comparison control analysis cannot resolve from the
    /// instruction word.  Conditional PC updates (branch-if-zero) guard on
    /// these; everywhere else they make the write untraceable.
    DataCmp {
        port: PortIdx,
        value: u64,
    },
    Not(Box<Guard>),
    And(Box<Guard>, Box<Guard>),
    Or(Box<Guard>, Box<Guard>),
}

impl Guard {
    /// Conjunction that folds the `True` identity.
    pub fn and(self, other: Guard) -> Guard {
        match (self, other) {
            (Guard::True, g) | (g, Guard::True) => g,
            (Guard::False, _) | (_, Guard::False) => Guard::False,
            (a, b) => Guard::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction that folds the `False` identity.
    pub fn or(self, other: Guard) -> Guard {
        match (self, other) {
            (Guard::False, g) | (g, Guard::False) => g,
            (Guard::True, _) | (_, Guard::True) => Guard::True,
            (a, b) => Guard::Or(Box::new(a), Box::new(b)),
        }
    }
}

/// One guarded alternative of a combinational output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardedExpr {
    pub guard: Guard,
    pub value: DataExpr,
}

/// Behaviour of one output port of a combinational module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputBehavior {
    /// Which output port this describes.
    pub port: PortIdx,
    /// Alternatives in source order; at runtime exactly the alternatives
    /// whose guards hold drive the port (model authors keep them disjoint).
    pub arms: Vec<GuardedExpr>,
}

/// An elaborated memory read port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabReadPort {
    pub out: PortIdx,
    pub addr: DataExpr,
}

/// An elaborated memory write port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabWritePort {
    pub addr: DataExpr,
    pub data: DataExpr,
    pub guard: Guard,
}

/// Elaborated module behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElabKind {
    Comb {
        outputs: Vec<OutputBehavior>,
    },
    Register {
        out: PortIdx,
        input: DataExpr,
        guard: Guard,
    },
    Memory {
        size: u64,
        width: u16,
        reads: Vec<ElabReadPort>,
        writes: Vec<ElabWritePort>,
    },
}

/// An elaborated module definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabModule {
    pub name: String,
    pub ports: Vec<PortDef>,
    pub kind: ElabKind,
}

impl ElabModule {
    /// Index of a port by name.
    pub fn port_idx(&self, name: &str) -> Option<PortIdx> {
        self.ports.iter().position(|p| p.name == name)
    }

    /// Is this a sequential (state-holding) module?
    pub fn is_sequential(&self) -> bool {
        !matches!(self.kind, ElabKind::Comb { .. })
    }
}

/// A module instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    pub name: String,
    pub def: DefId,
    /// Designated mode register (paper §2)?
    pub is_mode: bool,
    /// Driver of each port (indexed like the definition's port list); only
    /// `In`/`Ctrl` ports may have drivers.
    pub drivers: Vec<Option<Net>>,
}

/// A tristate bus with guarded drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bus {
    pub name: String,
    pub width: u16,
    pub drivers: Vec<BusDriver>,
}

/// One guarded driver of a bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusDriver {
    pub source: Net,
    /// Enable condition at processor level; `BusGuard::True` drives always.
    pub guard: BusGuard,
}

/// Processor-level Boolean guard over nets (bus-driver enables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusGuard {
    True,
    /// `net == value` (`eq = true`) or `net != value` (`eq = false`).
    Cmp {
        net: Net,
        eq: bool,
        value: u64,
    },
    Not(Box<BusGuard>),
    And(Box<BusGuard>, Box<BusGuard>),
    Or(Box<BusGuard>, Box<BusGuard>),
}

/// A primary processor port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcPort {
    pub name: String,
    pub dir: PortDir,
    pub width: u16,
    /// For output ports: the connected source.
    pub driver: Option<Net>,
}

/// Classification of a storage element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageKind {
    /// A single register (possibly a mode register).
    Register,
    /// An addressable memory (data or program memory).
    Memory,
    /// A memory addressed only by instruction fields: a register file whose
    /// cells the compiler may allocate freely.
    RegFile,
}

/// A storage element of the processor: the RT destinations and the
/// "sequential components" SEQ of the paper's grammar construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Storage {
    pub id: StorageId,
    /// The owning instance.
    pub inst: InstId,
    /// Instance name (denormalised for display).
    pub name: String,
    pub kind: StorageKind,
    /// Word width in bits.
    pub width: u16,
    /// Number of words (1 for registers).
    pub size: u64,
    /// Is this a designated mode register?
    pub is_mode: bool,
    /// Is this the designated program counter?
    pub is_pc: bool,
}

/// The elaborated processor netlist.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    iword_width: u16,
    defs: Vec<ElabModule>,
    insts: Vec<Instance>,
    busses: Vec<Bus>,
    proc_ports: Vec<ProcPort>,
    storages: Vec<Storage>,
}

impl Netlist {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        name: String,
        iword_width: u16,
        defs: Vec<ElabModule>,
        insts: Vec<Instance>,
        busses: Vec<Bus>,
        proc_ports: Vec<ProcPort>,
        storages: Vec<Storage>,
    ) -> Self {
        Netlist {
            name,
            iword_width,
            defs,
            insts,
            busses,
            proc_ports,
            storages,
        }
    }

    /// Processor name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instruction word width in bits.
    pub fn iword_width(&self) -> u16 {
        self.iword_width
    }

    /// All elaborated module definitions.
    pub fn defs(&self) -> &[ElabModule] {
        &self.defs
    }

    /// All instances.
    pub fn insts(&self) -> &[Instance] {
        &self.insts
    }

    /// All busses.
    pub fn busses(&self) -> &[Bus] {
        &self.busses
    }

    /// All primary processor ports.
    pub fn proc_ports(&self) -> &[ProcPort] {
        &self.proc_ports
    }

    /// All storages (registers, memories, register files).
    pub fn storages(&self) -> &[Storage] {
        &self.storages
    }

    /// Definition of an instance.
    pub fn def_of(&self, inst: InstId) -> &ElabModule {
        &self.defs[self.insts[inst.0 as usize].def.0 as usize]
    }

    /// An instance by id.
    pub fn inst(&self, id: InstId) -> &Instance {
        &self.insts[id.0 as usize]
    }

    /// A bus by id.
    pub fn bus(&self, id: BusId) -> &Bus {
        &self.busses[id.0 as usize]
    }

    /// A storage by id.
    pub fn storage(&self, id: StorageId) -> &Storage {
        &self.storages[id.0 as usize]
    }

    /// A primary port by id.
    pub fn proc_port(&self, id: ProcPortId) -> &ProcPort {
        &self.proc_ports[id.0 as usize]
    }

    /// The storage owned by `inst`, if that instance is sequential.
    pub fn storage_of_inst(&self, inst: InstId) -> Option<&Storage> {
        self.storages.iter().find(|s| s.inst == inst)
    }

    /// Looks up an instance by name.
    pub fn inst_by_name(&self, name: &str) -> Option<InstId> {
        self.insts
            .iter()
            .position(|i| i.name == name)
            .map(|i| InstId(i as u32))
    }

    /// Looks up a storage by instance name.
    pub fn storage_by_name(&self, name: &str) -> Option<&Storage> {
        self.storages.iter().find(|s| s.name == name)
    }

    /// The designated program counter storage, if the model declares one.
    pub fn pc_storage(&self) -> Option<&Storage> {
        self.storages.iter().find(|s| s.is_pc)
    }

    /// The driver of an instance port, if connected.
    pub fn driver_of(&self, inst: InstId, port: PortIdx) -> Option<&Net> {
        self.insts[inst.0 as usize].drivers[port].as_ref()
    }

    /// Width of a net in bits.
    pub fn net_width(&self, net: &Net) -> u16 {
        match net {
            Net::InstOut { inst, port } => self.def_of(*inst).ports[*port].width,
            Net::ProcIn(p) => self.proc_ports[p.0 as usize].width,
            Net::IField { hi, lo } => hi - lo + 1,
            Net::Bus(b) => self.busses[b.0 as usize].width,
            Net::Const(_) => 0, // width-polymorphic; checked at use sites
            Net::Slice { hi, lo, .. } => hi - lo + 1,
        }
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "netlist {} (iword {} bits): {} defs, {} insts, {} busses, {} storages",
            self.name,
            self.iword_width,
            self.defs.len(),
            self.insts.len(),
            self.busses.len(),
            self.storages.len()
        )
    }
}
