//! Model elaboration: HDL AST → netlist graph.

use crate::error::NetlistError;
use crate::types::*;
use record_hdl as hdl;
use record_hdl::{BinOp, ModuleBody, PortDir, UnOp};
use std::collections::BTreeMap;

type Result<T> = std::result::Result<T, NetlistError>;

fn err<T>(msg: impl Into<String>) -> Result<T> {
    Err(NetlistError::new(msg))
}

/// Stateful elaborator; see [`crate::elaborate`].
pub(crate) struct Elaborator<'a> {
    model: &'a hdl::Model,
    defs: Vec<ElabModule>,
    def_index: BTreeMap<String, DefId>,
}

impl<'a> Elaborator<'a> {
    pub(crate) fn new(model: &'a hdl::Model) -> Self {
        Elaborator {
            model,
            defs: Vec::new(),
            def_index: BTreeMap::new(),
        }
    }

    pub(crate) fn run(mut self) -> Result<Netlist> {
        for m in &self.model.modules {
            let elab = elaborate_module(m)?;
            let id = DefId(self.defs.len() as u32);
            self.def_index.insert(m.name.clone(), id);
            self.defs.push(elab);
        }
        let proc = &self.model.processor;

        // Instances.
        let mut insts: Vec<Instance> = Vec::new();
        let mut inst_index: BTreeMap<String, InstId> = BTreeMap::new();
        for part in &proc.parts {
            let Some(&def) = self.def_index.get(&part.module) else {
                return err(format!(
                    "instance `{}` references unknown module `{}`",
                    part.inst, part.module
                ));
            };
            let nports = self.defs[def.0 as usize].ports.len();
            let id = InstId(insts.len() as u32);
            inst_index.insert(part.inst.clone(), id);
            insts.push(Instance {
                name: part.inst.clone(),
                def,
                is_mode: false,
                drivers: vec![None; nports],
            });
        }

        // Mode registers.
        for mode in &proc.modes {
            let Some(&id) = inst_index.get(mode) else {
                return err(format!("modes lists unknown instance `{mode}`"));
            };
            let def = insts[id.0 as usize].def;
            if !matches!(self.defs[def.0 as usize].kind, ElabKind::Register { .. }) {
                return err(format!("mode instance `{mode}` is not a register module"));
            }
            insts[id.0 as usize].is_mode = true;
        }

        // Busses.
        let mut busses: Vec<Bus> = Vec::new();
        let mut bus_index: BTreeMap<String, BusId> = BTreeMap::new();
        for b in &proc.busses {
            let id = BusId(busses.len() as u32);
            bus_index.insert(b.name.clone(), id);
            busses.push(Bus {
                name: b.name.clone(),
                width: b.width,
                drivers: Vec::new(),
            });
        }

        // Primary ports.
        let mut proc_ports: Vec<ProcPort> = Vec::new();
        let mut port_index: BTreeMap<String, ProcPortId> = BTreeMap::new();
        for p in &proc.ports {
            if p.dir == PortDir::Ctrl {
                return err(format!("processor port `{}` cannot be ctrl", p.name));
            }
            let id = ProcPortId(proc_ports.len() as u32);
            port_index.insert(p.name.clone(), id);
            proc_ports.push(ProcPort {
                name: p.name.clone(),
                dir: p.dir,
                width: p.width,
                driver: None,
            });
        }

        let ctx = NetCtx {
            defs: &self.defs,
            insts: &insts,
            bus_index: &bus_index,
            port_index: &port_index,
            proc_ports: &proc_ports,
            inst_index: &inst_index,
            iword_width: proc.iword_width,
        };

        // Bus drivers.
        let mut elaborated_drivers: Vec<(BusId, BusDriver)> = Vec::new();
        for d in &proc.drivers {
            let Some(&bid) = bus_index.get(&d.bus) else {
                return err(format!("drive statement targets unknown bus `{}`", d.bus));
            };
            let source = ctx.resolve_netref(&d.source)?;
            let sw = ctx.net_width(&source);
            let bw = busses[bid.0 as usize].width;
            if sw != 0 && sw > bw {
                return err(format!(
                    "bus `{}` has width {bw} but driver has width {sw}",
                    d.bus
                ));
            }
            let guard = match &d.guard {
                None => BusGuard::True,
                Some(c) => ctx.resolve_cond(c)?,
            };
            elaborated_drivers.push((bid, BusDriver { source, guard }));
        }

        // Connections.
        let mut conn_drivers: Vec<(InstId, PortIdx, Net)> = Vec::new();
        let mut out_drivers: Vec<(ProcPortId, Net)> = Vec::new();
        for c in &proc.connections {
            let source = ctx.resolve_netref(&c.source)?;
            match &c.target {
                hdl::ConnTarget::InstPort { inst, port } => {
                    let Some(&iid) = inst_index.get(inst) else {
                        return err(format!("connection targets unknown instance `{inst}`"));
                    };
                    let def = &self.defs[insts[iid.0 as usize].def.0 as usize];
                    let Some(pidx) = def.port_idx(port) else {
                        return err(format!("connection targets unknown port `{inst}.{port}`"));
                    };
                    let pdef = &def.ports[pidx];
                    if pdef.dir == PortDir::Out {
                        return err(format!(
                            "connection target `{inst}.{port}` is an output port"
                        ));
                    }
                    // Narrower sources are implicitly zero-extended (the
                    // hardware pads immediate fields onto wider data paths);
                    // wider sources are an error.
                    let sw = ctx.net_width(&source);
                    if sw != 0 && sw > pdef.width {
                        return err(format!(
                            "width mismatch: `{inst}.{port}` is {} bits but source is {sw} bits",
                            pdef.width
                        ));
                    }
                    if let Net::Const(v) = source {
                        if pdef.width < 64 && v >= 1u64 << pdef.width {
                            return err(format!(
                                "constant {v} does not fit port `{inst}.{port}` ({} bits)",
                                pdef.width
                            ));
                        }
                    }
                    conn_drivers.push((iid, pidx, source));
                }
                hdl::ConnTarget::ProcPort(name) => {
                    let Some(&pid) = port_index.get(name) else {
                        return err(format!(
                            "connection targets unknown processor port `{name}`"
                        ));
                    };
                    let pp = &proc_ports[pid.0 as usize];
                    if pp.dir != PortDir::Out {
                        return err(format!(
                            "processor port `{name}` is an input and cannot be a connection target"
                        ));
                    }
                    let sw = ctx.net_width(&source);
                    if sw != 0 && sw > pp.width {
                        return err(format!(
                            "width mismatch: processor port `{name}` is {} bits but source is {sw} bits",
                            pp.width
                        ));
                    }
                    out_drivers.push((pid, source));
                }
            }
        }

        // Apply collected drivers, rejecting double drives.
        for (iid, pidx, net) in conn_drivers {
            let slot = &mut insts[iid.0 as usize].drivers[pidx];
            if slot.is_some() {
                let iname = &insts[iid.0 as usize].name;
                let pname = &self.defs[insts[iid.0 as usize].def.0 as usize].ports[pidx].name;
                return err(format!("port `{iname}.{pname}` is driven more than once"));
            }
            *slot = Some(net);
        }
        for (pid, net) in out_drivers {
            let slot = &mut proc_ports[pid.0 as usize].driver;
            if slot.is_some() {
                return err(format!(
                    "processor port `{}` is driven more than once",
                    proc_ports[pid.0 as usize].name
                ));
            }
            *slot = Some(net);
        }
        for (bid, d) in elaborated_drivers {
            busses[bid.0 as usize].drivers.push(d);
        }

        // Storages.
        let mut storages: Vec<Storage> = Vec::new();
        for (i, inst) in insts.iter().enumerate() {
            let def = &self.defs[inst.def.0 as usize];
            let iid = InstId(i as u32);
            match &def.kind {
                ElabKind::Register { out, .. } => {
                    storages.push(Storage {
                        id: StorageId(storages.len() as u32),
                        inst: iid,
                        name: inst.name.clone(),
                        kind: StorageKind::Register,
                        width: def.ports[*out].width,
                        size: 1,
                        is_mode: inst.is_mode,
                        is_pc: proc.pc.as_ref() == Some(&inst.name),
                    });
                }
                ElabKind::Memory {
                    size,
                    width,
                    reads,
                    writes,
                } => {
                    let kind = if proc.regfiles.contains(&inst.name) {
                        validate_regfile(inst, reads, writes)?;
                        StorageKind::RegFile
                    } else {
                        StorageKind::Memory
                    };
                    storages.push(Storage {
                        id: StorageId(storages.len() as u32),
                        inst: iid,
                        name: inst.name.clone(),
                        kind,
                        width: *width,
                        size: *size,
                        is_mode: false,
                        is_pc: false,
                    });
                }
                ElabKind::Comb { .. } => {}
            }
        }

        if let Some(pc) = &proc.pc {
            if !storages
                .iter()
                .any(|s| s.is_pc && s.kind == StorageKind::Register)
            {
                return err(format!(
                    "pc declaration names `{pc}`, which is not a register instance"
                ));
            }
        }

        Ok(Netlist::new(
            proc.name.clone(),
            proc.iword_width,
            self.defs,
            insts,
            busses,
            proc_ports,
            storages,
        ))
    }
}

/// A declared register file must have every read and write address driven
/// directly by an instruction field: only then is the compiler free to
/// choose the cell (paper's "homogeneous register structure").
fn validate_regfile(
    inst: &Instance,
    reads: &[ElabReadPort],
    writes: &[ElabWritePort],
) -> Result<()> {
    let addr_is_ifield = |addr: &DataExpr| -> bool {
        let DataExpr::Port(p) = addr else {
            return false;
        };
        matches!(
            inst.drivers.get(*p).and_then(|d| d.as_ref()),
            Some(Net::IField { .. })
        )
    };
    if reads.is_empty() || writes.is_empty() {
        return err(format!(
            "register file `{}` must have at least one read and one write port",
            inst.name
        ));
    }
    if reads.iter().all(|r| addr_is_ifield(&r.addr))
        && writes.iter().all(|w| addr_is_ifield(&w.addr))
    {
        Ok(())
    } else {
        err(format!(
            "register file `{}` must be addressed exclusively by instruction fields",
            inst.name
        ))
    }
}

/// Context for resolving processor-level references.
struct NetCtx<'a> {
    defs: &'a [ElabModule],
    insts: &'a [Instance],
    bus_index: &'a BTreeMap<String, BusId>,
    port_index: &'a BTreeMap<String, ProcPortId>,
    proc_ports: &'a [ProcPort],
    inst_index: &'a BTreeMap<String, InstId>,
    iword_width: u16,
}

impl NetCtx<'_> {
    fn resolve_netref(&self, r: &hdl::NetRef) -> Result<Net> {
        match r {
            hdl::NetRef::InstPort { inst, port } => {
                let Some(&iid) = self.inst_index.get(inst) else {
                    return err(format!("unknown instance `{inst}` in net reference"));
                };
                let def = &self.defs[self.insts[iid.0 as usize].def.0 as usize];
                let Some(pidx) = def.port_idx(port) else {
                    return err(format!("unknown port `{inst}.{port}` in net reference"));
                };
                if def.ports[pidx].dir != PortDir::Out {
                    return err(format!(
                        "net reference `{inst}.{port}` must name an output port"
                    ));
                }
                Ok(Net::InstOut {
                    inst: iid,
                    port: pidx,
                })
            }
            hdl::NetRef::Name(name) => {
                if let Some(&bid) = self.bus_index.get(name) {
                    Ok(Net::Bus(bid))
                } else if let Some(&pid) = self.port_index.get(name) {
                    if self.proc_ports[pid.0 as usize].dir != PortDir::In {
                        return err(format!(
                            "processor port `{name}` is an output and cannot be read"
                        ));
                    }
                    Ok(Net::ProcIn(pid))
                } else {
                    err(format!("`{name}` is neither a bus nor a processor port"))
                }
            }
            hdl::NetRef::IField { hi, lo } => {
                if *hi >= self.iword_width {
                    return err(format!(
                        "instruction field I[{hi}:{lo}] exceeds instruction width {}",
                        self.iword_width
                    ));
                }
                Ok(Net::IField { hi: *hi, lo: *lo })
            }
            hdl::NetRef::Const(v) => Ok(Net::Const(*v)),
            hdl::NetRef::Slice { base, hi, lo } => {
                let b = self.resolve_netref(base)?;
                let bw = self.net_width(&b);
                if bw != 0 && *hi >= bw {
                    return err(format!("slice [{hi}:{lo}] exceeds width {bw} of its base"));
                }
                Ok(Net::Slice {
                    base: Box::new(b),
                    hi: *hi,
                    lo: *lo,
                })
            }
        }
    }

    fn net_width(&self, net: &Net) -> u16 {
        match net {
            Net::InstOut { inst, port } => {
                self.defs[self.insts[inst.0 as usize].def.0 as usize].ports[*port].width
            }
            Net::ProcIn(p) => self.proc_ports[p.0 as usize].width,
            Net::IField { hi, lo } => hi - lo + 1,
            Net::Bus(_) => 0, // filled in before drivers exist; callers check
            Net::Const(_) => 0,
            Net::Slice { hi, lo, .. } => hi - lo + 1,
        }
    }

    fn resolve_cond(&self, c: &hdl::Cond) -> Result<BusGuard> {
        Ok(match c {
            hdl::Cond::Cmp { lhs, op, rhs } => BusGuard::Cmp {
                net: self.resolve_netref(lhs)?,
                eq: *op == hdl::CmpOp::Eq,
                value: *rhs,
            },
            hdl::Cond::Not(inner) => BusGuard::Not(Box::new(self.resolve_cond(inner)?)),
            hdl::Cond::And(a, b) => BusGuard::And(
                Box::new(self.resolve_cond(a)?),
                Box::new(self.resolve_cond(b)?),
            ),
            hdl::Cond::Or(a, b) => BusGuard::Or(
                Box::new(self.resolve_cond(a)?),
                Box::new(self.resolve_cond(b)?),
            ),
        })
    }
}

// ---------------------------------------------------------------------------
// Module elaboration
// ---------------------------------------------------------------------------

fn elaborate_module(m: &hdl::ModuleDef) -> Result<ElabModule> {
    let kind = match &m.body {
        ModuleBody::Combinational(stmts) => {
            let mut outputs: BTreeMap<PortIdx, Vec<GuardedExpr>> = BTreeMap::new();
            flatten_stmts(m, stmts, Guard::True, &mut outputs)?;
            ElabKind::Comb {
                outputs: outputs
                    .into_iter()
                    .map(|(port, arms)| OutputBehavior { port, arms })
                    .collect(),
            }
        }
        ModuleBody::Register(r) => {
            let Some(out) = m.ports.iter().position(|p| p.name == r.out) else {
                return err(format!(
                    "register output `{}` is not a port of module `{}`",
                    r.out, m.name
                ));
            };
            if m.ports[out].dir != PortDir::Out {
                return err(format!(
                    "register output `{}` of module `{}` must be an out port",
                    r.out, m.name
                ));
            }
            let input = data_expr(m, &r.input)?;
            check_width(m, &input, m.ports[out].width, &m.name)?;
            let guard = match &r.guard {
                None => Guard::True,
                Some(g) => guard_expr(m, g)?,
            };
            ElabKind::Register { out, input, guard }
        }
        ModuleBody::Memory(mem) => {
            let mut reads = Vec::new();
            for r in &mem.reads {
                let Some(out) = m.ports.iter().position(|p| p.name == r.out) else {
                    return err(format!(
                        "read output `{}` is not a port of module `{}`",
                        r.out, m.name
                    ));
                };
                if m.ports[out].width != mem.width {
                    return err(format!(
                        "read port `{}` of module `{}` has width {} but memory words are {} bits",
                        r.out, m.name, m.ports[out].width, mem.width
                    ));
                }
                reads.push(ElabReadPort {
                    out,
                    addr: data_expr(m, &r.addr)?,
                });
            }
            let mut writes = Vec::new();
            for w in &mem.writes {
                let data = data_expr(m, &w.data)?;
                check_width(m, &data, mem.width, &m.name)?;
                let guard = match &w.guard {
                    None => Guard::True,
                    Some(g) => guard_expr(m, g)?,
                };
                writes.push(ElabWritePort {
                    addr: data_expr(m, &w.addr)?,
                    data,
                    guard,
                });
            }
            ElabKind::Memory {
                size: mem.size,
                width: mem.width,
                reads,
                writes,
            }
        }
    };
    Ok(ElabModule {
        name: m.name.clone(),
        ports: m.ports.clone(),
        kind,
    })
}

fn flatten_stmts(
    m: &hdl::ModuleDef,
    stmts: &[hdl::Stmt],
    guard: Guard,
    out: &mut BTreeMap<PortIdx, Vec<GuardedExpr>>,
) -> Result<()> {
    for stmt in stmts {
        match stmt {
            hdl::Stmt::Assign { port, value } => {
                let Some(pidx) = m.ports.iter().position(|p| p.name == *port) else {
                    return err(format!(
                        "assignment to unknown port `{port}` in module `{}`",
                        m.name
                    ));
                };
                if m.ports[pidx].dir != PortDir::Out {
                    return err(format!(
                        "assignment target `{port}` in module `{}` must be an out port",
                        m.name
                    ));
                }
                let value = data_expr(m, value)?;
                check_width(m, &value, m.ports[pidx].width, &m.name)?;
                out.entry(pidx).or_default().push(GuardedExpr {
                    guard: guard.clone(),
                    value,
                });
            }
            hdl::Stmt::Case {
                selector,
                arms,
                default,
            } => {
                let sel = ctrl_expr(m, selector)?;
                let mut covered = Guard::False;
                for arm in arms {
                    let mut arm_guard = Guard::False;
                    for &label in &arm.labels {
                        arm_guard = arm_guard.or(Guard::Cmp {
                            sel: sel.clone(),
                            value: label,
                        });
                    }
                    covered = covered.clone().or(arm_guard.clone());
                    flatten_stmts(m, &arm.body, guard.clone().and(arm_guard), out)?;
                }
                if let Some(body) = default {
                    let default_guard = Guard::Not(Box::new(covered));
                    flatten_stmts(m, body, guard.clone().and(default_guard), out)?;
                }
            }
        }
    }
    Ok(())
}

/// Converts a behavioural expression into a [`DataExpr`] over input ports.
fn data_expr(m: &hdl::ModuleDef, e: &hdl::Expr) -> Result<DataExpr> {
    Ok(match e {
        hdl::Expr::Port(name) => {
            let Some(pidx) = m.ports.iter().position(|p| p.name == *name) else {
                return err(format!(
                    "unknown port `{name}` in expression in module `{}`",
                    m.name
                ));
            };
            match m.ports[pidx].dir {
                PortDir::In => DataExpr::Port(pidx),
                PortDir::Ctrl => {
                    return err(format!(
                        "control port `{name}` of module `{}` used as data",
                        m.name
                    ))
                }
                PortDir::Out => {
                    return err(format!(
                        "output port `{name}` of module `{}` read in expression",
                        m.name
                    ))
                }
            }
        }
        hdl::Expr::Const(v) => DataExpr::Const(*v),
        hdl::Expr::Slice { base, hi, lo } => DataExpr::Slice {
            base: Box::new(data_expr(m, base)?),
            hi: *hi,
            lo: *lo,
        },
        hdl::Expr::Unary { op, arg } => {
            if *op == UnOp::LogicNot {
                return err(format!("`!` is only valid in guards (module `{}`)", m.name));
            }
            DataExpr::Unary {
                op: *op,
                arg: Box::new(data_expr(m, arg)?),
            }
        }
        hdl::Expr::Binary { op, lhs, rhs } => DataExpr::Binary {
            op: *op,
            lhs: Box::new(data_expr(m, lhs)?),
            rhs: Box::new(data_expr(m, rhs)?),
        },
    })
}

/// Converts an expression into a [`CtrlExpr`] over control ports.
fn ctrl_expr(m: &hdl::ModuleDef, e: &hdl::Expr) -> Result<CtrlExpr> {
    Ok(match e {
        hdl::Expr::Port(name) => {
            let Some(pidx) = m.ports.iter().position(|p| p.name == *name) else {
                return err(format!(
                    "unknown port `{name}` in selector in module `{}`",
                    m.name
                ));
            };
            if m.ports[pidx].dir != PortDir::Ctrl {
                return err(format!(
                    "case selector / guard in module `{}` must use control ports, but `{name}` is {:?}",
                    m.name, m.ports[pidx].dir
                ));
            }
            CtrlExpr::Port(pidx)
        }
        hdl::Expr::Const(v) => CtrlExpr::Const(*v),
        hdl::Expr::Slice { base, hi, lo } => CtrlExpr::Slice {
            base: Box::new(ctrl_expr(m, base)?),
            hi: *hi,
            lo: *lo,
        },
        other => {
            return err(format!(
                "unsupported selector expression {:?} in module `{}`",
                other, m.name
            ))
        }
    })
}

/// Builds the guard for a comparison of `sel` against constant `value`.
///
/// Comparisons of a bare *data* input port become [`Guard::DataCmp`]: a
/// runtime condition (the branch-if-zero idiom of PC update paths) rather
/// than a decodable instruction-word condition.
fn guard_cmp(m: &hdl::ModuleDef, sel: &hdl::Expr, value: u64) -> Result<Guard> {
    if let hdl::Expr::Port(name) = sel {
        if let Some(pidx) = m.ports.iter().position(|p| p.name == *name) {
            if m.ports[pidx].dir == PortDir::In {
                return Ok(Guard::DataCmp { port: pidx, value });
            }
        }
    }
    Ok(Guard::Cmp {
        sel: ctrl_expr(m, sel)?,
        value,
    })
}

/// Converts a `when` expression into a [`Guard`].
fn guard_expr(m: &hdl::ModuleDef, e: &hdl::Expr) -> Result<Guard> {
    Ok(match e {
        hdl::Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } => match (&**lhs, &**rhs) {
            (l, hdl::Expr::Const(v)) => guard_cmp(m, l, *v)?,
            (hdl::Expr::Const(v), r) => guard_cmp(m, r, *v)?,
            _ => {
                return err(format!(
                    "guard comparison must be against a constant (module `{}`)",
                    m.name
                ))
            }
        },
        hdl::Expr::Binary {
            op: BinOp::Ne,
            lhs,
            rhs,
        } => {
            let inner = guard_expr(
                m,
                &hdl::Expr::Binary {
                    op: BinOp::Eq,
                    lhs: lhs.clone(),
                    rhs: rhs.clone(),
                },
            )?;
            Guard::Not(Box::new(inner))
        }
        hdl::Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => guard_expr(m, lhs)?.and(guard_expr(m, rhs)?),
        hdl::Expr::Binary {
            op: BinOp::Or,
            lhs,
            rhs,
        } => guard_expr(m, lhs)?.or(guard_expr(m, rhs)?),
        hdl::Expr::Unary {
            op: UnOp::LogicNot,
            arg,
        } => Guard::Not(Box::new(guard_expr(m, arg)?)),
        hdl::Expr::Port(_) | hdl::Expr::Slice { .. } => Guard::Cmp {
            sel: ctrl_expr(m, e)?,
            value: 1,
        },
        hdl::Expr::Const(v) => {
            if *v != 0 {
                Guard::True
            } else {
                Guard::False
            }
        }
        other => {
            return err(format!(
                "unsupported guard expression {:?} in module `{}`",
                other, m.name
            ))
        }
    })
}

// ---------------------------------------------------------------------------
// Width checking
// ---------------------------------------------------------------------------

/// Returns the width of `e` in bits, or 0 if width-polymorphic (constants).
fn expr_width(m: &hdl::ModuleDef, e: &DataExpr) -> u16 {
    match e {
        DataExpr::Port(p) => m.ports[*p].width,
        DataExpr::Const(_) => 0,
        DataExpr::Slice { hi, lo, .. } => hi - lo + 1,
        DataExpr::Unary { arg, .. } => expr_width(m, arg),
        DataExpr::Binary { op, lhs, rhs } => match op {
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 1,
            BinOp::Shl | BinOp::Shr => expr_width(m, lhs),
            _ => {
                let lw = expr_width(m, lhs);
                if lw != 0 {
                    lw
                } else {
                    expr_width(m, rhs)
                }
            }
        },
    }
}

/// Checks that `e` can drive a sink of width `want`.
///
/// Multiplication results may also be twice the operand width (paper's DSP
/// datapaths keep double-width products in a dedicated register).
fn check_width(m: &hdl::ModuleDef, e: &DataExpr, want: u16, module: &str) -> Result<()> {
    let got = expr_width(m, e);
    if got == 0 || got == want {
        return Ok(());
    }
    if let DataExpr::Binary { op: BinOp::Mul, .. } = e {
        if got * 2 == want {
            return Ok(());
        }
    }
    err(format!(
        "width mismatch in module `{module}`: expression is {got} bits but sink wants {want}"
    ))
}
