use crate::*;
use record_hdl::PortDir;

fn elab(src: &str) -> Result<Netlist, NetlistError> {
    let model = record_hdl::parse(src).expect("test HDL must parse");
    elaborate(&model)
}

const ACC_MACHINE: &str = r#"
    module Alu {
        in a: bit(8);
        in b: bit(8);
        ctrl f: bit(2);
        out y: bit(8);
        behavior {
            case f {
                0 => y = a + b;
                1 => y = a - b;
                2 => y = a & b;
                default => y = a;
            }
        }
    }
    module Acc {
        in d: bit(8);
        ctrl en: bit(1);
        out q: bit(8);
        register q = d when en == 1;
    }
    module Ram {
        in addr: bit(4);
        in din: bit(8);
        ctrl w: bit(1);
        out dout: bit(8);
        memory cells[16]: bit(8);
        read dout = cells[addr];
        write cells[addr] = din when w == 1;
    }
    processor AccMachine {
        instruction word: bit(8);
        in pin: bit(8);
        out pout: bit(8);
        parts {
            alu: Alu;
            acc: Acc;
            ram: Ram;
        }
        connections {
            alu.a = acc.q;
            alu.b = ram.dout;
            alu.f = I[1:0];
            acc.d = alu.y;
            acc.en = I[7];
            ram.addr = I[5:2];
            ram.din = acc.q;
            ram.w = I[6];
            pout = acc.q;
        }
    }
"#;

#[test]
fn elaborates_acc_machine() {
    let n = elab(ACC_MACHINE).unwrap();
    assert_eq!(n.name(), "AccMachine");
    assert_eq!(n.iword_width(), 8);
    assert_eq!(n.insts().len(), 3);
    assert_eq!(n.storages().len(), 2);
    let acc = n.storage_by_name("acc").unwrap();
    assert_eq!(acc.kind, StorageKind::Register);
    assert_eq!(acc.width, 8);
    let ram = n.storage_by_name("ram").unwrap();
    assert_eq!(ram.kind, StorageKind::Memory);
    assert_eq!(ram.size, 16);
}

#[test]
fn case_flattening_produces_guarded_arms() {
    let n = elab(ACC_MACHINE).unwrap();
    let alu = n.inst_by_name("alu").unwrap();
    let def = n.def_of(alu);
    let ElabKind::Comb { outputs } = &def.kind else {
        panic!("alu must be combinational");
    };
    assert_eq!(outputs.len(), 1);
    // 3 labelled arms + default
    assert_eq!(outputs[0].arms.len(), 4);
    // Default arm's guard is the negation of the labelled cover.
    assert!(matches!(outputs[0].arms[3].guard, Guard::Not(_)));
}

#[test]
fn drivers_resolved() {
    let n = elab(ACC_MACHINE).unwrap();
    let alu = n.inst_by_name("alu").unwrap();
    let def = n.def_of(alu);
    let a = def.port_idx("a").unwrap();
    let acc = n.inst_by_name("acc").unwrap();
    let q = n.def_of(acc).port_idx("q").unwrap();
    assert_eq!(
        n.driver_of(alu, a),
        Some(&Net::InstOut { inst: acc, port: q })
    );
    let f = def.port_idx("f").unwrap();
    assert_eq!(n.driver_of(alu, f), Some(&Net::IField { hi: 1, lo: 0 }));
}

#[test]
fn proc_out_port_driver() {
    let n = elab(ACC_MACHINE).unwrap();
    let pout = n
        .proc_ports()
        .iter()
        .find(|p| p.name == "pout")
        .expect("pout exists");
    assert_eq!(pout.dir, PortDir::Out);
    assert!(pout.driver.is_some());
}

#[test]
fn regfile_classification() {
    let src = r#"
        module Rf {
            in waddr: bit(2);
            in raddr: bit(2);
            in din: bit(8);
            ctrl w: bit(1);
            out dout: bit(8);
            memory cells[4]: bit(8);
            read dout = cells[raddr];
            write cells[waddr] = din when w == 1;
        }
        processor P {
            instruction word: bit(8);
            in pin: bit(8);
            parts { rf: Rf; }
            regfiles { rf }
            connections {
                rf.raddr = I[1:0];
                rf.waddr = I[3:2];
                rf.din = pin;
                rf.w = I[4];
            }
        }
    "#;
    let n = elab(src).unwrap();
    assert_eq!(n.storage_by_name("rf").unwrap().kind, StorageKind::RegFile);
}

#[test]
fn rejects_regfile_with_computed_address() {
    let src = r#"
        module Ar { in d: bit(4); ctrl en: bit(1); out q: bit(4);
                    register q = d when en == 1; }
        module Rf {
            in addr: bit(4);
            in din: bit(8);
            ctrl w: bit(1);
            out dout: bit(8);
            memory cells[16]: bit(8);
            read dout = cells[addr];
            write cells[addr] = din when w == 1;
        }
        processor P {
            instruction word: bit(8);
            in pin: bit(8);
            parts { ar: Ar; rf: Rf; }
            regfiles { rf }
            connections {
                ar.d = I[3:0];
                ar.en = I[7];
                rf.addr = ar.q;
                rf.din = pin;
                rf.w = I[6];
            }
        }
    "#;
    let e = elab(src).unwrap_err();
    assert!(e.message().contains("addressed exclusively"));
}

#[test]
fn memory_with_register_address_is_not_regfile() {
    let src = r#"
        module Ar { in d: bit(4); ctrl en: bit(1); out q: bit(4);
                    register q = d when en == 1; }
        module Ram {
            in addr: bit(4);
            in din: bit(8);
            ctrl w: bit(1);
            out dout: bit(8);
            memory cells[16]: bit(8);
            read dout = cells[addr];
            write cells[addr] = din when w == 1;
        }
        processor P {
            instruction word: bit(8);
            in pin: bit(8);
            parts { ar: Ar; ram: Ram; }
            connections {
                ar.d = I[3:0];
                ar.en = I[7];
                ram.addr = ar.q;
                ram.din = pin;
                ram.w = I[6];
            }
        }
    "#;
    let n = elab(src).unwrap();
    assert_eq!(n.storage_by_name("ram").unwrap().kind, StorageKind::Memory);
}

#[test]
fn mode_register_flag() {
    let src = r#"
        module M { in d: bit(1); ctrl en: bit(1); out q: bit(1);
                   register q = d when en == 1; }
        processor P {
            instruction word: bit(4);
            parts { st: M; }
            modes { st }
            connections { st.d = I[0]; st.en = I[1]; }
        }
    "#;
    let n = elab(src).unwrap();
    let st = n.storage_by_name("st").unwrap();
    assert!(st.is_mode);
    assert_eq!(st.kind, StorageKind::Register);
}

#[test]
fn bus_drivers_elaborated() {
    let src = r#"
        module R { in d: bit(8); ctrl en: bit(1); out q: bit(8);
                   register q = d when en == 1; }
        processor P {
            instruction word: bit(4);
            in pin: bit(8);
            bus dbus: bit(8);
            parts { r1: R; r2: R; }
            connections {
                drive dbus = r1.q when I[0] == 0;
                drive dbus = pin when I[0] == 1;
                r1.d = dbus; r1.en = I[1];
                r2.d = dbus; r2.en = I[2];
            }
        }
    "#;
    let n = elab(src).unwrap();
    assert_eq!(n.busses().len(), 1);
    let bus = &n.busses()[0];
    assert_eq!(bus.drivers.len(), 2);
    assert!(matches!(bus.drivers[0].guard, BusGuard::Cmp { .. }));
}

// ------------------------------ error paths -------------------------------

#[test]
fn rejects_unknown_module() {
    let src = r#"
        processor P { instruction word: bit(4); parts { x: Nope; } connections { } }
    "#;
    let e = elab(src).unwrap_err();
    assert!(e.message().contains("unknown module"));
}

#[test]
fn rejects_double_drive() {
    let src = r#"
        module R { in d: bit(4); out q: bit(4); register q = d; }
        processor P {
            instruction word: bit(4);
            parts { r: R; }
            connections { r.d = I[3:0]; r.d = I[3:0]; }
        }
    "#;
    let e = elab(src).unwrap_err();
    assert!(e.message().contains("driven more than once"));
}

#[test]
fn rejects_width_mismatch() {
    let src = r#"
        module R { in d: bit(4); out q: bit(4); register q = d; }
        processor P {
            instruction word: bit(8);
            parts { r: R; }
            connections { r.d = I[7:0]; }
        }
    "#;
    let e = elab(src).unwrap_err();
    assert!(e.message().contains("width mismatch"));
}

#[test]
fn rejects_ctrl_port_as_data() {
    let src = r#"
        module Bad { ctrl c: bit(4); out y: bit(4); behavior { y = c; } }
        processor P { instruction word: bit(4); parts { b: Bad; } connections { } }
    "#;
    let e = elab(src).unwrap_err();
    assert!(e.message().contains("used as data"));
}

#[test]
fn rejects_data_port_as_selector() {
    let src = r#"
        module Bad { in a: bit(4); in s: bit(1); out y: bit(4);
                     behavior { case s { 0 => y = a; 1 => y = a + 1; } } }
        processor P { instruction word: bit(4); parts { b: Bad; } connections { } }
    "#;
    let e = elab(src).unwrap_err();
    assert!(e.message().contains("control ports"));
}

#[test]
fn rejects_ifield_out_of_range() {
    let src = r#"
        module R { in d: bit(4); out q: bit(4); register q = d; }
        processor P {
            instruction word: bit(4);
            parts { r: R; }
            connections { r.d = I[7:4]; }
        }
    "#;
    let e = elab(src).unwrap_err();
    assert!(e.message().contains("exceeds instruction width"));
}

#[test]
fn rejects_mode_on_non_register() {
    let src = r#"
        module C { in a: bit(4); out y: bit(4); behavior { y = a; } }
        processor P {
            instruction word: bit(4);
            parts { c: C; }
            modes { c }
            connections { }
        }
    "#;
    let e = elab(src).unwrap_err();
    assert!(e.message().contains("not a register"));
}

#[test]
fn rejects_constant_too_wide_for_port() {
    let src = r#"
        module R { in d: bit(4); out q: bit(4); register q = d; }
        processor P {
            instruction word: bit(4);
            parts { r: R; }
            connections { r.d = 255; }
        }
    "#;
    let e = elab(src).unwrap_err();
    assert!(e.message().contains("does not fit"));
}

#[test]
fn guard_and_or_folding() {
    assert_eq!(Guard::True.and(Guard::True), Guard::True);
    assert_eq!(Guard::False.or(Guard::False), Guard::False);
    let cmp = Guard::Cmp {
        sel: CtrlExpr::Port(0),
        value: 1,
    };
    assert_eq!(Guard::True.and(cmp.clone()), cmp.clone());
    assert_eq!(Guard::False.and(cmp.clone()), Guard::False);
    assert_eq!(Guard::False.or(cmp.clone()), cmp.clone());
    assert_eq!(Guard::True.or(cmp), Guard::True);
}
