//! Elaboration errors.

use std::error::Error;
use std::fmt;

/// An error raised while elaborating an HDL model into a netlist.
///
/// The message names the offending construct (instance, port, bus) so model
/// authors can locate it in the HDL source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistError {
    message: String,
}

impl NetlistError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        NetlistError {
            message: message.into(),
        }
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error: {}", self.message)
    }
}

impl Error for NetlistError {}
