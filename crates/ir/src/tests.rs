use crate::*;
use proptest::prelude::*;
use record_rtl::OpKind;

#[test]
fn parses_globals_and_function() {
    let src = "int x; int a[16], b[16]; void f() { int i; x = a[0] + b[1]; }";
    let p = parse(src).unwrap();
    assert_eq!(p.globals.len(), 3);
    assert_eq!(p.global("a").unwrap().size, Some(16));
    let f = p.function("f").unwrap();
    assert_eq!(f.locals.len(), 1);
    assert_eq!(f.body.len(), 1);
}

#[test]
fn compound_assignment_desugars() {
    let src = "int x, y; void f() { x += y; }";
    let p = parse(src).unwrap();
    let Stmt::Assign { value, .. } = &p.function("f").unwrap().body[0] else {
        panic!()
    };
    assert_eq!(
        *value,
        Expr::Binary(
            OpKind::Add,
            Box::new(Expr::Var("x".into())),
            Box::new(Expr::Var("y".into()))
        )
    );
}

#[test]
fn parses_for_loop_forms() {
    for step in ["i++", "i += 2", "i = i + 1"] {
        let src =
            format!("int a[8]; void f() {{ int i; for (i = 0; i < 8; {step}) {{ a[i] = 0; }} }}");
        let p = parse(&src).unwrap();
        let Stmt::For { start, bound, .. } = &p.function("f").unwrap().body[0] else {
            panic!("expected for loop");
        };
        assert_eq!(*start, 0);
        assert_eq!(*bound, Expr::Const(8));
    }
}

#[test]
fn precedence_matches_c() {
    let src = "int x, a, b, c; void f() { x = a + b * c; }";
    let p = parse(src).unwrap();
    let Stmt::Assign { value, .. } = &p.function("f").unwrap().body[0] else {
        panic!()
    };
    let Expr::Binary(OpKind::Add, _, rhs) = value else {
        panic!("expected + at root, got {value:?}")
    };
    assert!(matches!(**rhs, Expr::Binary(OpKind::Mul, _, _)));
}

#[test]
fn negative_literals_fold() {
    let src = "int x; void f() { x = -5; }";
    let p = parse(src).unwrap();
    let Stmt::Assign { value, .. } = &p.function("f").unwrap().body[0] else {
        panic!()
    };
    assert_eq!(*value, Expr::Const(-5));
}

#[test]
fn comments_are_skipped() {
    let src = "int x; // line\n/* block\n comment */ void f() { x = 1; }";
    assert!(parse(src).is_ok());
}

#[test]
fn lower_unrolls_loops() {
    let src =
        "int a[4], b[4], s; void f() { int i; for (i = 0; i < 4; i++) { s += a[i] * b[i]; } }";
    let p = parse(src).unwrap();
    let flat = lower(&p, "f").unwrap();
    assert_eq!(flat.len(), 4);
    // Third statement reads a[2] and b[2].
    let FlatExpr::Binary(OpKind::Add, _, rhs) = &flat[2].value else {
        panic!()
    };
    let FlatExpr::Binary(OpKind::Mul, a, b) = &**rhs else {
        panic!()
    };
    assert_eq!(
        **a,
        FlatExpr::Load(Ref {
            name: "a".into(),
            offset: 2
        })
    );
    assert_eq!(
        **b,
        FlatExpr::Load(Ref {
            name: "b".into(),
            offset: 2
        })
    );
}

#[test]
fn lower_folds_index_arithmetic() {
    // Convolution-style reversed indexing.
    let src =
        "int h[4], x[4], y; void f() { int i; for (i = 0; i < 4; i++) { y += h[i] * x[3 - i]; } }";
    let p = parse(src).unwrap();
    let flat = lower(&p, "f").unwrap();
    let FlatExpr::Binary(_, _, rhs) = &flat[0].value else {
        panic!()
    };
    let FlatExpr::Binary(_, _, x) = &**rhs else {
        panic!()
    };
    assert_eq!(
        **x,
        FlatExpr::Load(Ref {
            name: "x".into(),
            offset: 3
        })
    );
}

#[test]
fn lower_rejects_dynamic_index() {
    let src = "int a[4], j, x; void f() { x = a[j]; }";
    let p = parse(src).unwrap();
    let e = lower(&p, "f").unwrap_err();
    assert!(e.message().contains("does not fold"));
}

#[test]
fn lower_rejects_out_of_bounds() {
    let src = "int a[4], x; void f() { x = a[7]; }";
    let p = parse(src).unwrap();
    let e = lower(&p, "f").unwrap_err();
    assert!(e.message().contains("out of bounds"));
}

#[test]
fn lower_rejects_undeclared() {
    let src = "int x; void f() { x = q; }";
    let p = parse(src).unwrap();
    let e = lower(&p, "f").unwrap_err();
    assert!(e.message().contains("undeclared"));
}

#[test]
fn loop_budget_guards_explosion() {
    let src = "int x; void f() { int i, j; for (i = 0; i < 100; i++) { for (j = 0; j < 100; j++) { x += 1; } } }";
    let p = parse(src).unwrap();
    let e = lower(&p, "f").unwrap_err();
    assert!(e.message().contains("4096"));
}

#[test]
fn interp_dot_product() {
    let src = "int a[4], b[4], s; void f() { int i; s = 0; for (i = 0; i < 4; i++) { s += a[i] * b[i]; } }";
    let p = parse(src).unwrap();
    let mut mem = Memory::new();
    mem.insert("a".into(), vec![1, 2, 3, 4]);
    mem.insert("b".into(), vec![5, 6, 7, 8]);
    interp(&p, "f", &mut mem, 16).unwrap();
    assert_eq!(mem["s"][0], 5 + 12 + 21 + 32);
}

#[test]
fn interp_wraps_at_width() {
    let src = "int x; void f() { x = 30000 + 30000; }";
    let p = parse(src).unwrap();
    let mut mem = Memory::new();
    interp(&p, "f", &mut mem, 16).unwrap();
    assert_eq!(mem["x"][0], 60000 & 0xFFFF);
}

#[test]
fn parse_error_positions() {
    let e = parse("int x;\nvoid f() { x = ; }").unwrap_err();
    assert_eq!(e.line(), 2);
}

// ---------------------------------------------------------------------------
// Property: for loop-free programs, interpretation of the AST agrees with
// evaluation of the lowered flat statements — lowering preserves semantics.
// ---------------------------------------------------------------------------

fn eval_flat(e: &FlatExpr, mem: &Memory, width: u16) -> u64 {
    let m: u64 = if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    match e {
        FlatExpr::Const(c) => (*c as u64) & m,
        FlatExpr::Load(r) => mem[&r.name][r.offset as usize],
        FlatExpr::Unary(op, a) => op.eval(&[eval_flat(a, mem, width)], width),
        FlatExpr::Binary(op, a, b) => {
            op.eval(&[eval_flat(a, mem, width), eval_flat(b, mem, width)], width)
        }
    }
}

proptest! {
    #[test]
    fn lowering_preserves_semantics(
        vals in prop::collection::vec(0u64..0xFFFF, 8),
        n in 1usize..5,
    ) {
        // s += a[i] * b[i] over a loop of n iterations.
        let src = format!(
            "int a[8], b[8], s; void f() {{ int i; for (i = 0; i < {n}; i++) {{ s += a[i] * b[i]; }} }}"
        );
        let p = parse(&src).unwrap();

        // Oracle: interpret the AST.
        let mut mem1 = Memory::new();
        mem1.insert("a".into(), vals[..4].iter().map(|v| v & 0xFFFF).collect::<Vec<_>>().into_iter().chain([0;4]).collect());
        mem1.insert("b".into(), vals[4..].iter().map(|v| v & 0xFFFF).collect::<Vec<_>>().into_iter().chain([0;4]).collect());
        interp(&p, "f", &mut mem1, 16).unwrap();

        // Lowered: evaluate flat statements sequentially.
        let flat = lower(&p, "f").unwrap();
        let mut mem2 = Memory::new();
        mem2.insert("a".into(), mem1["a"].clone());
        // a was mutated? no — only s is written; copy initial values again:
        mem2.insert("a".into(), vals[..4].iter().map(|v| v & 0xFFFF).collect::<Vec<_>>().into_iter().chain([0;4]).collect());
        mem2.insert("b".into(), vals[4..].iter().map(|v| v & 0xFFFF).collect::<Vec<_>>().into_iter().chain([0;4]).collect());
        mem2.insert("s".into(), vec![0]);
        mem2.insert("i".into(), vec![0]);
        for st in &flat {
            let v = eval_flat(&st.value, &mem2, 16);
            let cells = mem2.get_mut(&st.target.name).unwrap();
            cells[st.target.offset as usize] = v;
        }
        prop_assert_eq!(mem1["s"][0], mem2["s"][0]);
    }
}

// ---------------------------------------------------------------------------
// Robustness regressions from the differential fuzzer (record-fuzz): these
// inputs used to panic, hang, or silently miscompile.
// ---------------------------------------------------------------------------

#[test]
fn width_dependent_constants_are_not_folded() {
    // `(-1) >> (-1)` folds to 1 in 64-bit arithmetic but evaluates to 0 at
    // any machine width — lowering must leave it to the hardware.
    let p = parse("int x; void f() { x = (0 - 1) >> (0 - 1); }").unwrap();
    let flat = lower(&p, "f").unwrap();
    assert!(
        matches!(flat[0].value, FlatExpr::Binary(OpKind::Shr, ..)),
        "width-dependent op must stay symbolic, got {:?}",
        flat[0].value
    );

    // Mask-commuting arithmetic still folds (index shapes like `N-1-i`).
    let p = parse("int x; void f() { x = 5 - 3 + 2 * 4; }").unwrap();
    let flat = lower(&p, "f").unwrap();
    assert_eq!(flat[0].value, FlatExpr::Const(10));
}

#[test]
fn width_dependent_index_is_rejected_structurally() {
    let p = parse("int x; int a[4]; void f() { x = a[6 / 2]; }").unwrap();
    let e = lower(&p, "f").unwrap_err();
    assert!(
        e.to_string().contains("width-dependent"),
        "expected structured rejection, got: {e}"
    );
}

#[test]
fn extreme_constant_folds_do_not_overflow() {
    // i64::MIN / -1 and -i64::MIN overflow naive folding; both appear in
    // loop-bound constant expressions, which fold at parse time.
    for src in [
        "void f() { int i; for (i = (0 - 9223372036854775807 - 1) / (0 - 1); i < 2; i++) { } }",
        "void f() { int i; for (i = (0 - 9223372036854775807 - 1) % (0 - 1); i < 2; i++) { } }",
        "void f() { int i; for (i = -(0 - 9223372036854775807 - 1); i < 2; i++) { } }",
    ] {
        let _ = parse(src); // must not panic (Ok or structured error both fine)
    }
}

#[test]
fn loop_counter_overflow_terminates() {
    // A counter that saturates at i64::MAX must stop, not overflow: with
    // `<=` the continuation test alone never fails.
    let max = i64::MAX;
    let src = format!(
        "int x; void f() {{ int i; for (i = {}; i <= {max}; i++) {{ x = x + 1; }} }}",
        max - 1
    );
    let p = parse(&src).unwrap();
    let mut mem = Memory::new();
    interp(&p, "f", &mut mem, 16).unwrap();
    assert_eq!(mem["x"][0], 2, "two iterations then saturation");
    // Lowering hits the same saturation (unroll budget allows 2 here).
    let flat = lower(&p, "f").unwrap();
    assert_eq!(flat.len(), 2);
}

#[test]
fn interpreter_budget_bounds_huge_loops() {
    let src = "int x; void f() { int i; for (i = 0; i < 9223372036854775807; i++) { x = x + 1; } }";
    let p = parse(src).unwrap();
    let mut mem = Memory::new();
    let e = interp(&p, "f", &mut mem, 16).unwrap_err();
    assert!(e.to_string().contains("budget"), "got: {e}");
}

#[test]
fn non_positive_step_is_rejected_by_interp() {
    // The parser forbids this; a hand-built AST must still not hang.
    let p = Program {
        globals: vec![VarDecl {
            name: "i".into(),
            size: None,
        }],
        functions: vec![Function {
            name: "f".into(),
            locals: vec![],
            body: vec![Stmt::For {
                var: "i".into(),
                start: 0,
                bound: Expr::Const(10),
                le: false,
                step: 0,
                body: vec![],
                span: Span::default(),
            }],
        }],
    };
    let mut mem = Memory::new();
    let e = interp(&p, "f", &mut mem, 16).unwrap_err();
    assert!(e.to_string().contains("step"), "got: {e}");
}
