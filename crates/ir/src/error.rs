//! Frontend errors.

use std::error::Error;
use std::fmt;

/// A mini-C frontend error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CError {
    line: u32,
    col: u32,
    message: String,
}

impl CError {
    pub(crate) fn new(line: u32, col: u32, message: impl Into<String>) -> Self {
        CError {
            line,
            col,
            message: message.into(),
        }
    }

    /// 1-based source line.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// 1-based source column.
    pub fn column(&self) -> u32 {
        self.col
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for CError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mini-C error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for CError {}
