//! Mini-C frontend: the source language of the compiler.
//!
//! The paper evaluates RECORD on *basic program blocks* from the DSPstone
//! benchmark suite — small fixed-point C kernels (FIR, biquad, dot product,
//! convolution, complex arithmetic).  This crate implements the C subset
//! those kernels need:
//!
//! * global `int` scalars and one-dimensional arrays,
//! * one or more `void` functions with straight-line assignments,
//! * compound assignment sugar (`+=`, `-=`, ...),
//! * counted `for` loops with constant bounds (fully unrolled during
//!   lowering, matching the paper's basic-block evaluation),
//! * the usual integer expression operators.
//!
//! Lowering produces destination-annotated flat statements whose leaves are
//! scalar/array-element references with constant offsets — exactly the shape
//! code selection consumes after variables are bound to storage locations.
//! A reference [`interp`] interpreter provides the semantic oracle used by
//! codegen correctness tests.
//!
//! # Example
//!
//! ```
//! let src = "int x; int a[4]; void f() { x = a[0] + a[1]; }";
//! let prog = record_ir::parse(src)?;
//! let flat = record_ir::lower(&prog, "f")?;
//! assert_eq!(flat.len(), 1);
//! # Ok::<(), record_ir::CError>(())
//! ```

mod ast;
mod error;
mod interp;
mod lower;
mod parser;

pub use ast::*;
pub use error::CError;
pub use interp::{interp, Memory};
pub use lower::{lower, lower_cfg, Block, Cfg, FlatExpr, FlatStmt, Ref, Terminator};

/// Parses a mini-C translation unit.
///
/// # Errors
///
/// Returns [`CError`] with line/column info on malformed source.
pub fn parse(source: &str) -> Result<Program, CError> {
    parser::parse(source)
}

#[cfg(test)]
mod tests;
