//! Mini-C abstract syntax.

use record_rtl::OpKind;

/// A translation unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Global variable declarations.
    pub globals: Vec<VarDecl>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a global (or, via [`lower`](crate::lower), local) variable.
    pub fn global(&self, name: &str) -> Option<&VarDecl> {
        self.globals.iter().find(|g| g.name == name)
    }
}

/// `int x;` or `int a[16];`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    pub name: String,
    /// `None` for scalars, `Some(n)` for arrays of `n` words.
    pub size: Option<u64>,
}

impl VarDecl {
    /// Number of words this variable occupies.
    pub fn words(&self) -> u64 {
        self.size.unwrap_or(1)
    }
}

/// A `void` function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    pub name: String,
    /// Local `int` declarations (no initialisers).
    pub locals: Vec<VarDecl>,
    pub body: Vec<Stmt>,
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// A scalar variable.
    Scalar(String),
    /// An array element with an index expression.
    Elem(String, Expr),
}

/// A source position (1-based line and column of the statement's first
/// token), threaded into lowering diagnostics.
///
/// Spans are metadata: two ASTs differing only in positions are the same
/// program, so every span compares equal (generated and re-parsed
/// programs stay structurally `==`).
#[derive(Debug, Clone, Copy, Eq, Default)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl PartialEq for Span {
    fn eq(&self, _: &Span) -> bool {
        true
    }
}

impl Span {
    /// A span at `line`:`col`.
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `lv = expr;` (compound assignments are desugared by the parser).
    Assign {
        target: LValue,
        value: Expr,
        span: Span,
    },
    /// `for (i = start; i < bound; i += step) { ... }` with constant
    /// `start` and `step`; `le` distinguishes `<=` from `<`.  The bound is
    /// an expression: when it folds to a constant the loop is unrolled at
    /// compile time, otherwise it lowers to a CFG loop.
    For {
        var: String,
        start: i64,
        bound: Expr,
        le: bool,
        step: i64,
        body: Vec<Stmt>,
        span: Span,
    },
    /// `if (cond) { ... } else { ... }` — nonzero condition takes the
    /// `then` branch.
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        span: Span,
    },
    /// `while (cond) { ... }` — loops while the condition is nonzero.
    While {
        cond: Expr,
        body: Vec<Stmt>,
        span: Span,
    },
}

impl Stmt {
    /// The statement's source position.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::For { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. } => *span,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    Const(i64),
    /// Scalar variable reference.
    Var(String),
    /// Array element reference.
    Elem(String, Box<Expr>),
    Unary(OpKind, Box<Expr>),
    Binary(OpKind, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Constant-folds the expression given a valuation for loop variables.
    /// Returns `None` if the expression is not constant under `env`.
    pub fn fold(&self, env: &dyn Fn(&str) -> Option<i64>) -> Option<i64> {
        match self {
            Expr::Const(c) => Some(*c),
            Expr::Var(v) => env(v),
            Expr::Elem(..) => None,
            Expr::Unary(op, a) => {
                let a = a.fold(env)?;
                Some(match op {
                    // Wrapping: `-i64::MIN` must fold, not overflow.
                    OpKind::Neg => a.wrapping_neg(),
                    OpKind::Not => !a,
                    _ => return None,
                })
            }
            Expr::Binary(op, a, b) => {
                let a = a.fold(env)?;
                let b = b.fold(env)?;
                Some(match op {
                    OpKind::Add => a.wrapping_add(b),
                    OpKind::Sub => a.wrapping_sub(b),
                    OpKind::Mul => a.wrapping_mul(b),
                    // Wrapping: `i64::MIN / -1` must fold, not overflow.
                    OpKind::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    OpKind::Rem => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    OpKind::And => a & b,
                    OpKind::Or => a | b,
                    OpKind::Xor => a ^ b,
                    OpKind::Shl => a.wrapping_shl(b as u32),
                    OpKind::Shr => ((a as u64) >> (b as u32 & 63)) as i64,
                    _ => return None,
                })
            }
        }
    }
}
