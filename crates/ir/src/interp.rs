//! Reference interpreter: the semantic oracle for codegen tests.

use crate::ast::*;
use crate::error::CError;
use std::collections::BTreeMap;

/// Variable state: one `Vec<u64>` per variable (length 1 for scalars).
/// Values are masked to the machine word width.
pub type Memory = BTreeMap<String, Vec<u64>>;

fn err(msg: impl Into<String>) -> CError {
    CError::new(0, 0, msg)
}

/// Runs `function` of `program` on `memory` with `width`-bit modular
/// arithmetic (the fixed-point semantics shared with the RT simulator).
///
/// Variables missing from `memory` are zero-initialised.
///
/// # Errors
///
/// Returns [`CError`] on undeclared variables or out-of-bounds indices.
pub fn interp(
    program: &Program,
    function: &str,
    memory: &mut Memory,
    width: u16,
) -> Result<(), CError> {
    let Some(f) = program.function(function) else {
        return Err(err(format!("no function `{function}`")));
    };
    for d in program.globals.iter().chain(&f.locals) {
        memory
            .entry(d.name.clone())
            .or_insert_with(|| vec![0; d.words() as usize]);
    }
    // Interpretation must terminate on arbitrary ASTs (the fuzzer feeds
    // this programs no compiler has vetted); generous next to the
    // compiler's 4096-iteration unroll budget.
    let mut fuel = 1u64 << 22;
    run_block(&f.body, memory, width, &mut fuel)
}

fn mask(width: u16) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    }
}

fn run_block(stmts: &[Stmt], mem: &mut Memory, width: u16, fuel: &mut u64) -> Result<(), CError> {
    for s in stmts {
        match s {
            Stmt::Assign { target, value, .. } => {
                let v = eval(value, mem, width)?;
                let (name, off) = match target {
                    LValue::Scalar(n) => (n.clone(), 0u64),
                    LValue::Elem(n, idx) => {
                        let i = eval(idx, mem, width)?;
                        (n.clone(), i)
                    }
                };
                let cells = mem
                    .get_mut(&name)
                    .ok_or_else(|| err(format!("undeclared variable `{name}`")))?;
                let slot = cells
                    .get_mut(off as usize)
                    .ok_or_else(|| err(format!("index {off} out of bounds for `{name}`")))?;
                *slot = v & mask(width);
            }
            Stmt::For {
                var,
                start,
                bound,
                le,
                step,
                body,
                ..
            } => {
                if *step <= 0 {
                    return Err(err(format!(
                        "loop over `{var}` has non-positive step {step}"
                    )));
                }
                // Constant bounds keep the historical 64-bit counted-loop
                // semantics (the counter lives outside the machine word).
                if let Some(b) = bound.fold(&|_| None) {
                    let mut i = *start;
                    loop {
                        let cont = if *le { i <= b } else { i < b };
                        if !cont {
                            break;
                        }
                        *fuel = fuel
                            .checked_sub(1)
                            .ok_or_else(|| err("interpreter iteration budget exhausted"))?;
                        let cells = mem
                            .get_mut(var)
                            .ok_or_else(|| err(format!("undeclared loop variable `{var}`")))?;
                        cells[0] = (i as u64) & mask(width);
                        run_block(body, mem, width, fuel)?;
                        // Counter saturation means the iteration space is
                        // exhausted; stop rather than overflow (mirrors
                        // `lower`'s unrolling).
                        i = match i.checked_add(*step) {
                            Some(next) => next,
                            None => break,
                        };
                    }
                } else {
                    // Dynamic bound: mirror `lower`'s desugaring exactly —
                    // the loop variable lives in its storage word and the
                    // condition/increment evaluate at machine width.
                    use record_rtl::OpKind;
                    let cmp = if *le { OpKind::Le } else { OpKind::Lt };
                    let cond = Expr::Binary(
                        cmp,
                        Box::new(Expr::Var(var.clone())),
                        Box::new(bound.clone()),
                    );
                    let incr = Expr::Binary(
                        OpKind::Add,
                        Box::new(Expr::Var(var.clone())),
                        Box::new(Expr::Const(*step)),
                    );
                    let cells = mem
                        .get_mut(var)
                        .ok_or_else(|| err(format!("undeclared loop variable `{var}`")))?;
                    cells[0] = (*start as u64) & mask(width);
                    loop {
                        *fuel = fuel
                            .checked_sub(1)
                            .ok_or_else(|| err("interpreter iteration budget exhausted"))?;
                        if eval(&cond, mem, width)? == 0 {
                            break;
                        }
                        run_block(body, mem, width, fuel)?;
                        let next = eval(&incr, mem, width)?;
                        let cells = mem
                            .get_mut(var)
                            .ok_or_else(|| err(format!("undeclared loop variable `{var}`")))?;
                        cells[0] = next & mask(width);
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                if eval(cond, mem, width)? != 0 {
                    run_block(then_body, mem, width, fuel)?;
                } else {
                    run_block(else_body, mem, width, fuel)?;
                }
            }
            Stmt::While { cond, body, .. } => loop {
                *fuel = fuel
                    .checked_sub(1)
                    .ok_or_else(|| err("interpreter iteration budget exhausted"))?;
                if eval(cond, mem, width)? == 0 {
                    break;
                }
                run_block(body, mem, width, fuel)?;
            },
        }
    }
    Ok(())
}

fn eval(e: &Expr, mem: &Memory, width: u16) -> Result<u64, CError> {
    let m = mask(width);
    Ok(match e {
        Expr::Const(c) => (*c as u64) & m,
        Expr::Var(name) => *mem
            .get(name)
            .and_then(|c| c.first())
            .ok_or_else(|| err(format!("undeclared variable `{name}`")))?,
        Expr::Elem(name, idx) => {
            let i = eval(idx, mem, width)? as usize;
            *mem.get(name)
                .and_then(|c| c.get(i))
                .ok_or_else(|| err(format!("bad element `{name}[{i}]`")))?
        }
        Expr::Unary(op, a) => {
            let a = eval(a, mem, width)?;
            op.eval(&[a], width)
        }
        Expr::Binary(op, a, b) => {
            let a = eval(a, mem, width)?;
            let b = eval(b, mem, width)?;
            op.eval(&[a, b], width)
        }
    })
}
