//! Lowering: loop unrolling and flattening to destination-annotated
//! statements with constant-offset variable references.

use crate::ast::*;
use crate::error::CError;
use std::collections::BTreeMap;

/// A reference to a storage word: variable name plus constant element
/// offset (0 for scalars).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref {
    pub name: String,
    pub offset: u64,
}

/// A flattened expression: all indices folded to constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatExpr {
    Const(i64),
    /// Read of a storage word.
    Load(Ref),
    Unary(record_rtl::OpKind, Box<FlatExpr>),
    Binary(record_rtl::OpKind, Box<FlatExpr>, Box<FlatExpr>),
}

impl FlatExpr {
    /// Number of nodes.
    pub fn size(&self) -> usize {
        match self {
            FlatExpr::Const(_) | FlatExpr::Load(_) => 1,
            FlatExpr::Unary(_, a) => 1 + a.size(),
            FlatExpr::Binary(_, a, b) => 1 + a.size() + b.size(),
        }
    }
}

/// One flattened statement `target = expr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatStmt {
    pub target: Ref,
    pub value: FlatExpr,
}

/// Lowers `function` of `program`: unrolls all loops and folds indices.
///
/// # Errors
///
/// Returns [`CError`] (without position — lowering works on the AST) when a
/// referenced variable is undeclared, an index does not fold to a constant,
/// an index is out of bounds, or loop trip counts explode past 4096
/// iterations total.
pub fn lower(program: &Program, function: &str) -> Result<Vec<FlatStmt>, CError> {
    let Some(f) = program.function(function) else {
        return Err(err(format!("no function `{function}`")));
    };
    let mut vars: BTreeMap<String, u64> = BTreeMap::new();
    for d in program.globals.iter().chain(&f.locals) {
        vars.insert(d.name.clone(), d.words());
    }
    let mut out = Vec::new();
    let mut env: BTreeMap<String, i64> = BTreeMap::new();
    let mut budget = 4096usize;
    lower_block(&f.body, &vars, &mut env, &mut out, &mut budget)?;
    Ok(out)
}

fn err(msg: impl Into<String>) -> CError {
    CError::new(0, 0, msg)
}

fn lower_block(
    stmts: &[Stmt],
    vars: &BTreeMap<String, u64>,
    env: &mut BTreeMap<String, i64>,
    out: &mut Vec<FlatStmt>,
    budget: &mut usize,
) -> Result<(), CError> {
    for s in stmts {
        match s {
            Stmt::Assign { target, value } => {
                let target = lower_ref(target, vars, env)?;
                let value = lower_expr(value, vars, env)?;
                out.push(FlatStmt { target, value });
            }
            Stmt::For {
                var,
                start,
                bound,
                le,
                step,
                body,
            } => {
                if !vars.contains_key(var) {
                    return Err(err(format!("undeclared loop variable `{var}`")));
                }
                let mut i = *start;
                loop {
                    let cont = if *le { i <= *bound } else { i < *bound };
                    if !cont {
                        break;
                    }
                    if *budget == 0 {
                        return Err(err("loop unrolling exceeds 4096 iterations"));
                    }
                    *budget -= 1;
                    let shadow = env.insert(var.clone(), i);
                    lower_block(body, vars, env, out, budget)?;
                    match shadow {
                        Some(v) => {
                            env.insert(var.clone(), v);
                        }
                        None => {
                            env.remove(var);
                        }
                    }
                    // A counter that cannot advance past `i64::MAX` has
                    // exhausted the iteration space; stop rather than
                    // overflow (bounds that large exceed the unroll
                    // budget long before this anyway).
                    i = match i.checked_add(*step) {
                        Some(next) => next,
                        None => break,
                    };
                }
            }
        }
    }
    Ok(())
}

fn lower_ref(
    lv: &LValue,
    vars: &BTreeMap<String, u64>,
    env: &BTreeMap<String, i64>,
) -> Result<Ref, CError> {
    match lv {
        LValue::Scalar(name) => {
            check_var(name, vars, false)?;
            Ok(Ref {
                name: name.clone(),
                offset: 0,
            })
        }
        LValue::Elem(name, idx) => {
            let size = check_var(name, vars, true)?;
            let offset = fold_index(name, idx, env, size)?;
            Ok(Ref {
                name: name.clone(),
                offset,
            })
        }
    }
}

fn lower_expr(
    e: &Expr,
    vars: &BTreeMap<String, u64>,
    env: &BTreeMap<String, i64>,
) -> Result<FlatExpr, CError> {
    // A loop variable used as a value becomes a constant after unrolling.
    if let Expr::Var(name) = e {
        if let Some(&v) = env.get(name) {
            return Ok(FlatExpr::Const(v));
        }
    }
    match e {
        Expr::Const(c) => Ok(FlatExpr::Const(*c)),
        Expr::Var(name) => {
            check_var(name, vars, false)?;
            Ok(FlatExpr::Load(Ref {
                name: name.clone(),
                offset: 0,
            }))
        }
        Expr::Elem(name, idx) => {
            let size = check_var(name, vars, true)?;
            let offset = fold_index(name, idx, env, size)?;
            Ok(FlatExpr::Load(Ref {
                name: name.clone(),
                offset,
            }))
        }
        Expr::Unary(op, a) => Ok(FlatExpr::Unary(*op, Box::new(lower_expr(a, vars, env)?))),
        Expr::Binary(op, a, b) => {
            // Constant-fold fully-constant subtrees so shapes like `N-1-i`
            // become leaf constants — but only trees built from operators
            // whose 64-bit result commutes with width masking.  Division,
            // remainder and shifts evaluate on masked operands at machine
            // word width (both in the interpreter and in hardware), so
            // folding them here with `i64` semantics would bake in a
            // different answer: the differential fuzzer caught exactly
            // that on `(-1) >> (-1)`, which folds to 1 in 64 bits but is
            // 0 at any machine width.
            if mask_safe(e) {
                if let Some(v) = e.fold(&|n| env.get(n).copied()) {
                    return Ok(FlatExpr::Const(v));
                }
            }
            Ok(FlatExpr::Binary(
                *op,
                Box::new(lower_expr(a, vars, env)?),
                Box::new(lower_expr(b, vars, env)?),
            ))
        }
    }
}

/// Whether every operator in a (loop-variable-closed) expression tree
/// gives the same width-masked result when evaluated in 64 bits: modular
/// add/sub/mul, the bitwise ops, and negation/complement do; division,
/// remainder, shifts and comparisons depend on the machine word width.
fn mask_safe(e: &Expr) -> bool {
    use record_rtl::OpKind;
    let op_safe = |op: &OpKind| {
        matches!(
            op,
            OpKind::Add
                | OpKind::Sub
                | OpKind::Mul
                | OpKind::And
                | OpKind::Or
                | OpKind::Xor
                | OpKind::Neg
                | OpKind::Not
        )
    };
    match e {
        Expr::Const(_) | Expr::Var(_) => true,
        // Element loads never fold anyway; let `fold` return None.
        Expr::Elem(..) => true,
        Expr::Unary(op, a) => op_safe(op) && mask_safe(a),
        Expr::Binary(op, a, b) => op_safe(op) && mask_safe(a) && mask_safe(b),
    }
}

fn check_var(name: &str, vars: &BTreeMap<String, u64>, want_array: bool) -> Result<u64, CError> {
    match vars.get(name) {
        None => Err(err(format!("undeclared variable `{name}`"))),
        Some(&size) => {
            if want_array && size == 1 {
                return Err(err(format!("`{name}` is a scalar, not an array")));
            }
            Ok(size)
        }
    }
}

fn fold_index(
    name: &str,
    idx: &Expr,
    env: &BTreeMap<String, i64>,
    size: u64,
) -> Result<u64, CError> {
    // Width-dependent operators in an index would fold differently here
    // (64-bit) than the interpreter evaluates them (masked): reject them
    // structurally instead of baking in a silently different address.
    if !mask_safe(idx) {
        return Err(err(format!(
            "index of `{name}` uses width-dependent operators (division, remainder or shifts)"
        )));
    }
    let Some(v) = idx.fold(&|n| env.get(n).copied()) else {
        return Err(err(format!(
            "index of `{name}` does not fold to a constant (only counted loops are supported)"
        )));
    };
    if v < 0 || v as u64 >= size {
        return Err(err(format!("index {v} out of bounds for `{name}[{size}]`")));
    }
    Ok(v as u64)
}
