//! Lowering: loop unrolling and flattening to a control-flow graph of
//! basic blocks holding destination-annotated statements with
//! constant-offset variable references.
//!
//! Constant-trip-count `for` loops are fully unrolled (the historical fast
//! path — straight-line programs lower to a single block, byte-identical
//! to the pre-CFG pipeline).  `if`, `while` and dynamic-bound `for` lower
//! to blocks with explicit terminators.

use crate::ast::*;
use crate::error::CError;
use std::collections::BTreeMap;

/// A reference to a storage word: variable name plus constant element
/// offset (0 for scalars).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref {
    pub name: String,
    pub offset: u64,
}

/// A flattened expression: all indices folded to constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatExpr {
    Const(i64),
    /// Read of a storage word.
    Load(Ref),
    Unary(record_rtl::OpKind, Box<FlatExpr>),
    Binary(record_rtl::OpKind, Box<FlatExpr>, Box<FlatExpr>),
}

impl FlatExpr {
    /// Number of nodes.
    pub fn size(&self) -> usize {
        match self {
            FlatExpr::Const(_) | FlatExpr::Load(_) => 1,
            FlatExpr::Unary(_, a) => 1 + a.size(),
            FlatExpr::Binary(_, a, b) => 1 + a.size() + b.size(),
        }
    }

    /// All storage words read, in evaluation order (with duplicates).
    pub fn loads(&self, out: &mut Vec<Ref>) {
        match self {
            FlatExpr::Const(_) => {}
            FlatExpr::Load(r) => out.push(r.clone()),
            FlatExpr::Unary(_, a) => a.loads(out),
            FlatExpr::Binary(_, a, b) => {
                a.loads(out);
                b.loads(out);
            }
        }
    }
}

/// One flattened statement `target = expr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatStmt {
    pub target: Ref,
    pub value: FlatExpr,
}

/// How a basic block transfers control when its statements are done.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// End of program (exactly one block, the last, carries this).
    Halt,
    /// Unconditional transfer to a block.
    Jump(usize),
    /// Two-way branch: `then_to` when `cond` evaluates nonzero, `else_to`
    /// otherwise.
    Branch {
        cond: FlatExpr,
        then_to: usize,
        else_to: usize,
    },
}

impl Terminator {
    /// The blocks this terminator can transfer to.
    pub fn successors(&self) -> Vec<usize> {
        match self {
            Terminator::Halt => vec![],
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                then_to, else_to, ..
            } => vec![*then_to, *else_to],
        }
    }
}

/// A basic block: straight-line statements plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    pub stmts: Vec<FlatStmt>,
    pub term: Terminator,
}

/// The lowered control-flow graph of one function.  Entry is block 0;
/// the unique [`Terminator::Halt`] block is last.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    pub blocks: Vec<Block>,
}

impl Cfg {
    /// Does the whole function consist of one straight-line block?
    pub fn is_straight_line(&self) -> bool {
        self.blocks.len() == 1 && self.blocks[0].term == Terminator::Halt
    }

    /// Structural validity: every terminator targets an existing block,
    /// and exactly one block — the last — halts.
    ///
    /// Lowering upholds this by construction; tests and debug builds
    /// assert it via [`Cfg::assert_valid`].
    pub fn validate(&self) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err("CFG has no blocks".into());
        }
        let mut halts = Vec::new();
        for (i, b) in self.blocks.iter().enumerate() {
            match &b.term {
                Terminator::Halt => halts.push(i),
                other => {
                    for t in other.successors() {
                        if t >= self.blocks.len() {
                            return Err(format!(
                                "block {i} targets non-existent block {t} (of {})",
                                self.blocks.len()
                            ));
                        }
                    }
                }
            }
        }
        if halts.len() != 1 {
            return Err(format!(
                "CFG has {} halt blocks, want exactly 1",
                halts.len()
            ));
        }
        if halts[0] != self.blocks.len() - 1 {
            return Err(format!(
                "halt block is {} but must be the last block ({})",
                halts[0],
                self.blocks.len() - 1
            ));
        }
        Ok(())
    }

    /// Panics in debug builds if the CFG is structurally invalid.
    pub fn assert_valid(&self) {
        debug_assert!(self.validate().is_ok(), "{:?}", self.validate());
    }
}

/// Hard cap on lowered blocks: a fully-unrolled loop around conditional
/// bodies multiplies blocks, and pathological inputs must error rather
/// than allocate without bound.
const MAX_BLOCKS: usize = 1 << 16;

/// Lowers `function` of `program` to a [`Cfg`].
///
/// # Errors
///
/// Returns [`CError`] (positioned at the offending statement) when a
/// referenced variable is undeclared, an index does not fold to a
/// constant, an index is out of bounds, or loop trip counts explode past
/// 4096 unrolled iterations total.
pub fn lower_cfg(program: &Program, function: &str) -> Result<Cfg, CError> {
    let Some(f) = program.function(function) else {
        return Err(err(Span::default(), format!("no function `{function}`")));
    };
    let mut vars: BTreeMap<String, u64> = BTreeMap::new();
    for d in program.globals.iter().chain(&f.locals) {
        vars.insert(d.name.clone(), d.words());
    }
    let mut cx = Lower {
        vars: &vars,
        env: BTreeMap::new(),
        budget: 4096,
        blocks: vec![Block {
            stmts: Vec::new(),
            term: Terminator::Halt,
        }],
        cur: 0,
    };
    cx.lower_stmts(&f.body)?;
    cx.seal(Terminator::Halt);
    let cfg = Cfg { blocks: cx.blocks };
    cfg.assert_valid();
    Ok(cfg)
}

/// Lowers `function` of `program` to a flat statement list.
///
/// This is the straight-line compatibility surface: programs containing
/// runtime control flow (a multi-block CFG) are rejected; use
/// [`lower_cfg`] for those.
///
/// # Errors
///
/// As [`lower_cfg`], plus an error for multi-block functions.
pub fn lower(program: &Program, function: &str) -> Result<Vec<FlatStmt>, CError> {
    let mut cfg = lower_cfg(program, function)?;
    if !cfg.is_straight_line() {
        return Err(err(
            Span::default(),
            format!("function `{function}` contains runtime control flow"),
        ));
    }
    Ok(cfg.blocks.pop().expect("validated non-empty").stmts)
}

fn err(span: Span, msg: impl Into<String>) -> CError {
    CError::new(span.line, span.col, msg)
}

struct Lower<'a> {
    vars: &'a BTreeMap<String, u64>,
    /// Loop variables of enclosing *unrolled* loops, by current value.
    env: BTreeMap<String, i64>,
    /// Remaining unrolled iterations.
    budget: usize,
    blocks: Vec<Block>,
    /// Block currently receiving statements.
    cur: usize,
}

impl Lower<'_> {
    /// Appends a fresh (unsealed) block and returns its index.
    fn new_block(&mut self, span: Span) -> Result<usize, CError> {
        if self.blocks.len() >= MAX_BLOCKS {
            return Err(err(
                span,
                format!("control flow exceeds {MAX_BLOCKS} blocks"),
            ));
        }
        self.blocks.push(Block {
            stmts: Vec::new(),
            term: Terminator::Halt,
        });
        Ok(self.blocks.len() - 1)
    }

    fn emit(&mut self, s: FlatStmt) {
        self.blocks[self.cur].stmts.push(s);
    }

    /// Sets the terminator of the current block.
    fn seal(&mut self, t: Terminator) {
        self.blocks[self.cur].term = t;
    }

    /// Sets the terminator of block `b`.
    fn seal_block(&mut self, b: usize, t: Terminator) {
        self.blocks[b].term = t;
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), CError> {
        for s in stmts {
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), CError> {
        match s {
            Stmt::Assign {
                target,
                value,
                span,
            } => {
                let target = lower_ref(target, self.vars, &self.env, *span)?;
                let value = lower_expr(value, self.vars, &self.env, *span)?;
                self.emit(FlatStmt { target, value });
                Ok(())
            }
            Stmt::For {
                var,
                start,
                bound,
                le,
                step,
                body,
                span,
            } => {
                if !self.vars.contains_key(var) {
                    return Err(err(*span, format!("undeclared loop variable `{var}`")));
                }
                // Fast path: a bound that is constant *without* any loop
                // environment folds exactly as the historical parser-time
                // constant did, so the loop unrolls at compile time.
                match bound.fold(&|_| None) {
                    Some(b) => self.unroll_for(var, *start, b, *le, *step, body, *span),
                    None => self.dynamic_for(var, *start, bound, *le, *step, body, *span),
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            } => {
                let cond = lower_expr(cond, self.vars, &self.env, *span)?;
                let head = self.cur;
                let then_b = self.new_block(*span)?;
                self.cur = then_b;
                self.lower_stmts(then_body)?;
                let then_end = self.cur;
                let else_b = self.new_block(*span)?;
                self.cur = else_b;
                self.lower_stmts(else_body)?;
                let else_end = self.cur;
                let join = self.new_block(*span)?;
                self.seal_block(
                    head,
                    Terminator::Branch {
                        cond,
                        then_to: then_b,
                        else_to: else_b,
                    },
                );
                self.seal_block(then_end, Terminator::Jump(join));
                self.seal_block(else_end, Terminator::Jump(join));
                self.cur = join;
                Ok(())
            }
            Stmt::While { cond, body, span } => self.lower_while(cond, body, *span),
        }
    }

    /// The historical unrolling path, byte-identical for constant bounds.
    #[allow(clippy::too_many_arguments)]
    fn unroll_for(
        &mut self,
        var: &str,
        start: i64,
        bound: i64,
        le: bool,
        step: i64,
        body: &[Stmt],
        span: Span,
    ) -> Result<(), CError> {
        let mut i = start;
        loop {
            let cont = if le { i <= bound } else { i < bound };
            if !cont {
                break;
            }
            if self.budget == 0 {
                return Err(err(span, "loop unrolling exceeds 4096 iterations"));
            }
            self.budget -= 1;
            let shadow = self.env.insert(var.to_owned(), i);
            self.lower_stmts(body)?;
            match shadow {
                Some(v) => {
                    self.env.insert(var.to_owned(), v);
                }
                None => {
                    self.env.remove(var);
                }
            }
            // A counter that cannot advance past `i64::MAX` has exhausted
            // the iteration space; stop rather than overflow (bounds that
            // large exceed the unroll budget long before this anyway).
            i = match i.checked_add(step) {
                Some(next) => next,
                None => break,
            };
        }
        Ok(())
    }

    /// A `for` whose bound is not compile-time constant desugars to
    /// `var = start; while (var </<= bound) { body; var += step; }` with
    /// the loop variable living in its declared storage word.
    #[allow(clippy::too_many_arguments)]
    fn dynamic_for(
        &mut self,
        var: &str,
        start: i64,
        bound: &Expr,
        le: bool,
        step: i64,
        body: &[Stmt],
        span: Span,
    ) -> Result<(), CError> {
        use record_rtl::OpKind;
        // The loop variable is a runtime value here: hide any same-named
        // enclosing unrolled-loop constant for the duration.
        let shadow = self.env.remove(var);
        self.emit(FlatStmt {
            target: Ref {
                name: var.to_owned(),
                offset: 0,
            },
            value: FlatExpr::Const(start),
        });
        let cmp = if le { OpKind::Le } else { OpKind::Lt };
        let cond = Expr::Binary(
            cmp,
            Box::new(Expr::Var(var.to_owned())),
            Box::new(bound.clone()),
        );
        let mut body2 = body.to_vec();
        body2.push(Stmt::Assign {
            target: LValue::Scalar(var.to_owned()),
            value: Expr::Binary(
                OpKind::Add,
                Box::new(Expr::Var(var.to_owned())),
                Box::new(Expr::Const(step)),
            ),
            span,
        });
        let result = self.lower_while(&cond, &body2, span);
        if let Some(v) = shadow {
            self.env.insert(var.to_owned(), v);
        }
        result
    }

    fn lower_while(&mut self, cond: &Expr, body: &[Stmt], span: Span) -> Result<(), CError> {
        let head_end = self.cur;
        let cond_b = self.new_block(span)?;
        self.seal_block(head_end, Terminator::Jump(cond_b));
        // The condition re-evaluates on every iteration, so it lives in
        // the loop-header block's terminator.
        self.cur = cond_b;
        let cond = lower_expr(cond, self.vars, &self.env, span)?;
        let body_b = self.new_block(span)?;
        self.cur = body_b;
        self.lower_stmts(body)?;
        let body_end = self.cur;
        self.seal_block(body_end, Terminator::Jump(cond_b));
        let exit_b = self.new_block(span)?;
        self.seal_block(
            cond_b,
            Terminator::Branch {
                cond,
                then_to: body_b,
                else_to: exit_b,
            },
        );
        self.cur = exit_b;
        Ok(())
    }
}

fn lower_ref(
    lv: &LValue,
    vars: &BTreeMap<String, u64>,
    env: &BTreeMap<String, i64>,
    span: Span,
) -> Result<Ref, CError> {
    match lv {
        LValue::Scalar(name) => {
            check_var(name, vars, false, span)?;
            Ok(Ref {
                name: name.clone(),
                offset: 0,
            })
        }
        LValue::Elem(name, idx) => {
            let size = check_var(name, vars, true, span)?;
            let offset = fold_index(name, idx, env, size, span)?;
            Ok(Ref {
                name: name.clone(),
                offset,
            })
        }
    }
}

fn lower_expr(
    e: &Expr,
    vars: &BTreeMap<String, u64>,
    env: &BTreeMap<String, i64>,
    span: Span,
) -> Result<FlatExpr, CError> {
    // A loop variable used as a value becomes a constant after unrolling.
    if let Expr::Var(name) = e {
        if let Some(&v) = env.get(name) {
            return Ok(FlatExpr::Const(v));
        }
    }
    match e {
        Expr::Const(c) => Ok(FlatExpr::Const(*c)),
        Expr::Var(name) => {
            check_var(name, vars, false, span)?;
            Ok(FlatExpr::Load(Ref {
                name: name.clone(),
                offset: 0,
            }))
        }
        Expr::Elem(name, idx) => {
            let size = check_var(name, vars, true, span)?;
            let offset = fold_index(name, idx, env, size, span)?;
            Ok(FlatExpr::Load(Ref {
                name: name.clone(),
                offset,
            }))
        }
        Expr::Unary(op, a) => Ok(FlatExpr::Unary(
            *op,
            Box::new(lower_expr(a, vars, env, span)?),
        )),
        Expr::Binary(op, a, b) => {
            // Constant-fold fully-constant subtrees so shapes like `N-1-i`
            // become leaf constants — but only trees built from operators
            // whose 64-bit result commutes with width masking.  Division,
            // remainder and shifts evaluate on masked operands at machine
            // word width (both in the interpreter and in hardware), so
            // folding them here with `i64` semantics would bake in a
            // different answer: the differential fuzzer caught exactly
            // that on `(-1) >> (-1)`, which folds to 1 in 64 bits but is
            // 0 at any machine width.
            if mask_safe(e) {
                if let Some(v) = e.fold(&|n| env.get(n).copied()) {
                    return Ok(FlatExpr::Const(v));
                }
            }
            Ok(FlatExpr::Binary(
                *op,
                Box::new(lower_expr(a, vars, env, span)?),
                Box::new(lower_expr(b, vars, env, span)?),
            ))
        }
    }
}

/// Whether every operator in a (loop-variable-closed) expression tree
/// gives the same width-masked result when evaluated in 64 bits: modular
/// add/sub/mul, the bitwise ops, and negation/complement do; division,
/// remainder, shifts and comparisons depend on the machine word width.
fn mask_safe(e: &Expr) -> bool {
    use record_rtl::OpKind;
    let op_safe = |op: &OpKind| {
        matches!(
            op,
            OpKind::Add
                | OpKind::Sub
                | OpKind::Mul
                | OpKind::And
                | OpKind::Or
                | OpKind::Xor
                | OpKind::Neg
                | OpKind::Not
        )
    };
    match e {
        Expr::Const(_) | Expr::Var(_) => true,
        // Element loads never fold anyway; let `fold` return None.
        Expr::Elem(..) => true,
        Expr::Unary(op, a) => op_safe(op) && mask_safe(a),
        Expr::Binary(op, a, b) => op_safe(op) && mask_safe(a) && mask_safe(b),
    }
}

fn check_var(
    name: &str,
    vars: &BTreeMap<String, u64>,
    want_array: bool,
    span: Span,
) -> Result<u64, CError> {
    match vars.get(name) {
        None => Err(err(span, format!("undeclared variable `{name}`"))),
        Some(&size) => {
            if want_array && size == 1 {
                return Err(err(span, format!("`{name}` is a scalar, not an array")));
            }
            Ok(size)
        }
    }
}

fn fold_index(
    name: &str,
    idx: &Expr,
    env: &BTreeMap<String, i64>,
    size: u64,
    span: Span,
) -> Result<u64, CError> {
    // Width-dependent operators in an index would fold differently here
    // (64-bit) than the interpreter evaluates them (masked): reject them
    // structurally instead of baking in a silently different address.
    if !mask_safe(idx) {
        return Err(err(
            span,
            format!(
                "index of `{name}` uses width-dependent operators (division, remainder or shifts)"
            ),
        ));
    }
    let Some(v) = idx.fold(&|n| env.get(n).copied()) else {
        return Err(err(
            span,
            format!(
                "index of `{name}` does not fold to a constant (only counted loops are supported)"
            ),
        ));
    };
    if v < 0 || v as u64 >= size {
        return Err(err(
            span,
            format!("index {v} out of bounds for `{name}[{size}]`"),
        ));
    }
    Ok(v as u64)
}
