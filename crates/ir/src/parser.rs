//! Lexer and recursive-descent parser for mini-C.

use crate::ast::*;
use crate::error::CError;
use record_rtl::OpKind;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Punct(&'static str),
    Eof,
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: u32,
    col: u32,
}

fn lex(src: &str) -> Result<Vec<Token>, CError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let (mut i, mut line, mut col) = (0usize, 1u32, 1u32);
    let bump = |i: &mut usize, line: &mut u32, col: &mut u32, b: &[u8]| {
        if b[*i] == b'\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *i += 1;
    };
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            bump(&mut i, &mut line, &mut col, b);
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                bump(&mut i, &mut line, &mut col, b);
            }
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            bump(&mut i, &mut line, &mut col, b);
            bump(&mut i, &mut line, &mut col, b);
            while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                bump(&mut i, &mut line, &mut col, b);
            }
            if i + 1 >= b.len() {
                return Err(CError::new(line, col, "unterminated block comment"));
            }
            bump(&mut i, &mut line, &mut col, b);
            bump(&mut i, &mut line, &mut col, b);
            continue;
        }
        let (tline, tcol) = (line, col);
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                bump(&mut i, &mut line, &mut col, b);
            }
            let text = std::str::from_utf8(&b[start..i]).expect("ascii").to_owned();
            out.push(Token {
                tok: Tok::Ident(text),
                line: tline,
                col: tcol,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let radix = if c == b'0' && i + 1 < b.len() && (b[i + 1] | 32) == b'x' {
                bump(&mut i, &mut line, &mut col, b);
                bump(&mut i, &mut line, &mut col, b);
                16
            } else {
                10
            };
            let dstart = if radix == 16 { i } else { start };
            while i < b.len() && b[i].is_ascii_alphanumeric() {
                bump(&mut i, &mut line, &mut col, b);
            }
            let text = std::str::from_utf8(&b[dstart..i]).expect("ascii");
            let v = i64::from_str_radix(text, radix)
                .map_err(|_| CError::new(tline, tcol, format!("bad integer `{text}`")))?;
            out.push(Token {
                tok: Tok::Int(v),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Multi-char punctuation, longest first.
        const PUNCTS: [&str; 28] = [
            "<<=", ">>=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "<<", ">>",
            "<=", ">=", "==", "!=", "&&", "||", "+", "-", "*", "/", "%", "&", "|", "^",
        ];
        const SINGLES: [&str; 12] = ["(", ")", "{", "}", "[", "]", ";", ",", "=", "<", ">", "!"];
        let rest = &src[i..];
        let mut matched = None;
        for p in PUNCTS.iter().chain(SINGLES.iter()) {
            if rest.starts_with(p) {
                matched = Some(*p);
                break;
            }
        }
        let Some(p) = matched else {
            return Err(CError::new(
                tline,
                tcol,
                format!("unexpected character `{}`", c as char),
            ));
        };
        for _ in 0..p.len() {
            bump(&mut i, &mut line, &mut col, b);
        }
        out.push(Token {
            tok: Tok::Punct(p),
            line: tline,
            col: tcol,
        });
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

pub(crate) fn parse(src: &str) -> Result<Program, CError> {
    let tokens = lex(src)?;
    let mut p = P { tokens, pos: 0 };
    p.program()
}

struct P {
    tokens: Vec<Token>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CError> {
        let t = self.peek();
        Err(CError::new(t.line, t.col, msg))
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(&self.peek().tok, Tok::Punct(q) if *q == p)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`"))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s == kw)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), CError> {
        if self.at_kw(kw) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{kw}`"))
        }
    }

    fn ident(&mut self) -> Result<String, CError> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => self.err("expected identifier"),
        }
    }

    fn program(&mut self) -> Result<Program, CError> {
        let mut globals = Vec::new();
        let mut functions = Vec::new();
        loop {
            match &self.peek().tok {
                Tok::Eof => break,
                Tok::Ident(s) if s == "int" => {
                    self.bump();
                    globals.extend(self.var_decl_list()?);
                }
                Tok::Ident(s) if s == "void" => {
                    self.bump();
                    functions.push(self.function()?);
                }
                _ => return self.err("expected `int` or `void` at top level"),
            }
        }
        // Duplicate detection across globals.
        for (i, g) in globals.iter().enumerate() {
            if globals[..i].iter().any(|h| h.name == g.name) {
                return self.err(format!("duplicate global `{}`", g.name));
            }
        }
        Ok(Program { globals, functions })
    }

    /// After `int`: `a, b[4], c;`
    fn var_decl_list(&mut self) -> Result<Vec<VarDecl>, CError> {
        let mut out = Vec::new();
        loop {
            let name = self.ident()?;
            let size = if self.eat_punct("[") {
                let Tok::Int(n) = self.bump().tok else {
                    return self.err("expected array size");
                };
                if n <= 0 {
                    return self.err("array size must be positive");
                }
                self.expect_punct("]")?;
                Some(n as u64)
            } else {
                None
            };
            out.push(VarDecl { name, size });
            if self.eat_punct(";") {
                return Ok(out);
            }
            self.expect_punct(",")?;
        }
    }

    fn function(&mut self) -> Result<Function, CError> {
        let name = self.ident()?;
        self.expect_punct("(")?;
        // Optional `void` parameter list.
        if self.at_kw("void") {
            self.bump();
        }
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let mut locals = Vec::new();
        while self.at_kw("int") {
            self.bump();
            locals.extend(self.var_decl_list()?);
        }
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            body.push(self.stmt()?);
        }
        Ok(Function { name, locals, body })
    }

    fn span(&self) -> Span {
        let t = self.peek();
        Span::new(t.line, t.col)
    }

    /// `{ stmt* }`
    fn block(&mut self) -> Result<Vec<Stmt>, CError> {
        self.expect_punct("{")?;
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            body.push(self.stmt()?);
        }
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt, CError> {
        let span = self.span();
        if self.at_kw("for") {
            return self.for_stmt(span);
        }
        if self.at_kw("if") {
            return self.if_stmt(span);
        }
        if self.at_kw("while") {
            return self.while_stmt(span);
        }
        let target = self.lvalue()?;
        let value = self.assign_rhs(&target)?;
        self.expect_punct(";")?;
        Ok(Stmt::Assign {
            target,
            value,
            span,
        })
    }

    fn if_stmt(&mut self, span: Span) -> Result<Stmt, CError> {
        self.expect_kw("if")?;
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let then_body = self.block()?;
        let else_body = if self.at_kw("else") {
            self.bump();
            if self.at_kw("if") {
                // `else if` chains without braces.
                let sp = self.span();
                vec![self.if_stmt(sp)?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
            span,
        })
    }

    fn while_stmt(&mut self, span: Span) -> Result<Stmt, CError> {
        self.expect_kw("while")?;
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let body = self.block()?;
        Ok(Stmt::While { cond, body, span })
    }

    /// Parses `= e`, `+= e` (desugared), `++`, `--`.
    fn assign_rhs(&mut self, target: &LValue) -> Result<Expr, CError> {
        let lv_expr = || match target {
            LValue::Scalar(n) => Expr::Var(n.clone()),
            LValue::Elem(n, i) => Expr::Elem(n.clone(), Box::new(i.clone())),
        };
        let compound = [
            ("+=", OpKind::Add),
            ("-=", OpKind::Sub),
            ("*=", OpKind::Mul),
            ("/=", OpKind::Div),
            ("%=", OpKind::Rem),
            ("&=", OpKind::And),
            ("|=", OpKind::Or),
            ("^=", OpKind::Xor),
            ("<<=", OpKind::Shl),
            (">>=", OpKind::Shr),
        ];
        for (p, op) in compound {
            if self.eat_punct(p) {
                let rhs = self.expr()?;
                return Ok(Expr::Binary(op, Box::new(lv_expr()), Box::new(rhs)));
            }
        }
        if self.eat_punct("++") {
            return Ok(Expr::Binary(
                OpKind::Add,
                Box::new(lv_expr()),
                Box::new(Expr::Const(1)),
            ));
        }
        if self.eat_punct("--") {
            return Ok(Expr::Binary(
                OpKind::Sub,
                Box::new(lv_expr()),
                Box::new(Expr::Const(1)),
            ));
        }
        self.expect_punct("=")?;
        self.expr()
    }

    fn for_stmt(&mut self, span: Span) -> Result<Stmt, CError> {
        self.expect_kw("for")?;
        self.expect_punct("(")?;
        let var = self.ident()?;
        self.expect_punct("=")?;
        let start = self.const_expr()?;
        self.expect_punct(";")?;
        let var2 = self.ident()?;
        if var2 != var {
            return self.err("for-loop condition must test the induction variable");
        }
        let le = if self.eat_punct("<=") {
            true
        } else if self.eat_punct("<") {
            false
        } else {
            return self.err("for-loop condition must be `<` or `<=`");
        };
        // The bound may be any expression; constant bounds unroll at
        // compile time, others lower to a CFG loop.
        let bound = self.expr()?;
        self.expect_punct(";")?;
        let var3 = self.ident()?;
        if var3 != var {
            return self.err("for-loop step must update the induction variable");
        }
        let step = if self.eat_punct("++") {
            1
        } else if self.eat_punct("+=") {
            self.const_expr()?
        } else if self.eat_punct("=") {
            // i = i + k
            let v = self.ident()?;
            if v != var {
                return self.err("for-loop step must be `i = i + const`");
            }
            self.expect_punct("+")?;
            self.const_expr()?
        } else {
            return self.err("unsupported for-loop step");
        };
        if step <= 0 {
            return self.err("for-loop step must be positive");
        }
        self.expect_punct(")")?;
        let body = self.block()?;
        Ok(Stmt::For {
            var,
            start,
            bound,
            le,
            step,
            body,
            span,
        })
    }

    fn const_expr(&mut self) -> Result<i64, CError> {
        let e = self.expr()?;
        match e.fold(&|_| None) {
            Some(v) => Ok(v),
            None => self.err("expected a constant expression"),
        }
    }

    fn lvalue(&mut self) -> Result<LValue, CError> {
        let name = self.ident()?;
        if self.eat_punct("[") {
            let idx = self.expr()?;
            self.expect_punct("]")?;
            Ok(LValue::Elem(name, idx))
        } else {
            Ok(LValue::Scalar(name))
        }
    }

    // Precedence climbing; C-like precedence for the supported subset.
    fn expr(&mut self) -> Result<Expr, CError> {
        self.bin(0)
    }

    fn bin_op(&self) -> Option<(OpKind, u8)> {
        let Tok::Punct(p) = &self.peek().tok else {
            return None;
        };
        Some(match *p {
            "|" => (OpKind::Or, 1),
            "^" => (OpKind::Xor, 2),
            "&" => (OpKind::And, 3),
            "==" => (OpKind::Eq, 4),
            "!=" => (OpKind::Ne, 4),
            "<" => (OpKind::Lt, 5),
            "<=" => (OpKind::Le, 5),
            ">" => (OpKind::Gt, 5),
            ">=" => (OpKind::Ge, 5),
            "<<" => (OpKind::Shl, 6),
            ">>" => (OpKind::Shr, 6),
            "+" => (OpKind::Add, 7),
            "-" => (OpKind::Sub, 7),
            "*" => (OpKind::Mul, 8),
            "/" => (OpKind::Div, 8),
            "%" => (OpKind::Rem, 8),
            _ => return None,
        })
    }

    fn bin(&mut self, min: u8) -> Result<Expr, CError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.bin_op() {
            if prec < min {
                break;
            }
            self.bump();
            let rhs = self.bin(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CError> {
        if self.eat_punct("-") {
            let e = self.unary()?;
            // Fold negative literals immediately.
            return Ok(match e {
                Expr::Const(c) => Expr::Const(-c),
                other => Expr::Unary(OpKind::Neg, Box::new(other)),
            });
        }
        if self.eat_punct("!") {
            // `!x` is `x == 0` in this integer subset.
            let e = self.unary()?;
            return Ok(Expr::Binary(
                OpKind::Eq,
                Box::new(e),
                Box::new(Expr::Const(0)),
            ));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, CError> {
        match &self.peek().tok {
            Tok::Int(v) => {
                let v = *v;
                self.bump();
                Ok(Expr::Const(v))
            }
            Tok::Ident(_) => {
                let name = self.ident()?;
                if self.eat_punct("[") {
                    let idx = self.expr()?;
                    self.expect_punct("]")?;
                    Ok(Expr::Elem(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Tok::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            _ => self.err("expected expression"),
        }
    }
}
