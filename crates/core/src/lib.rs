//! `record-core` — the end-to-end retargetable compiler pipeline.
//!
//! This crate wires the paper's Figure 1 together:
//!
//! ```text
//! HDL model --(frontend)--> netlist --(ISE)--> RT templates
//!    --(algebraic extension)--> extended base --(§3.1)--> tree grammar
//!    --(§3.2)--> code selector
//! ```
//!
//! [`Record::retarget`] runs the whole retargeting procedure and returns a
//! [`Target`]: a ready-to-use compiler for one processor.  The per-phase
//! wall-clock times and template counts it records are the rows of the
//! paper's Table 3.  [`Target::compile`] then maps mini-C kernels to
//! machine code (selection, spill-aware emission, compaction), which powers
//! the Figure 2 experiment.
//!
//! # Example
//!
//! ```
//! use record_core::{Record, RetargetOptions};
//!
//! let model = record_targets::models::model("bass_boost").unwrap();
//! let target = Record::retarget(model.hdl, &RetargetOptions::default())?;
//! assert!(target.stats().templates_extended > 0);
//! # Ok::<(), record_core::PipelineError>(())
//! ```

mod pipeline;

pub use pipeline::{
    CompileOptions, CompiledKernel, PipelineError, Record, RetargetOptions, RetargetStats, Target,
};
pub use record_codegen::{Machine, RtOp};
pub use record_regalloc::{mem_traffic, AllocStats, Liveness, RegisterPool};

#[cfg(test)]
mod tests;
