//! `record-core` — the end-to-end retargetable compiler pipeline.
//!
//! This crate wires the paper's Figure 1 together:
//!
//! ```text
//! HDL model --(frontend)--> netlist --(ISE)--> RT templates
//!    --(algebraic extension)--> extended base --(§3.1)--> tree grammar
//!    --(§3.2)--> code selector
//! ```
//!
//! [`Record::retarget`] runs the whole retargeting procedure once per
//! processor and returns a [`Target`]: a frozen, `Send + Sync` compiler
//! artifact.  The per-phase wall-clock times and template counts it
//! records are the rows of the paper's Table 3.  Compilation happens over
//! and over against that artifact — [`Target::compile`] maps one mini-C
//! kernel to machine code (selection, spill-aware emission, allocation,
//! compaction), [`Target::compile_batch`] fans a batch out across
//! threads, and [`Target::session`] exposes the per-compilation scratch
//! ([`CompileSession`]) explicitly.  This split powers the Figure 2
//! experiment and lets one retargeted compiler serve concurrent traffic.
//!
//! # Example
//!
//! ```
//! use record_core::{CompileRequest, Record, RetargetOptions};
//!
//! let model = record_targets::models::model("bass_boost").unwrap();
//! let target = Record::retarget(model.hdl, &RetargetOptions::default())?;
//! assert!(target.report().templates_extended > 0);
//! # Ok::<(), record_core::PipelineError>(())
//! ```
//!
//! Every phase of both pipelines is instrumented through `record-probe`:
//! [`Record::retarget_probed`] and [`CompileSession::install_collector`]
//! stream spans into a [`record_probe::Trace`] (exportable as Chrome
//! trace JSON), and every [`Target`] / [`CompiledKernel`] carries an
//! always-on [`RetargetReport`] / [`CompileReport`] with per-phase times
//! and work counters.

mod error;
mod pipeline;
mod session;

pub use error::{
    panic_message, CompileError, CompilePhase, Diagnostic, FailureClass, PipelineError,
};
pub use pipeline::{
    CompileOptions, CompileReport, CompiledKernel, Record, RetargetOptions, RetargetReport, Target,
};
pub use record_bdd::FrozenBdd;
pub use record_codegen::{Machine, RtOp};
pub use record_probe::{
    validate_chrome_json_shape, Collector, CounterId, CounterVal, GaugeId, Histogram, HistogramId,
    MetricsBuilder, MetricsRegistry, MetricsShard, PhaseNs, Probe, Report, Trace, TraceSink,
};
pub use record_regalloc::{mem_traffic, AllocStats, Liveness, RegisterPool};
pub use session::{CompileRequest, CompileSession, SessionPages};

#[cfg(test)]
mod tests;
