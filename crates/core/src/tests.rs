use crate::*;

const TINY: &str = r#"
    module Acc {
        in d: bit(8);
        ctrl en: bit(1);
        out q: bit(8);
        register q = d when en == 1;
    }
    module Ram {
        in addr: bit(3);
        in din: bit(8);
        ctrl w: bit(1);
        out dout: bit(8);
        memory cells[8]: bit(8);
        read dout = cells[addr];
        write cells[addr] = din when w == 1;
    }
    processor Tiny {
        instruction word: bit(8);
        parts { acc: Acc; ram: Ram; }
        connections {
            acc.d = ram.dout;
            acc.en = I[7];
            ram.addr = I[2:0];
            ram.din = acc.q;
            ram.w = I[6];
        }
    }
"#;

/// A model without any memory: retargets fine, can never compile.
const MEMLESS: &str = r#"
    module Acc {
        in d: bit(8);
        ctrl en: bit(1);
        out q: bit(8);
        register q = d when en == 1;
    }
    processor P {
        instruction word: bit(9);
        parts { acc: Acc; }
        connections { acc.d = I[7:0]; acc.en = I[8]; }
    }
"#;

#[test]
fn retarget_reports_phase_times_and_counts() {
    let target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    let s = target.report();
    assert_eq!(s.processor, "Tiny");
    assert_eq!(s.templates_extracted, 2); // acc := ram, ram := acc
    assert!(s.templates_extended >= s.templates_extracted);
    assert!(s.rules > s.templates_extended); // start + stop rules on top
    assert!(s.t_total() >= s.t_extract());
    assert_eq!(s.nonterminals, 2); // START + acc
}

#[test]
fn register_pool_is_discovered_at_retarget_time() {
    let target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    // Discovery already happened: the accessor needs no compile first.
    let pool = target.register_pool().expect("tiny has a data memory");
    assert_eq!(pool.classes().len(), 1); // the accumulator
    assert_eq!(target.report().pool_registers, 1);
    assert_eq!(target.report().pool_cells, 1);

    // A memory-less model retargets with an empty pool, reported as such.
    let memless = Record::retarget(MEMLESS, &RetargetOptions::default()).unwrap();
    assert!(memless.register_pool().is_none());
    assert_eq!(memless.report().pool_registers, 0);
    assert_eq!(memless.report().pool_cells, 0);
}

#[test]
fn hdl_errors_are_wrapped() {
    let err = Record::retarget("module {", &RetargetOptions::default()).unwrap_err();
    assert!(matches!(err, PipelineError::Hdl(_)), "{err}");
}

#[test]
fn elaboration_errors_are_wrapped() {
    let src = r#"
        processor P { instruction word: bit(4); parts { x: Missing; } connections { } }
    "#;
    let err = Record::retarget(src, &RetargetOptions::default()).unwrap_err();
    assert!(matches!(err, PipelineError::Netlist(_)), "{err}");
}

#[test]
fn frontend_errors_carry_phase_and_span() {
    let target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    let err = target
        .compile(&CompileRequest::new("int x; void f() { x = ; }", "f"))
        .unwrap_err();
    let CompileError::Frontend {
        function,
        diagnostic,
    } = &err
    else {
        panic!("expected a frontend error, got {err}");
    };
    assert_eq!(function, "f");
    assert_eq!(diagnostic.phase, CompilePhase::Parse);
    assert!(diagnostic.span.is_some(), "parse errors have a position");
    assert_eq!(err.phase(), Some(CompilePhase::Parse));
}

#[test]
fn missing_function_is_a_lower_error() {
    let target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    let err = target
        .compile(&CompileRequest::new("int x; void f() { x = x; }", "nope"))
        .unwrap_err();
    assert_eq!(err.phase(), Some(CompilePhase::Lower), "{err}");
}

#[test]
fn no_data_memory_is_reported() {
    let target = Record::retarget(MEMLESS, &RetargetOptions::default()).unwrap();
    let err = target
        .compile(&CompileRequest::new("int x; void f() { x = 1; }", "f"))
        .unwrap_err();
    assert!(matches!(err, CompileError::NoDataMemory { .. }), "{err}");
    assert!(err.to_string().contains('P'), "names the processor: {err}");
}

#[test]
fn compile_execute_round_trip() {
    let target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    let kernel = target
        .compile(&CompileRequest::new("int x, y; void f() { x = y; }", "f"))
        .unwrap();
    assert_eq!(kernel.code_size(), 2); // load acc, store x
    let machine = target.execute(&kernel, &[("y", vec![9])]);
    let dm = target.data_memory().unwrap();
    assert_eq!(machine.mem(dm, 0), 9);
    let listing = target.listing(&kernel);
    assert!(listing.contains("acc :="), "{listing}");
}

#[test]
fn compaction_off_gives_vertical_code() {
    let target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    let kernel = target
        .compile(&CompileRequest::new("int x, y; void f() { x = y; }", "f").compaction(false))
        .unwrap();
    assert!(kernel.schedule.is_none());
    assert_eq!(kernel.code_size(), kernel.ops.len());
}

#[test]
fn memory_named_diagnostics() {
    let target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    assert!(target.memory_named("ram").is_ok());
    // Unknown names report *which* name failed — not "no data memory".
    let err = target.memory_named("nope").unwrap_err();
    assert_eq!(
        err,
        CompileError::UnknownStorage {
            name: "nope".into()
        },
        "{err}"
    );
    // A real storage that is not a memory gets its own diagnostic.
    let err = target.memory_named("acc").unwrap_err();
    assert_eq!(
        err,
        CompileError::NotAMemory { name: "acc".into() },
        "{err}"
    );
}

#[test]
fn sessions_are_reusable_and_deterministic() {
    let target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    let request = CompileRequest::new("int x, y; void f() { x = y; }", "f");

    // One session compiling twice: identical kernels, overlay reused.
    let mut session = target.session();
    let k1 = session.compile(&request).unwrap();
    let k2 = session.compile(&request).unwrap();
    assert_eq!(k1.ops, k2.ops);
    assert_eq!(k1.schedule, k2.schedule);

    // A fresh session agrees with the reused one on this workload.
    let k3 = target.compile(&request).unwrap();
    assert_eq!(k1.ops, k3.ops);
    assert_eq!(session.target().report().processor, "Tiny");
}

#[test]
fn compile_batch_matches_sequential() {
    let target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    let good = "int x, y; void f() { x = y; }";
    let bad = "int x; void f() { x = ; }";
    let requests = vec![
        CompileRequest::new(good, "f"),
        CompileRequest::new(bad, "f"),
        CompileRequest::new(good, "f").compaction(false),
    ];
    let batch = target.compile_batch(&requests);
    assert_eq!(batch.len(), 3);
    let sequential: Vec<_> = requests.iter().map(|r| target.compile(r)).collect();
    for (b, s) in batch.iter().zip(&sequential) {
        match (b, s) {
            (Ok(bk), Ok(sk)) => {
                assert_eq!(bk.ops, sk.ops);
                assert_eq!(bk.schedule, sk.schedule);
                assert_eq!(bk.alloc, sk.alloc);
            }
            (Err(be), Err(se)) => assert_eq!(be, se),
            other => panic!("batch/sequential disagree on success: {other:?}"),
        }
    }
    // Empty batches short-circuit.
    assert!(target.compile_batch(&[]).is_empty());
}

#[test]
fn pooled_session_reset_matches_fresh() {
    let target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    let request = CompileRequest::new("int x, y; void f() { x = y; }", "f");
    let fresh = target.session().compile(&request).unwrap();
    // Dirty a session with a different compilation, reset, recompile: the
    // warmed session must be observationally identical to a fresh one.
    let mut session = target.session();
    let other = CompileRequest::new("int a, b, c; void g() { a = b; c = a; }", "g");
    session.compile(&other).unwrap();
    session.reset();
    let pooled = session.compile(&request).unwrap();
    assert_eq!(pooled.ops, fresh.ops);
    assert_eq!(pooled.schedule, fresh.schedule);
    // Round-trip the retained pages into a new session.
    let again = target
        .session_from(session.into_pages())
        .compile(&request)
        .unwrap();
    assert_eq!(again.ops, fresh.ops);
    assert_eq!(again.schedule, fresh.schedule);
}

#[test]
fn deadline_surfaces_as_structured_timeout() {
    let target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    let source = "int x, y; void f() { x = y; }";
    // A zero budget expires at the first phase boundary.
    let err = target
        .compile(&CompileRequest::new(source, "f").deadline_ns(Some(0)))
        .unwrap_err();
    assert!(
        matches!(err, CompileError::DeadlineExceeded { .. }),
        "{err}"
    );
    assert_eq!(err.classify().kind, "deadline-exceeded");
    // A generous budget never fires.
    target
        .compile(&CompileRequest::new(source, "f").deadline_ns(Some(u64::MAX)))
        .unwrap();
}

#[test]
fn target_is_shareable_across_threads() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Target>();

    // And actually share one: compile the same kernel from two threads.
    let target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    let request = CompileRequest::new("int x, y; void f() { x = y; }", "f");
    let reference = target.compile(&request).unwrap();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| s.spawn(|| target.compile(&request).unwrap()))
            .collect();
        for h in handles {
            let k = h.join().unwrap();
            assert_eq!(k.ops, reference.ops);
            assert_eq!(k.schedule, reference.schedule);
        }
    });
}
