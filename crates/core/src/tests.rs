use crate::*;

const TINY: &str = r#"
    module Acc {
        in d: bit(8);
        ctrl en: bit(1);
        out q: bit(8);
        register q = d when en == 1;
    }
    module Ram {
        in addr: bit(3);
        in din: bit(8);
        ctrl w: bit(1);
        out dout: bit(8);
        memory cells[8]: bit(8);
        read dout = cells[addr];
        write cells[addr] = din when w == 1;
    }
    processor Tiny {
        instruction word: bit(8);
        parts { acc: Acc; ram: Ram; }
        connections {
            acc.d = ram.dout;
            acc.en = I[7];
            ram.addr = I[2:0];
            ram.din = acc.q;
            ram.w = I[6];
        }
    }
"#;

#[test]
fn retarget_reports_phase_times_and_counts() {
    let target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    let s = target.stats();
    assert_eq!(s.processor, "Tiny");
    assert_eq!(s.templates_extracted, 2); // acc := ram, ram := acc
    assert!(s.templates_extended >= s.templates_extracted);
    assert!(s.rules > s.templates_extended); // start + stop rules on top
    assert!(s.t_total >= s.t_extract);
    assert_eq!(s.nonterminals, 2); // START + acc
}

#[test]
fn hdl_errors_are_wrapped() {
    let err = Record::retarget("module {", &RetargetOptions::default()).unwrap_err();
    assert!(matches!(err, PipelineError::Hdl(_)), "{err}");
}

#[test]
fn elaboration_errors_are_wrapped() {
    let src = r#"
        processor P { instruction word: bit(4); parts { x: Missing; } connections { } }
    "#;
    let err = Record::retarget(src, &RetargetOptions::default()).unwrap_err();
    assert!(matches!(err, PipelineError::Netlist(_)), "{err}");
}

#[test]
fn frontend_errors_are_wrapped() {
    let mut target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    let err = target
        .compile("int x; void f() { x = ; }", "f", &CompileOptions::default())
        .unwrap_err();
    assert!(matches!(err, PipelineError::Frontend(_)), "{err}");
}

#[test]
fn missing_function_is_a_frontend_error() {
    let mut target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    let err = target
        .compile(
            "int x; void f() { x = x; }",
            "nope",
            &CompileOptions::default(),
        )
        .unwrap_err();
    assert!(matches!(err, PipelineError::Frontend(_)), "{err}");
}

#[test]
fn no_data_memory_is_reported() {
    let src = r#"
        module Acc {
            in d: bit(8);
            ctrl en: bit(1);
            out q: bit(8);
            register q = d when en == 1;
        }
        processor P {
            instruction word: bit(9);
            parts { acc: Acc; }
            connections { acc.d = I[7:0]; acc.en = I[8]; }
        }
    "#;
    let mut target = Record::retarget(src, &RetargetOptions::default()).unwrap();
    let err = target
        .compile(
            "int x; void f() { x = 1; }",
            "f",
            &CompileOptions::default(),
        )
        .unwrap_err();
    assert!(matches!(err, PipelineError::NoDataMemory), "{err}");
}

#[test]
fn compile_execute_round_trip() {
    let mut target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    let kernel = target
        .compile(
            "int x, y; void f() { x = y; }",
            "f",
            &CompileOptions::default(),
        )
        .unwrap();
    assert_eq!(kernel.code_size(), 2); // load acc, store x
    let machine = target.execute(&kernel, &[("y", vec![9])]);
    let dm = target.data_memory().unwrap();
    assert_eq!(machine.mem(dm, 0), 9);
    let listing = target.listing(&kernel);
    assert!(listing.contains("acc :="), "{listing}");
}

#[test]
fn compaction_off_gives_vertical_code() {
    let mut target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    let kernel = target
        .compile(
            "int x, y; void f() { x = y; }",
            "f",
            &CompileOptions {
                baseline: false,
                compaction: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
    assert!(kernel.schedule.is_none());
    assert_eq!(kernel.code_size(), kernel.ops.len());
}

#[test]
fn memory_named_lookup() {
    let target = Record::retarget(TINY, &RetargetOptions::default()).unwrap();
    assert!(target.memory_named("ram").is_ok());
    assert!(target.memory_named("nope").is_err());
}
