//! Pipeline error types.
//!
//! Retargeting failures keep the original [`PipelineError`] shape (they
//! are one-shot, operator-facing).  Compilation failures use the
//! structured [`CompileError`]/[`Diagnostic`] pair: they carry the phase
//! that failed, the source position or RT index reached, and the names of
//! the storages/templates involved, so a service front-end can attribute
//! a failed request without parsing message strings.

use record_codegen::CodegenError;
use std::error::Error;
use std::fmt;

/// Any error of the end-to-end pipeline.
///
/// Retargeting ([`crate::Record::retarget`]) reports `Hdl`, `Netlist` and
/// `Extract`; the `From<CompileError>` impl folds structured
/// [`CompileError`]s into the legacy string variants for callers that
/// want one error type across both pipelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    Hdl(String),
    Netlist(String),
    Extract(String),
    Frontend(String),
    Codegen(String),
    /// The model has no memory suitable as data memory.
    NoDataMemory,
    /// The retargeting pipeline panicked; the payload is the panic
    /// message.  Produced by panic-containment boundaries (the serve
    /// layer's target cache, the fuzz oracle) that run
    /// [`crate::Record::retarget`] under `catch_unwind`.
    Internal(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Hdl(s) => write!(f, "HDL frontend: {s}"),
            PipelineError::Netlist(s) => write!(f, "elaboration: {s}"),
            PipelineError::Extract(s) => write!(f, "instruction-set extraction: {s}"),
            PipelineError::Frontend(s) => write!(f, "mini-C frontend: {s}"),
            PipelineError::Codegen(s) => write!(f, "code generation: {s}"),
            PipelineError::NoDataMemory => write!(f, "model has no data memory"),
            PipelineError::Internal(s) => write!(f, "internal retargeting error: {s}"),
        }
    }
}

impl Error for PipelineError {}

/// The compilation phase a [`Diagnostic`] originates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilePhase {
    /// mini-C parsing.
    Parse,
    /// Flattening/lowering of the requested function.
    Lower,
    /// Variable binding (memory layout).
    Bind,
    /// Tree-pattern selection.
    Select,
    /// Cover emission (spills, register-file cells).
    Emit,
    /// Register allocation / value placement.
    Allocate,
    /// Code compaction.
    Compact,
}

impl CompilePhase {
    /// The phase's trace-span label — the same vocabulary
    /// `record-probe` spans and `record-bench` snapshots use.
    pub fn label(self) -> &'static str {
        match self {
            CompilePhase::Parse => "parse",
            CompilePhase::Lower => "lower",
            CompilePhase::Bind => "bind",
            CompilePhase::Select => "select",
            CompilePhase::Emit => "emit",
            CompilePhase::Allocate => "allocate",
            CompilePhase::Compact => "compact",
        }
    }

    /// The inverse of [`CompilePhase::label`] (`None` for unknown text).
    /// Lets wire protocols and fuzz corpora name phases by slug.
    pub fn from_label(label: &str) -> Option<CompilePhase> {
        match label {
            "parse" => Some(CompilePhase::Parse),
            "lower" => Some(CompilePhase::Lower),
            "bind" => Some(CompilePhase::Bind),
            "select" => Some(CompilePhase::Select),
            "emit" => Some(CompilePhase::Emit),
            "allocate" => Some(CompilePhase::Allocate),
            "compact" => Some(CompilePhase::Compact),
            _ => None,
        }
    }
}

impl fmt::Display for CompilePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A structured description of one compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which phase failed.
    pub phase: CompilePhase,
    /// Human-readable description.
    pub message: String,
    /// 1-based (line, column) in the mini-C source, when the failure has
    /// a source position (parse/lower errors).
    pub span: Option<(u32, u32)>,
    /// RT index reached when the phase stopped, when the failure has one
    /// (emission errors).  Relative to the *failing statement's* partial
    /// emission, not to any kernel-wide sequence — a failed compile
    /// produces no kernel to index into.
    pub rt_index: Option<usize>,
    /// Rendered name of the storage or location involved, when one is:
    /// a bare instance name for capacity failures (`"rf"`, `"dmem"`) or a
    /// rendered location for spill-path failures (`"acc"`, `"rf[3]"`).
    /// Display text, not a lookup key — resolve storages through
    /// [`crate::Target::memory_named`] / the netlist instead.
    pub storage: Option<String>,
    /// Mnemonic of an operator the machine has *no rule at all* for, when
    /// the selector proved that (selection failures only).  Set means the
    /// failure is a hardware gap, not a selector gap — see
    /// [`CompileError::classify`].
    pub op: Option<&'static str>,
    /// `true` when the program needs a control transfer but the target
    /// exposes no usable PC-writing template (emission failures only) —
    /// classified `no-branch-path`.
    pub branch_gap: bool,
    /// Correlation id of the serving-layer request this failure belongs
    /// to, when one exists.  The compiler never sets this; the serve
    /// front-end threads it in ([`CompileError::set_request_id`]) so
    /// wire errors, access-log lines and scrape labels line up.
    pub request_id: Option<String>,
}

impl Diagnostic {
    /// A bare diagnostic for `phase`.
    pub fn new(phase: CompilePhase, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            phase,
            message: message.into(),
            span: None,
            rt_index: None,
            storage: None,
            op: None,
            branch_gap: false,
            request_id: None,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.phase, self.message)?;
        if let Some((line, col)) = self.span {
            write!(f, " at {line}:{col}")?;
        }
        if let Some(i) = self.rt_index {
            write!(f, " at RT {i}")?;
        }
        if let Some(s) = &self.storage {
            write!(f, " (storage `{s}`)")?;
        }
        Ok(())
    }
}

/// A structured compilation error, returned by [`crate::Target::compile`]
/// and [`crate::CompileSession::compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The model has no memory suitable as data memory.
    NoDataMemory {
        /// Processor name from the HDL model.
        processor: String,
    },
    /// A storage was requested by a name no storage of the model has.
    UnknownStorage {
        /// The name that failed to resolve.
        name: String,
    },
    /// The named storage exists but is not a memory.
    NotAMemory {
        /// The storage's instance name.
        name: String,
    },
    /// The mini-C frontend rejected the translation unit.
    Frontend {
        /// The function that was requested.
        function: String,
        /// What went wrong, with source position.  Boxed to keep the
        /// error (and every `Result` it rides in) pointer-small.
        diagnostic: Box<Diagnostic>,
    },
    /// Code generation failed (selection, spill paths, storage).
    Codegen {
        /// The function being compiled.
        function: String,
        /// What went wrong, with RT index / storage name when available.
        /// Boxed to keep the error pointer-small.
        diagnostic: Box<Diagnostic>,
    },
    /// The request's deadline passed before compilation finished.
    ///
    /// Raised at phase boundaries (cooperative cancellation through the
    /// probe's deadline hook), so `phase` names the last phase that ran
    /// to completion.
    DeadlineExceeded {
        /// The function being compiled.
        function: String,
        /// The last phase that completed before the deadline check fired.
        phase: CompilePhase,
    },
    /// The compiler panicked.
    ///
    /// [`crate::CompileSession::compile`] runs the pipeline under
    /// `catch_unwind`, so a bug that would otherwise abort the calling
    /// thread (and kill a server worker) surfaces as this structured
    /// error instead.  The session that produced it is
    /// [poisoned](crate::CompileSession::poisoned): its overlay may be
    /// mid-mutation, so discard it (or [`crate::CompileSession::reset`]
    /// it) rather than compiling further requests on it.
    Internal {
        /// The function being compiled.
        function: String,
        /// The phase that was running when the panic unwound.
        phase: CompilePhase,
        /// The panic payload (message), when it was a string.
        payload: String,
    },
}

/// The failure taxonomy: which phase a compilation died in and what
/// *kind* of failure it was.
///
/// The kind separates failures that look identical in a pass/fail table:
///
/// * `missing-hardware(<op>)` — the machine has no rule at all for an
///   operator; fixing it needs a different processor model.
/// * `selector-gap` — rules exist but no cover was found; a smarter
///   selector (or splitter) might compile this.
/// * `no-spill-path` — a register conflict needed a spill but the machine
///   has no store/reload templates for the register (or the conflict is
///   cyclic).
/// * `no-branch-path` — the program has runtime control flow but the
///   target exposes no usable PC-writing template (no PC declared, no
///   jump, or no zero-testing conditional branch).
/// * `bind-overflow` — a storage ran out of words or cells.
/// * `deadline-exceeded` — the request's deadline passed mid-compile
///   (phase = the last phase that completed).
/// * `no-data-memory`, `unknown-storage`, `not-a-memory`,
///   `unbound-variable`, `frontend` — set-up failures.
///
/// `record-bench` snapshots persist this pair per failing model×kernel
/// and `perf_snapshot --check` fails when a pair silently changes class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureClass {
    /// The phase that failed.
    pub phase: CompilePhase,
    /// The failure kind slug (see the type docs for the vocabulary).
    pub kind: String,
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.phase, self.kind)
    }
}

impl CompileError {
    /// The diagnostic payload, when the variant carries one.
    pub fn diagnostic(&self) -> Option<&Diagnostic> {
        match self {
            CompileError::Frontend { diagnostic, .. }
            | CompileError::Codegen { diagnostic, .. } => Some(diagnostic),
            _ => None,
        }
    }

    /// Threads a serving-layer correlation id into the diagnostic, when
    /// the variant carries one (variants without a diagnostic — timeouts,
    /// contained panics — carry the id on the wire response instead).
    pub fn set_request_id(&mut self, request_id: &str) {
        if let CompileError::Frontend { diagnostic, .. }
        | CompileError::Codegen { diagnostic, .. } = self
        {
            diagnostic.request_id = Some(request_id.to_owned());
        }
    }

    /// The phase that failed (for deadline errors: the last phase that
    /// completed before the deadline fired; for internal errors: the
    /// phase that was running when the panic unwound).
    pub fn phase(&self) -> Option<CompilePhase> {
        match self {
            CompileError::DeadlineExceeded { phase, .. } | CompileError::Internal { phase, .. } => {
                Some(*phase)
            }
            _ => self.diagnostic().map(|d| d.phase),
        }
    }

    /// Classifies the failure (see [`FailureClass`]).
    ///
    /// Total: every error maps to exactly one class, derived from the
    /// structured diagnostic fields — no message parsing.
    pub fn classify(&self) -> FailureClass {
        let class = |phase, kind: &str| FailureClass {
            phase,
            kind: kind.to_owned(),
        };
        match self {
            CompileError::NoDataMemory { .. } => class(CompilePhase::Bind, "no-data-memory"),
            CompileError::UnknownStorage { .. } => class(CompilePhase::Bind, "unknown-storage"),
            CompileError::NotAMemory { .. } => class(CompilePhase::Bind, "not-a-memory"),
            CompileError::Frontend { diagnostic, .. } => class(diagnostic.phase, "frontend"),
            CompileError::DeadlineExceeded { phase, .. } => class(*phase, "deadline-exceeded"),
            CompileError::Internal { phase, .. } => class(*phase, "internal"),
            CompileError::Codegen { diagnostic, .. } => {
                // The diagnostic fields identify the codegen variant
                // exactly: `op` only on proven hardware gaps, `rt_index`
                // only on spill-path failures, `storage` (without
                // `rt_index`) only on storage exhaustion.
                if let Some(op) = diagnostic.op {
                    FailureClass {
                        phase: diagnostic.phase,
                        kind: format!("missing-hardware({op})"),
                    }
                } else if diagnostic.branch_gap {
                    class(diagnostic.phase, "no-branch-path")
                } else if diagnostic.phase == CompilePhase::Select {
                    class(diagnostic.phase, "selector-gap")
                } else if diagnostic.rt_index.is_some() {
                    class(diagnostic.phase, "no-spill-path")
                } else if diagnostic.storage.is_some() {
                    class(diagnostic.phase, "bind-overflow")
                } else {
                    class(diagnostic.phase, "unbound-variable")
                }
            }
        }
    }

    pub(crate) fn from_frontend(
        function: &str,
        phase: CompilePhase,
        e: &record_ir::CError,
    ) -> Self {
        CompileError::Frontend {
            function: function.to_owned(),
            diagnostic: Box::new(Diagnostic {
                span: Some((e.line(), e.column())),
                ..Diagnostic::new(phase, e.message())
            }),
        }
    }

    pub(crate) fn from_codegen(function: &str, phase: CompilePhase, e: CodegenError) -> Self {
        let diagnostic = match e {
            CodegenError::Select {
                message,
                missing_op,
            } => Diagnostic {
                op: missing_op,
                ..Diagnostic::new(CompilePhase::Select, message)
            },
            CodegenError::NoSpillPath { loc, at_op, detail } => Diagnostic {
                rt_index: Some(at_op),
                storage: Some(loc),
                ..Diagnostic::new(CompilePhase::Emit, detail)
            },
            CodegenError::OutOfStorage { storage, detail } => Diagnostic {
                storage: Some(storage),
                ..Diagnostic::new(phase, detail)
            },
            CodegenError::UnboundVariable { name } => Diagnostic::new(
                CompilePhase::Bind,
                format!("variable or function `{name}` is not bound"),
            ),
            CodegenError::NoBranchPath { detail } => Diagnostic {
                branch_gap: true,
                ..Diagnostic::new(CompilePhase::Emit, detail)
            },
        };
        CompileError::Codegen {
            function: function.to_owned(),
            diagnostic: Box::new(diagnostic),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NoDataMemory { processor } => {
                write!(f, "model `{processor}` has no data memory")
            }
            CompileError::UnknownStorage { name } => {
                write!(f, "no storage named `{name}` in the model")
            }
            CompileError::NotAMemory { name } => {
                write!(f, "storage `{name}` is not a memory")
            }
            CompileError::Frontend {
                function,
                diagnostic,
            } => {
                write!(f, "mini-C frontend (`{function}`): {diagnostic}")
            }
            CompileError::Codegen {
                function,
                diagnostic,
            } => {
                write!(f, "code generation (`{function}`): {diagnostic}")
            }
            CompileError::DeadlineExceeded { function, phase } => {
                write!(
                    f,
                    "deadline exceeded compiling `{function}` (after phase `{phase}`)"
                )
            }
            CompileError::Internal {
                function,
                phase,
                payload,
            } => {
                write!(
                    f,
                    "internal compiler error in phase `{phase}` compiling `{function}`: {payload}"
                )
            }
        }
    }
}

impl Error for CompileError {}

/// Renders a `catch_unwind` payload as a message string (`&str` and
/// `String` payloads verbatim, anything else a placeholder).
///
/// Shared by every panic-containment boundary (the compile session, the
/// serve layer's retarget cache, the fuzz oracle) so `Internal` errors
/// carry the same payload text no matter which boundary caught them.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl From<CompileError> for PipelineError {
    fn from(e: CompileError) -> PipelineError {
        match e {
            CompileError::NoDataMemory { .. } => PipelineError::NoDataMemory,
            CompileError::UnknownStorage { .. } | CompileError::NotAMemory { .. } => {
                PipelineError::Codegen(e.to_string())
            }
            CompileError::Frontend { ref diagnostic, .. } => {
                let mut msg = diagnostic.message.clone();
                if let Some((l, c)) = diagnostic.span {
                    msg = format!("mini-C error at {l}:{c}: {}", diagnostic.message);
                }
                PipelineError::Frontend(msg)
            }
            CompileError::Codegen { ref diagnostic, .. } => {
                PipelineError::Codegen(diagnostic.to_string())
            }
            CompileError::DeadlineExceeded { .. } | CompileError::Internal { .. } => {
                PipelineError::Codegen(e.to_string())
            }
        }
    }
}
