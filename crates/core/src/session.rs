//! Compilation sessions and the parallel batch API.
//!
//! The retarget artifact ([`crate::Target`]) is frozen; everything a
//! compilation mutates lives here.  A [`CompileSession`] owns the
//! session-local BDD overlay arena (emission and compaction conjoin
//! execution conditions, which creates nodes) plus whatever binding and
//! allocation state each request needs.  Sessions are cheap to open —
//! the overlay starts empty and pages grow on demand — so the batch API
//! simply opens one per request, which also makes batch output
//! byte-identical to sequential output.

use crate::error::{panic_message, CompileError, CompilePhase};
use crate::pipeline::{CompileOptions, CompileReport, CompiledKernel, Target};
use record_bdd::BddOverlay;
use record_codegen::{
    baseline_compile, compile, compile_cfg, Binding, CodegenError, Emitted, EmittedCfg, SimExpr,
};
use record_compact::{compact, compact_cfg};
use record_ir::{FlatStmt, Ref, Terminator};
use record_probe::{Collector, Probe, Trace, TraceSink};
use record_regalloc::{
    allocate_cfg_probed, allocate_probed, AllocOptions, CfgLiveness, Liveness, MemLayout,
};
use std::borrow::Cow;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// One compilation request: a mini-C translation unit, the function to
/// compile, and the options to compile it under.
///
/// Built in builder style:
///
/// ```ignore
/// let req = CompileRequest::new(source, "f").compaction(false);
/// let kernel = target.compile(&req)?;
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileRequest<'a> {
    source: &'a str,
    function: &'a str,
    options: CompileOptions,
}

impl<'a> CompileRequest<'a> {
    /// A request for `function` of `source` under default options.
    pub fn new(source: &'a str, function: &'a str) -> CompileRequest<'a> {
        CompileRequest {
            source,
            function,
            options: CompileOptions::default(),
        }
    }

    /// Replaces the whole option set.
    pub fn with_options(mut self, options: CompileOptions) -> CompileRequest<'a> {
        self.options = options;
        self
    }

    /// Selects the naive per-operator baseline (the Figure 2 comparator).
    pub fn baseline(mut self, on: bool) -> CompileRequest<'a> {
        self.options.baseline = on;
        self
    }

    /// Toggles code compaction.
    pub fn compaction(mut self, on: bool) -> CompileRequest<'a> {
        self.options.compaction = on;
        self
    }

    /// Toggles the register-allocation / value-placement phase.
    pub fn allocate_registers(mut self, on: bool) -> CompileRequest<'a> {
        self.options.allocate_registers = on;
        self
    }

    /// Sets the compilation time budget in nanoseconds (`None` for
    /// unbounded).  See [`CompileOptions::deadline_ns`] for semantics.
    pub fn deadline_ns(mut self, budget: Option<u64>) -> CompileRequest<'a> {
        self.options.deadline_ns = budget;
        self
    }

    /// Arms the fault-injection hook: compilation panics on entering
    /// `phase`.  See [`CompileOptions::inject_panic`].
    pub fn inject_panic(mut self, phase: Option<CompilePhase>) -> CompileRequest<'a> {
        self.options.inject_panic = phase;
        self
    }

    /// The mini-C translation unit.
    pub fn source(&self) -> &'a str {
        self.source
    }

    /// The function to compile.
    pub fn function(&self) -> &'a str {
        self.function
    }

    /// The compile options.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }
}

/// A compilation session against one frozen [`Target`].
///
/// Owns the per-session mutable scratch — the BDD overlay arena — and
/// borrows the target immutably, so any number of sessions can run
/// concurrently over one artifact.  A session may compile several
/// requests; its overlay keeps growing (conditions from earlier requests
/// stay cached), which is the right trade for a worker thread serving a
/// request stream.  For bit-reproducible one-shots use
/// [`Target::compile`], which opens a fresh session per request.
#[derive(Debug)]
pub struct CompileSession<'t> {
    target: &'t Target,
    bdd: BddOverlay<'t>,
    /// Trace collector, when the caller wants the span stream.  Owned by
    /// the session (one lane per session), so concurrent sessions never
    /// contend — batch tracing merges lanes after the workers join.
    collector: Option<Collector>,
    /// Set when a compilation panicked inside this session (see
    /// [`CompileSession::poisoned`]).
    poisoned: bool,
}

impl<'t> CompileSession<'t> {
    pub(crate) fn new(target: &'t Target) -> CompileSession<'t> {
        CompileSession {
            target,
            bdd: target.frozen.overlay(),
            collector: None,
            poisoned: false,
        }
    }

    pub(crate) fn from_pages(target: &'t Target, pages: SessionPages) -> CompileSession<'t> {
        CompileSession {
            target,
            bdd: target.frozen.overlay_from(pages.bdd),
            collector: None,
            poisoned: false,
        }
    }

    /// Whether a compilation panicked inside this session.
    ///
    /// A panic unwinds out of arbitrary overlay mutation, so a poisoned
    /// session's scratch state is suspect: [`CompileSession::reset`]
    /// before compiling on it again, and do not recycle its pages into a
    /// session pool.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Rolls the session back to its just-opened state while keeping its
    /// allocated capacity (overlay node pages, hash tables, interner
    /// storage).
    ///
    /// After `reset()` the session is observationally identical to a fresh
    /// [`Target::session`] — the overlay replays the same handles for the
    /// same operation sequence — which is what lets a session pool hand
    /// out warmed sessions without perturbing compile output.  Any
    /// installed trace collector is discarded (its lane belonged to the
    /// previous tenancy).
    pub fn reset(&mut self) {
        self.bdd.reset();
        self.collector = None;
        self.poisoned = false;
    }

    /// Tears the session down to its retained allocations, for reuse by a
    /// later session — of this target or any other — via
    /// [`Target::session_from`].
    pub fn into_pages(self) -> SessionPages {
        SessionPages {
            bdd: self.bdd.into_pages(),
        }
    }

    /// Installs a trace collector recording into `lane`: subsequent
    /// compilations stream their span and counter events into it.
    /// Replaces any previously installed collector.
    pub fn install_collector(&mut self, lane: u32) {
        self.collector = Some(Collector::new(lane));
    }

    /// Removes the installed collector and returns its recorded trace
    /// (`None` when none was installed).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.collector.take().map(Collector::into_trace)
    }

    /// The frozen artifact this session compiles against.
    pub fn target(&self) -> &'t Target {
        self.target
    }

    /// BDD nodes this session created on top of the frozen base (a
    /// scratch-memory gauge).
    pub fn scratch_nodes(&self) -> usize {
        self.bdd.local_node_count()
    }

    /// Fraction of this session's BDD op-cache lookups served from cache
    /// (frozen-base hits included).
    pub fn bdd_op_cache_hit_rate(&self) -> f64 {
        self.bdd.op_cache_hit_rate()
    }

    /// Mean probe-chain length of this session's local unique-table
    /// lookups.
    pub fn bdd_unique_avg_probe_len(&self) -> f64 {
        self.bdd.unique_avg_probe_len()
    }

    /// Compiles one request.
    ///
    /// Every successful result carries a [`CompileReport`] with per-phase
    /// times and work counters; when a collector is installed
    /// ([`CompileSession::install_collector`]) the same phases also appear
    /// as spans in the trace.  Spans stay balanced on error paths (panics
    /// excepted — a contained panic abandons its open spans along with
    /// the rest of the poisoned session's scratch state).
    ///
    /// The whole pipeline runs under `catch_unwind`: a compiler bug that
    /// panics (or an armed [`CompileOptions::inject_panic`] hook) comes
    /// back as [`CompileError::Internal`] naming the phase that was
    /// running, and the session is marked
    /// [poisoned](CompileSession::poisoned) instead of taking the calling
    /// thread down.
    ///
    /// # Errors
    ///
    /// Structured [`CompileError`]s for mini-C errors and code-generation
    /// failures (no cover, storage exhaustion, missing spill paths); use
    /// [`CompileError::classify`] for the failure taxonomy.
    pub fn compile(
        &mut self,
        request: &CompileRequest<'_>,
    ) -> Result<CompiledKernel, CompileError> {
        let phase = Cell::new(CompilePhase::Parse);
        let contained = {
            let phase = &phase;
            catch_unwind(AssertUnwindSafe(|| self.compile_inner(request, phase)))
        };
        match contained {
            Ok(result) => result,
            Err(payload) => {
                self.poisoned = true;
                Err(CompileError::Internal {
                    function: request.function().to_owned(),
                    phase: phase.get(),
                    payload: panic_message(payload),
                })
            }
        }
    }

    /// The pipeline body; `at` tracks the phase currently running so the
    /// containment wrapper can attribute a panic.
    fn compile_inner(
        &mut self,
        request: &CompileRequest<'_>,
        at: &Cell<CompilePhase>,
    ) -> Result<CompiledKernel, CompileError> {
        let enter = |phase: CompilePhase| {
            at.set(phase);
            if request.options().inject_panic == Some(phase) {
                panic!("injected panic in phase `{phase}` (fault-injection hook)");
            }
        };
        let target = self.target;
        let function = request.function();
        let options = request.options();
        let mut report = CompileReport::with_capacity(7, 16);
        let bdd_before = self.bdd.counters();
        // Disjoint-field borrows: the probe holds `self.collector` for the
        // whole compilation while codegen and compaction mutate `self.bdd`.
        let mut probe = Probe::attached(self.collector.as_mut().map(|c| c as &mut dyn TraceSink));
        if let Some(budget) = options.deadline_ns {
            probe.set_deadline_ns(Some(record_probe::now_ns().saturating_add(budget)));
        }
        // Cooperative deadline: checked here at phase boundaries (and by
        // instrumented loops inside codegen via the probe), never
        // mid-phase, so `phase` always names the last *completed* phase.
        let expired = |probe: &Probe<'_>, phase: CompilePhase| {
            if probe.deadline_exceeded() {
                Err(CompileError::DeadlineExceeded {
                    function: function.to_owned(),
                    phase,
                })
            } else {
                Ok(())
            }
        };

        let t0 = Instant::now();
        enter(CompilePhase::Parse);
        probe.begin("parse");
        let parsed = record_ir::parse(request.source())
            .map_err(|e| CompileError::from_frontend(function, CompilePhase::Parse, &e));
        probe.end("parse");
        report.phase("parse", t0.elapsed().as_nanos() as u64);
        let program = parsed?;
        expired(&probe, CompilePhase::Parse)?;

        let t1 = Instant::now();
        enter(CompilePhase::Lower);
        probe.begin("lower");
        let lowered = record_ir::lower_cfg(&program, function)
            .map_err(|e| CompileError::from_frontend(function, CompilePhase::Lower, &e));
        probe.end("lower");
        report.phase("lower", t1.elapsed().as_nanos() as u64);
        let cfg = lowered?;
        expired(&probe, CompilePhase::Lower)?;
        // Straight-line functions take the pre-CFG single-block pipeline —
        // same statement slices, same phase calls — so their output stays
        // byte-identical to what this code produced before control flow
        // existed (pinned by the golden-listing tests).
        let straight = cfg.is_straight_line();
        // What the binder scans for ROM placement: every block's
        // statements, plus one pseudo-statement per branch condition so a
        // word read by a terminator never looks ROM-eligible.
        let bind_stmts: Cow<'_, [FlatStmt]> = if straight {
            Cow::Borrowed(&cfg.blocks[0].stmts)
        } else {
            let mut all: Vec<FlatStmt> = cfg
                .blocks
                .iter()
                .flat_map(|b| b.stmts.iter().cloned())
                .collect();
            for b in &cfg.blocks {
                if let Terminator::Branch { cond, .. } = &b.term {
                    all.push(FlatStmt {
                        target: Ref {
                            name: "$cond".to_owned(),
                            offset: 0,
                        },
                        value: cond.clone(),
                    });
                }
            }
            Cow::Owned(all)
        };

        let t2 = Instant::now();
        enter(CompilePhase::Bind);
        probe.begin("bind");
        // The baseline path ignores the constant memory on purpose: the
        // Figure 2 comparator routes every operand through data memory.
        let const_mem = if options.baseline {
            None
        } else {
            target.const_mem
        };
        let bound = target.data_memory().and_then(|dm| {
            Binding::allocate_with_const_mem(
                &program,
                function,
                &target.netlist,
                dm,
                const_mem,
                &bind_stmts,
            )
            .map_err(|e| CompileError::from_codegen(function, CompilePhase::Bind, e))
            .map(|binding| (binding, target.netlist.storage(dm).width))
        });
        probe.end("bind");
        report.phase("bind", t2.elapsed().as_nanos() as u64);
        let (mut binding, width) = bound?;
        expired(&probe, CompilePhase::Bind)?;

        let t3 = Instant::now();
        // Selection and emission both happen inside codegen; attribute
        // panics there to the emit phase (the enclosing span).
        enter(CompilePhase::Emit);
        probe.begin("codegen");
        let emitted = if options.baseline {
            if straight {
                baseline_compile(
                    &cfg.blocks[0].stmts,
                    &target.selector,
                    &target.base,
                    &mut binding,
                    &target.netlist,
                    &mut self.bdd,
                    &target.emit_tables,
                    width,
                    &mut probe,
                )
                .map(emitted_as_one_block)
            } else {
                Err(CodegenError::NoBranchPath {
                    detail: "the baseline per-operator compiler supports straight-line code only"
                        .to_owned(),
                })
            }
        } else if straight {
            compile(
                &cfg.blocks[0].stmts,
                &target.selector,
                &target.base,
                &mut binding,
                &target.netlist,
                &mut self.bdd,
                &target.emit_tables,
                width,
                &mut probe,
            )
            .map(emitted_as_one_block)
        } else {
            compile_cfg(
                &cfg,
                &target.selector,
                &target.base,
                &mut binding,
                &target.netlist,
                &mut self.bdd,
                &target.emit_tables,
                width,
                &mut probe,
            )
        };
        probe.end("codegen");
        let codegen_ns = t3.elapsed().as_nanos() as u64;
        let EmittedCfg {
            ops,
            block_ranges,
            stats: emit,
        } = emitted.map_err(|e| CompileError::from_codegen(function, CompilePhase::Emit, e))?;
        // Selection time is measured inside codegen per statement; the
        // rest of the codegen wall clock (splitting, spill routing, RT
        // emission) is the emit phase.
        report.phase("select", emit.select_ns);
        report.phase("emit", codegen_ns.saturating_sub(emit.select_ns));
        report.count("emit.statements", emit.statements);
        report.count("emit.splits", emit.splits);
        report.count("emit.spill-stores", emit.spill_stores);
        report.count("emit.reloads", emit.reloads);
        report.count("select.rules-tried", emit.select.rules_tried);
        report.count("select.labels-set", emit.select.labels_set);
        expired(&probe, CompilePhase::Emit)?;

        // Value placement: keep chained results register-resident.  The
        // baseline path stays memory-bound on purpose — it models the
        // Figure 2 target-specific compiler whose operands travel through
        // memory.
        let (mut ops, block_ranges, alloc) = match &target.pool {
            Some(pool) if options.allocate_registers && !options.baseline => {
                let t4 = Instant::now();
                enter(CompilePhase::Allocate);
                probe.begin("allocate");
                let (ops, ranges, stats) = if straight {
                    let liveness = Liveness::analyze(&cfg.blocks[0].stmts);
                    let (ops, stats) = allocate_probed(
                        &ops,
                        pool,
                        &liveness,
                        MemLayout::from_binding(&binding),
                        &AllocOptions::default(),
                        &mut probe,
                    );
                    let n = ops.len();
                    // One block spanning all ops, not `(0..n).collect()`.
                    #[allow(clippy::single_range_in_vec_init)]
                    (ops, vec![0..n], stats)
                } else {
                    let liveness = CfgLiveness::analyze(&cfg);
                    allocate_cfg_probed(
                        &ops,
                        &block_ranges,
                        pool,
                        &liveness,
                        MemLayout::from_binding(&binding),
                        &AllocOptions::default(),
                        &mut probe,
                    )
                };
                probe.end("allocate");
                report.phase("allocate", t4.elapsed().as_nanos() as u64);
                report.count(
                    "allocate.reloads-eliminated",
                    stats.reloads_eliminated as u64,
                );
                report.count("allocate.stores-eliminated", stats.stores_eliminated as u64);
                report.count("allocate.spills", stats.spills as u64);
                (ops, ranges, Some(stats))
            }
            _ => (ops, block_ranges, None),
        };
        expired(&probe, CompilePhase::Allocate)?;

        // Transfer targets leave emission as *block ids*; now that op
        // positions are final, rewrite them to vertical op indices (the
        // first op of the target block).  Compacted execution rewrites
        // them once more, to word indices, in `Schedule::materialize`.
        if !straight {
            for op in ops.iter_mut() {
                if op.transfer.is_some() {
                    if let SimExpr::Const(b) = op.expr {
                        op.expr = SimExpr::Const(block_ranges[b as usize].start as u64);
                    }
                }
            }
        }

        let schedule = options.compaction.then(|| {
            let t5 = Instant::now();
            enter(CompilePhase::Compact);
            probe.begin("compact");
            let schedule = if straight {
                compact(&ops, &mut self.bdd)
            } else {
                compact_cfg(&ops, &block_ranges, &mut self.bdd)
            };
            probe.end("compact");
            report.phase("compact", t5.elapsed().as_nanos() as u64);
            schedule
        });

        let bdd = self.bdd.counters().delta(&bdd_before);
        report.count("bdd.nodes-allocated", bdd.nodes);
        report.count("bdd.op-cache-hits", bdd.op_hits);
        report.count("bdd.op-cache-misses", bdd.op_misses);
        report.count("bdd.unique-probes", bdd.unique_probes);
        report.count("bdd.unique-lookups", bdd.unique_lookups);

        Ok(CompiledKernel {
            ops,
            schedule,
            binding,
            alloc,
            report,
        })
    }
}

/// Wraps a straight-line emission result in the single-block CFG shape.
// One block spanning all ops, not `(0..n).collect()`.
#[allow(clippy::single_range_in_vec_init)]
fn emitted_as_one_block(e: Emitted) -> EmittedCfg {
    let n = e.ops.len();
    EmittedCfg {
        ops: e.ops,
        block_ranges: vec![0..n],
        stats: e.stats,
    }
}

/// The retained allocations of a torn-down [`CompileSession`]: overlay
/// node pages, hash tables and interner storage, with their *contents*
/// cleared.
///
/// Pages carry no handles, so they are not tied to the target that
/// produced them — [`Target::session_from`] accepts pages from any
/// session.  `Default` gives empty pages (a cold session).
#[derive(Debug, Default)]
pub struct SessionPages {
    bdd: record_bdd::OverlayPages,
}

/// Thread-parallel batch compilation over one frozen target.
///
/// Worker threads pull request indices off a shared atomic counter; each
/// request is compiled in its *own* fresh session, so output is
/// byte-identical to sequential [`Target::compile`] calls no matter how
/// the requests land on threads.  Uses `std::thread::scope` — no runtime,
/// no extra dependencies — and caps workers at the smaller of the request
/// count and available parallelism.
pub(crate) fn compile_batch(
    target: &Target,
    requests: &[CompileRequest<'_>],
) -> Vec<Result<CompiledKernel, CompileError>> {
    if requests.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(requests.len());
    if workers <= 1 {
        return requests.iter().map(|r| target.compile(r)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<Result<CompiledKernel, CompileError>>> =
        (0..requests.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(request) = requests.get(i) else {
                            break;
                        };
                        done.push((i, target.compile(request)));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("batch worker panicked") {
                results[i] = Some(result);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every request index was claimed by exactly one worker"))
        .collect()
}

/// [`compile_batch`] with tracing: every request compiles in a fresh
/// session whose collector records into lane = request index, and the
/// lanes merge — by moving event buffers, no locks — after the workers
/// join.  Lanes come back sorted by request index, so the merged trace
/// is deterministic regardless of scheduling.
pub(crate) fn compile_batch_traced(
    target: &Target,
    requests: &[CompileRequest<'_>],
) -> (Vec<Result<CompiledKernel, CompileError>>, Trace) {
    let compile_one = |i: usize, request: &CompileRequest<'_>| {
        let mut session = target.session();
        session.install_collector(i as u32);
        let result = session.compile(request);
        let trace = session.take_trace().expect("collector installed above");
        (result, trace)
    };
    if requests.is_empty() {
        return (Vec::new(), Trace::default());
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(requests.len());
    if workers <= 1 {
        let (mut results, mut traces) = (Vec::new(), Vec::new());
        for (i, request) in requests.iter().enumerate() {
            let (result, trace) = compile_one(i, request);
            results.push(result);
            traces.push(trace);
        }
        return (results, Trace::merge(traces));
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<(Result<CompiledKernel, CompileError>, Trace)>> =
        (0..requests.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(request) = requests.get(i) else {
                            break;
                        };
                        done.push((i, compile_one(i, request)));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("batch worker panicked") {
                slots[i] = Some(result);
            }
        }
    });
    let (mut results, mut traces) = (Vec::new(), Vec::new());
    for slot in slots {
        let (result, trace) = slot.expect("every request index was claimed by exactly one worker");
        results.push(result);
        traces.push(trace);
    }
    (results, Trace::merge(traces))
}
