//! Compilation sessions and the parallel batch API.
//!
//! The retarget artifact ([`crate::Target`]) is frozen; everything a
//! compilation mutates lives here.  A [`CompileSession`] owns the
//! session-local BDD overlay arena (emission and compaction conjoin
//! execution conditions, which creates nodes) plus whatever binding and
//! allocation state each request needs.  Sessions are cheap to open —
//! the overlay starts empty and pages grow on demand — so the batch API
//! simply opens one per request, which also makes batch output
//! byte-identical to sequential output.

use crate::error::{CompileError, CompilePhase};
use crate::pipeline::{CompileOptions, CompiledKernel, Target};
use record_bdd::BddOverlay;
use record_codegen::{baseline_compile, compile, Binding};
use record_compact::compact;
use record_regalloc::{allocate, AllocOptions, Liveness, MemLayout};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One compilation request: a mini-C translation unit, the function to
/// compile, and the options to compile it under.
///
/// Built in builder style:
///
/// ```ignore
/// let req = CompileRequest::new(source, "f").compaction(false);
/// let kernel = target.compile(&req)?;
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileRequest<'a> {
    source: &'a str,
    function: &'a str,
    options: CompileOptions,
}

impl<'a> CompileRequest<'a> {
    /// A request for `function` of `source` under default options.
    pub fn new(source: &'a str, function: &'a str) -> CompileRequest<'a> {
        CompileRequest {
            source,
            function,
            options: CompileOptions::default(),
        }
    }

    /// Replaces the whole option set.
    pub fn with_options(mut self, options: CompileOptions) -> CompileRequest<'a> {
        self.options = options;
        self
    }

    /// Selects the naive per-operator baseline (the Figure 2 comparator).
    pub fn baseline(mut self, on: bool) -> CompileRequest<'a> {
        self.options.baseline = on;
        self
    }

    /// Toggles code compaction.
    pub fn compaction(mut self, on: bool) -> CompileRequest<'a> {
        self.options.compaction = on;
        self
    }

    /// Toggles the register-allocation / value-placement phase.
    pub fn allocate_registers(mut self, on: bool) -> CompileRequest<'a> {
        self.options.allocate_registers = on;
        self
    }

    /// The mini-C translation unit.
    pub fn source(&self) -> &'a str {
        self.source
    }

    /// The function to compile.
    pub fn function(&self) -> &'a str {
        self.function
    }

    /// The compile options.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }
}

/// A compilation session against one frozen [`Target`].
///
/// Owns the per-session mutable scratch — the BDD overlay arena — and
/// borrows the target immutably, so any number of sessions can run
/// concurrently over one artifact.  A session may compile several
/// requests; its overlay keeps growing (conditions from earlier requests
/// stay cached), which is the right trade for a worker thread serving a
/// request stream.  For bit-reproducible one-shots use
/// [`Target::compile`], which opens a fresh session per request.
#[derive(Debug)]
pub struct CompileSession<'t> {
    target: &'t Target,
    bdd: BddOverlay<'t>,
}

impl<'t> CompileSession<'t> {
    pub(crate) fn new(target: &'t Target) -> CompileSession<'t> {
        CompileSession {
            target,
            bdd: target.frozen.overlay(),
        }
    }

    /// The frozen artifact this session compiles against.
    pub fn target(&self) -> &'t Target {
        self.target
    }

    /// BDD nodes this session created on top of the frozen base (a
    /// scratch-memory gauge).
    pub fn scratch_nodes(&self) -> usize {
        self.bdd.local_node_count()
    }

    /// Fraction of this session's BDD op-cache lookups served from cache
    /// (frozen-base hits included).
    pub fn bdd_op_cache_hit_rate(&self) -> f64 {
        self.bdd.op_cache_hit_rate()
    }

    /// Mean probe-chain length of this session's local unique-table
    /// lookups.
    pub fn bdd_unique_avg_probe_len(&self) -> f64 {
        self.bdd.unique_avg_probe_len()
    }

    /// Compiles one request.
    ///
    /// # Errors
    ///
    /// Structured [`CompileError`]s for mini-C errors and code-generation
    /// failures (no cover, storage exhaustion, missing spill paths).
    pub fn compile(
        &mut self,
        request: &CompileRequest<'_>,
    ) -> Result<CompiledKernel, CompileError> {
        let target = self.target;
        let function = request.function();
        let options = request.options();
        let program = record_ir::parse(request.source())
            .map_err(|e| CompileError::from_frontend(function, CompilePhase::Parse, &e))?;
        let flat = record_ir::lower(&program, function)
            .map_err(|e| CompileError::from_frontend(function, CompilePhase::Lower, &e))?;
        let dm = target.data_memory()?;
        let width = target.netlist.storage(dm).width;
        let mut binding = Binding::allocate(&program, function, &target.netlist, dm)
            .map_err(|e| CompileError::from_codegen(function, CompilePhase::Bind, e))?;
        let ops = if options.baseline {
            baseline_compile(
                &flat,
                &target.selector,
                &target.base,
                &mut binding,
                &target.netlist,
                &mut self.bdd,
                &target.emit_tables,
                width,
            )
        } else {
            compile(
                &flat,
                &target.selector,
                &target.base,
                &mut binding,
                &target.netlist,
                &mut self.bdd,
                &target.emit_tables,
                width,
            )
        }
        .map_err(|e| CompileError::from_codegen(function, CompilePhase::Emit, e))?;
        // Value placement: keep chained results register-resident.  The
        // baseline path stays memory-bound on purpose — it models the
        // Figure 2 target-specific compiler whose operands travel through
        // memory.
        let (ops, alloc) = match &target.pool {
            Some(pool) if options.allocate_registers && !options.baseline => {
                let liveness = Liveness::analyze(&flat);
                let (ops, stats) = allocate(
                    &ops,
                    pool,
                    &liveness,
                    MemLayout::from_binding(&binding),
                    &AllocOptions::default(),
                );
                (ops, Some(stats))
            }
            _ => (ops, None),
        };
        let schedule = options.compaction.then(|| compact(&ops, &mut self.bdd));
        Ok(CompiledKernel {
            ops,
            schedule,
            binding,
            alloc,
        })
    }
}

/// Thread-parallel batch compilation over one frozen target.
///
/// Worker threads pull request indices off a shared atomic counter; each
/// request is compiled in its *own* fresh session, so output is
/// byte-identical to sequential [`Target::compile`] calls no matter how
/// the requests land on threads.  Uses `std::thread::scope` — no runtime,
/// no extra dependencies — and caps workers at the smaller of the request
/// count and available parallelism.
pub(crate) fn compile_batch(
    target: &Target,
    requests: &[CompileRequest<'_>],
) -> Vec<Result<CompiledKernel, CompileError>> {
    if requests.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(requests.len());
    if workers <= 1 {
        return requests.iter().map(|r| target.compile(r)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<Result<CompiledKernel, CompileError>>> =
        (0..requests.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(request) = requests.get(i) else {
                            break;
                        };
                        done.push((i, target.compile(request)));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("batch worker panicked") {
                results[i] = Some(result);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every request index was claimed by exactly one worker"))
        .collect()
}
