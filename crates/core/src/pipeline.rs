//! The retargeting pipeline and the frozen retarget artifact.
//!
//! [`Record::retarget`] runs once per processor model and returns a
//! [`Target`]: an immutable, `Send + Sync` compiler for that processor.
//! Everything mutable during compilation — the BDD overlay arena, the
//! variable binding, allocation state — lives in a per-compilation
//! [`crate::CompileSession`], so one retargeted `Target` can serve any
//! number of concurrent compilations through [`Target::compile`] and
//! [`Target::compile_batch`].

use crate::error::{CompileError, PipelineError};
use crate::session::{CompileRequest, CompileSession};
use record_bdd::FrozenBdd;
use record_codegen::{Binding, EmitTables, Machine, RtOp};
use record_compact::Schedule;
use record_grammar::TreeGrammar;
use record_isex::{ExtractOptions, VarMap};
use record_netlist::{Netlist, StorageId, StorageKind};
use record_regalloc::{AllocStats, RegisterPool};
use record_rtl::{ExtensionOptions, TemplateBase};
use record_selgen::{emit_rust, Selector};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options for [`Record::retarget`].
#[derive(Debug, Clone, Default)]
pub struct RetargetOptions {
    /// ISE limits.
    pub extract: ExtractOptions,
    /// Algebraic extension configuration (§3 of the paper).
    pub extension: ExtensionOptions,
    /// Also emit the generated tree parser as Rust source (iburg's code
    /// generation step; included in the measured retargeting time when on).
    pub emit_parser_source: bool,
}

/// Retargeting report: one row of the paper's Table 3 (the count
/// columns) plus the per-phase time/counter breakdown as a
/// [`record_probe::Report`].
///
/// This is the single retarget-side statistics struct — phase times that
/// used to be separate `t_*` `Duration` fields live in [`Self::report`]
/// under the phase labels `"parse"`, `"extract"`, `"template-gen"`,
/// `"rule-gen"`, `"selector-gen"` and `"freeze"`, with accessor methods
/// preserving the old vocabulary.
#[derive(Debug, Clone)]
pub struct RetargetReport {
    /// Processor name from the HDL model.
    pub processor: String,
    /// Templates delivered by ISE (after validity filtering and merging).
    pub templates_extracted: usize,
    /// Templates after commutative/rewrite extension — the paper's
    /// "number of RT templates" column.
    pub templates_extended: usize,
    /// Routes discarded for unsatisfiable conditions.
    pub unsat_discarded: usize,
    /// Grammar rules.
    pub rules: usize,
    /// Non-terminals.
    pub nonterminals: usize,
    /// Allocatable register classes discovered for the register pool
    /// (0 when the model has no data memory).
    pub pool_registers: usize,
    /// Total allocatable register cells in the pool.
    pub pool_cells: u64,
    /// Per-phase wall-clock times and work counters.
    pub report: record_probe::Report,
    /// Total retargeting wall clock in nanoseconds — the paper's
    /// "retargeting time" column (phase times plus inter-phase glue).
    pub total_ns: u64,
}

impl RetargetReport {
    fn phase_dur(&self, label: &str) -> Duration {
        Duration::from_nanos(self.report.phase_ns(label).unwrap_or(0))
    }

    /// Time in the HDL frontend (parsing + elaboration; phase `"parse"`).
    pub fn t_frontend(&self) -> Duration {
        self.phase_dur("parse")
    }

    /// Time in instruction-set extraction (phase `"extract"`).
    pub fn t_extract(&self) -> Duration {
        self.phase_dur("extract")
    }

    /// Time in algebraic template extension (phase `"template-gen"`).
    pub fn t_extend(&self) -> Duration {
        self.phase_dur("template-gen")
    }

    /// Time constructing the tree grammar (phase `"rule-gen"`).
    pub fn t_grammar(&self) -> Duration {
        self.phase_dur("rule-gen")
    }

    /// Time generating the selector tables (phase `"selector-gen"`).
    pub fn t_selector(&self) -> Duration {
        self.phase_dur("selector-gen")
    }

    /// Total retargeting time.
    pub fn t_total(&self) -> Duration {
        Duration::from_nanos(self.total_ns)
    }
}

/// The retargetable compiler entry point.
#[derive(Debug)]
pub struct Record;

impl Record {
    /// Retargets the compiler to the processor described by `hdl`.
    ///
    /// The returned [`Target`] is frozen: the netlist, template base,
    /// grammar, selector, execution-condition BDDs and register pool are
    /// all fixed at this point, and compilation never mutates them.
    ///
    /// # Errors
    ///
    /// Fails on malformed HDL, elaboration errors or extraction errors
    /// (combinational cycles, route explosion).
    pub fn retarget(hdl: &str, options: &RetargetOptions) -> Result<Target, PipelineError> {
        Record::retarget_probed(hdl, options, &mut record_probe::Probe::disabled())
    }

    /// [`Record::retarget`] with a trace probe: every retargeting phase
    /// (`parse`, `extract`, `template-gen`, `rule-gen`, `selector-gen`,
    /// `freeze`) is bracketed by a span on `probe`, and phase sizes are
    /// reported as counters.  The same phase labels appear in the
    /// returned target's [`RetargetReport`], probe or not.
    ///
    /// # Errors
    ///
    /// As [`Record::retarget`].  Spans stay balanced on the error path.
    pub fn retarget_probed(
        hdl: &str,
        options: &RetargetOptions,
        probe: &mut record_probe::Probe<'_>,
    ) -> Result<Target, PipelineError> {
        let mut report = record_probe::Report::with_capacity(6, 8);
        let t0 = Instant::now();

        probe.begin("parse");
        let parsed = record_hdl::parse(hdl)
            .map_err(|e| PipelineError::Hdl(e.to_string()))
            .and_then(|model| {
                record_netlist::elaborate(&model).map_err(|e| PipelineError::Netlist(e.to_string()))
            });
        probe.end("parse");
        report.phase("parse", t0.elapsed().as_nanos() as u64);
        let netlist = parsed?;

        let t1 = Instant::now();
        probe.begin("extract");
        let extracted = record_isex::extract(&netlist, &options.extract)
            .map_err(|e| PipelineError::Extract(e.to_string()));
        probe.end("extract");
        report.phase("extract", t1.elapsed().as_nanos() as u64);
        let extraction = extracted?;
        let templates_extracted = extraction.base.len();
        probe.count("extract.templates", templates_extracted as u64);
        report.count("extract.templates", templates_extracted as u64);

        let t2 = Instant::now();
        probe.begin("template-gen");
        let mut base = extraction.base;
        record_rtl::extend(&mut base, &options.extension);
        probe.end("template-gen");
        report.phase("template-gen", t2.elapsed().as_nanos() as u64);
        probe.count("template-gen.templates", base.len() as u64);
        report.count("template-gen.templates", base.len() as u64);

        let t3 = Instant::now();
        let grammar = Arc::new(TreeGrammar::from_base_probed(&base, &netlist, probe));
        report.phase("rule-gen", t3.elapsed().as_nanos() as u64);
        report.count("rule-gen.nonterminals", grammar.nonterm_count() as u64);
        report.count("rule-gen.rules", grammar.rules().len() as u64);

        let t4 = Instant::now();
        probe.begin("selector-gen");
        let selector = Selector::generate(Arc::clone(&grammar));
        let parser_source = if options.emit_parser_source {
            Some(emit_rust(&grammar, netlist.name()))
        } else {
            None
        };
        probe.end("selector-gen");
        report.phase("selector-gen", t4.elapsed().as_nanos() as u64);

        // Freeze the artifact: data memory, register pool and the
        // emission tables (register-file address fields, instruction-bit
        // literals) are fixed by the netlist and template base, so they
        // are built *now*, not recomputed on every compile.  The literal
        // handles must be created before `freeze` so sessions see them as
        // frozen-base handles.
        let t5 = Instant::now();
        probe.begin("freeze");
        let mut manager = extraction.manager;
        let emit_tables =
            EmitTables::build(&netlist, &mut manager, extraction.varmap.iword_width());
        let data_mem = netlist
            .storages()
            .iter()
            .filter(|s| s.kind == StorageKind::Memory)
            .max_by_key(|s| s.size)
            .map(|s| s.id);
        let const_mem = const_memory_of(&grammar, &netlist, data_mem);
        let pool = data_mem.map(|dm| RegisterPool::discover(&netlist, &base, dm));
        probe.end("freeze");
        report.phase("freeze", t5.elapsed().as_nanos() as u64);
        report.count("freeze.bdd-nodes", manager.counters().nodes);

        let stats = RetargetReport {
            processor: netlist.name().to_owned(),
            templates_extracted,
            templates_extended: base.len(),
            unsat_discarded: extraction.stats.unsat_discarded,
            rules: grammar.rules().len(),
            nonterminals: grammar.nonterm_count(),
            pool_registers: pool.as_ref().map_or(0, |p| p.classes().len()),
            pool_cells: pool.as_ref().map_or(0, |p| p.capacity()),
            report,
            total_ns: t0.elapsed().as_nanos() as u64,
        };
        Ok(Target {
            netlist,
            base,
            grammar,
            selector,
            frozen: manager.freeze(),
            varmap: extraction.varmap,
            emit_tables,
            stats,
            parser_source,
            data_mem,
            const_mem,
            pool,
        })
    }
}

/// Detects a *constant memory*: a second memory whose read port feeds
/// multiplier operands (a DSP coefficient ROM, like the paper's
/// `bassboost` example) and which no template ever writes.
///
/// The evidence is the generated grammar itself: a memory qualifies when
/// some rule reads it as a direct operand of a `*` pattern and no rule
/// stores to it.  Variable binding uses this to place read-only,
/// multiply-only variables where the `mul(coef, x)`-shaped rules can
/// reach them.
fn const_memory_of(
    grammar: &TreeGrammar,
    netlist: &Netlist,
    data_mem: Option<StorageId>,
) -> Option<StorageId> {
    use record_grammar::{GPat, TermKey};
    use record_rtl::OpKind;
    let mut mul_read: Vec<StorageId> = Vec::new();
    let mut written: Vec<StorageId> = Vec::new();
    fn walk(
        p: &GPat,
        under_mul: bool,
        mul_read: &mut Vec<StorageId>,
        written: &mut Vec<StorageId>,
    ) {
        let GPat::T(key, kids) = p else { return };
        match key {
            TermKey::MemRead(s) if under_mul => mul_read.push(*s),
            TermKey::Store(s) => written.push(*s),
            _ => {}
        }
        let is_mul = matches!(key, TermKey::Op(OpKind::Mul));
        for k in kids {
            walk(k, is_mul, mul_read, written);
        }
    }
    for rule in grammar.rules() {
        walk(&rule.rhs, false, &mut mul_read, &mut written);
    }
    // First qualifying storage in netlist declaration order, for
    // determinism when a model would somehow have several.
    netlist
        .storages()
        .iter()
        .filter(|s| s.kind == StorageKind::Memory)
        .map(|s| s.id)
        .find(|id| Some(*id) != data_mem && mul_read.contains(id) && !written.contains(id))
}

/// Options for [`Target::compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileOptions {
    /// Use the naive per-operator baseline instead of tree-parsing
    /// selection (the Figure 2 comparator).
    pub baseline: bool,
    /// Run code compaction after selection.
    pub compaction: bool,
    /// Run the register-allocation / value-placement phase after emission
    /// (`record-regalloc`): chained results stay register-resident across
    /// statements instead of round-tripping through data memory.  Ignored
    /// on the baseline path, which deliberately stays memory-bound.
    pub allocate_registers: bool,
    /// Compilation time budget in nanoseconds, `None` for unbounded.
    ///
    /// The deadline is cooperative: the session arms the probe's deadline
    /// when compilation starts and checks it at phase boundaries, so an
    /// exceeded budget surfaces as a structured
    /// [`CompileError::DeadlineExceeded`] naming the last completed phase
    /// rather than interrupting a phase mid-flight.
    pub deadline_ns: Option<u64>,
    /// Fault-injection hook: deliberately panic when compilation enters
    /// this phase.
    ///
    /// Exists to *prove* the panic-containment boundary: the injected
    /// panic must come back as a structured [`CompileError::Internal`]
    /// (wire kind `internal`), not kill the calling thread.  Used by the
    /// serve smoke test and the fuzz harness's containment tests; never
    /// set it in production requests.
    pub inject_panic: Option<crate::CompilePhase>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            baseline: false,
            compaction: true,
            allocate_registers: true,
            deadline_ns: None,
            inject_panic: None,
        }
    }
}

/// Per-compilation phase times and work counters, attached to every
/// [`CompiledKernel`].
///
/// An alias of [`record_probe::Report`]: phases use the
/// [`crate::CompilePhase`] label vocabulary (`parse`, `lower`, `bind`,
/// `select`, `emit`, `allocate`, `compact`); the counter vocabulary is
/// documented in ARCHITECTURE.md's Observability section.
pub type CompileReport = record_probe::Report;

/// A compiled kernel: vertical RT code plus the compacted schedule.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Vertical RT operations in emission order (post-allocation when the
    /// register allocator ran).
    ///
    /// The `cond` handles on these ops are scoped to the session that
    /// compiled the kernel (see [`record_codegen::RtOp::cond`]); execute,
    /// list, compare and simulate freely, but do not feed them back into
    /// [`Target::manager`].
    pub ops: Vec<RtOp>,
    /// Compacted instruction-word schedule (empty when compaction is off).
    pub schedule: Option<Schedule>,
    /// Variable binding used (for simulation set-up).
    pub binding: Binding,
    /// Register-allocation counters (`None` when the phase did not run).
    pub alloc: Option<AllocStats>,
    /// Per-phase times and work counters for this compilation (always
    /// attached; see [`crate::CompileReport`]).
    pub report: crate::CompileReport,
}

impl CompiledKernel {
    /// Code size in instruction words: compacted size when available,
    /// vertical size otherwise.
    pub fn code_size(&self) -> usize {
        match &self.schedule {
            Some(s) => s.len(),
            None => self.ops.len(),
        }
    }
}

/// A retargeted compiler for one processor: the frozen retarget artifact.
///
/// `Target` is immutable and `Send + Sync`.  Compilation goes through
/// [`Target::compile`] (one-shot), [`Target::session`] (an explicit
/// reusable session) or [`Target::compile_batch`] (thread-parallel
/// fan-out); none of them takes `&mut self`, so a single retargeted
/// artifact can be shared across threads and serve concurrent traffic.
#[derive(Debug)]
pub struct Target {
    pub(crate) netlist: Netlist,
    pub(crate) base: TemplateBase,
    /// Shared with the selector (one rule set, two handles).
    pub(crate) grammar: Arc<TreeGrammar>,
    pub(crate) selector: Selector,
    /// Frozen execution-condition BDDs; sessions layer overlays on top.
    pub(crate) frozen: FrozenBdd,
    pub(crate) varmap: VarMap,
    /// Emission tables (rf address fields, instruction-bit literals),
    /// fixed at retarget time.
    pub(crate) emit_tables: EmitTables,
    pub(crate) stats: RetargetReport,
    pub(crate) parser_source: Option<String>,
    /// Default data memory, fixed at retarget time (`None` when the model
    /// has none — every compile then fails with a diagnostic).
    pub(crate) data_mem: Option<StorageId>,
    /// Constant memory (multiplier-fed ROM), detected at retarget time;
    /// see [`const_memory_of`].
    pub(crate) const_mem: Option<StorageId>,
    /// Register pool, discovered eagerly at retarget time.
    pub(crate) pool: Option<RegisterPool>,
}

/// Compile-time proof of the API contract: a retargeted artifact is
/// shareable across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Target>();
};

impl Target {
    /// The retargeting report: Table 3 counts plus the per-phase
    /// time/counter breakdown.
    pub fn report(&self) -> &RetargetReport {
        &self.stats
    }

    /// The elaborated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The extended template base.
    pub fn base(&self) -> &TemplateBase {
        &self.base
    }

    /// The constructed tree grammar.
    pub fn grammar(&self) -> &TreeGrammar {
        &self.grammar
    }

    /// The generated code selector.
    pub fn selector(&self) -> &Selector {
        &self.selector
    }

    /// BDD variable layout (instruction width, mode bits).
    pub fn varmap(&self) -> &VarMap {
        &self.varmap
    }

    /// The frozen store of all execution conditions of this target.
    ///
    /// Valid for every handle created at retarget time (template
    /// conditions, `base().template(id).cond`).  Handles found on
    /// *compiled* ops ([`CompiledKernel::ops`]) may point into the
    /// overlay of the session that emitted them and must not be
    /// interpreted here — see [`record_codegen::RtOp::cond`].
    pub fn manager(&self) -> &FrozenBdd {
        &self.frozen
    }

    /// The register pool discovered at retarget time (`None` when the
    /// model has no data memory to spill through).
    pub fn register_pool(&self) -> Option<&RegisterPool> {
        self.pool.as_ref()
    }

    /// The emitted tree-parser source, if requested at retarget time.
    pub fn parser_source(&self) -> Option<&str> {
        self.parser_source.as_deref()
    }

    /// The default data memory: the first (largest) `Memory` storage.
    ///
    /// # Errors
    ///
    /// [`CompileError::NoDataMemory`] when the model has none.
    pub fn data_memory(&self) -> Result<StorageId, CompileError> {
        self.data_mem.ok_or_else(|| CompileError::NoDataMemory {
            processor: self.stats.processor.clone(),
        })
    }

    /// A data memory by instance name.
    ///
    /// # Errors
    ///
    /// [`CompileError::UnknownStorage`] when no storage has that name, and
    /// [`CompileError::NotAMemory`] when one does but it is a register or
    /// register file.
    pub fn memory_named(&self, name: &str) -> Result<StorageId, CompileError> {
        let s = self
            .netlist
            .storage_by_name(name)
            .ok_or_else(|| CompileError::UnknownStorage {
                name: name.to_owned(),
            })?;
        if s.kind != StorageKind::Memory {
            return Err(CompileError::NotAMemory {
                name: name.to_owned(),
            });
        }
        Ok(s.id)
    }

    /// Opens a compilation session against this frozen artifact.
    ///
    /// A session owns all per-compilation mutable state (the BDD overlay
    /// arena) and can compile any number of requests; open one per thread
    /// when rolling your own parallelism, or use
    /// [`Target::compile_batch`].
    pub fn session(&self) -> CompileSession<'_> {
        CompileSession::new(self)
    }

    /// Opens a compilation session that reuses the retained allocations of
    /// a previous session (see [`crate::SessionPages`]).
    ///
    /// The pages may come from a session of *any* target — they carry no
    /// handles, only capacity — which is what lets a session pool rebuild
    /// warm sessions against whichever artifact a request resolves to.
    /// Compilation output is byte-identical to a fresh [`Target::session`].
    pub fn session_from(&self, pages: crate::SessionPages) -> CompileSession<'_> {
        CompileSession::from_pages(self, pages)
    }

    /// Compiles one request against the frozen artifact.
    ///
    /// Shorthand for `self.session().compile(request)` — a fresh session
    /// is created and dropped, which keeps results bit-identical whether a
    /// request is compiled here, in an explicit session, or in a batch.
    ///
    /// # Errors
    ///
    /// Structured [`CompileError`]s for mini-C errors and code-generation
    /// failures (no cover, storage exhaustion, missing spill paths).
    pub fn compile(&self, request: &CompileRequest<'_>) -> Result<CompiledKernel, CompileError> {
        self.session().compile(request)
    }

    /// Compiles a batch of requests, fanning out across OS threads.
    ///
    /// Results come back in request order and are byte-identical to
    /// compiling each request sequentially with [`Target::compile`]: every
    /// request gets its own session over the same frozen base, so neither
    /// thread count nor scheduling can leak into the output.
    pub fn compile_batch(
        &self,
        requests: &[CompileRequest<'_>],
    ) -> Vec<Result<CompiledKernel, CompileError>> {
        crate::session::compile_batch(self, requests)
    }

    /// [`Target::compile_batch`] with tracing: each request's session
    /// records into its own trace lane (lane id = request index) and the
    /// lanes merge lock-free after the workers join.  Results are
    /// byte-identical to the untraced batch.
    pub fn compile_batch_traced(
        &self,
        requests: &[CompileRequest<'_>],
    ) -> (
        Vec<Result<CompiledKernel, CompileError>>,
        record_probe::Trace,
    ) {
        crate::session::compile_batch_traced(self, requests)
    }

    /// Runs compiled code on a zeroed machine with `init` memory words
    /// (`(variable, values)` pairs resolved through the kernel's binding)
    /// and returns the machine afterwards.
    ///
    /// # Panics
    ///
    /// Panics if an `init` variable is not bound (programming error in the
    /// caller).
    pub fn execute(&self, kernel: &CompiledKernel, init: &[(&str, Vec<u64>)]) -> Machine {
        let dm = self
            .data_memory()
            .expect("compile succeeded, data memory exists");
        let mut machine = Machine::new(&self.netlist);
        for (name, values) in init {
            // Variables live in data memory, except ROM-placed constants
            // (coefficients the binding moved into the constant memory).
            let (storage, base) = kernel
                .binding
                .assignments()
                .find(|(n, _)| n == name)
                .map(|(_, base)| (dm, base))
                .or_else(|| {
                    let rom = kernel.binding.const_mem()?;
                    kernel
                        .binding
                        .rom_assignments()
                        .find(|(n, _)| n == name)
                        .map(|(_, base)| (rom, base))
                })
                .unwrap_or_else(|| panic!("variable `{name}` is not bound"));
            for (i, v) in values.iter().enumerate() {
                machine.set_mem(storage, base + i as u64, *v);
            }
        }
        match &kernel.schedule {
            Some(s) => machine.run_compacted(&s.materialize(&kernel.ops)),
            None => machine.run(&kernel.ops),
        }
        machine
    }

    /// Renders compiled code as an assembly-like listing.
    pub fn listing(&self, kernel: &CompiledKernel) -> String {
        let mut out = String::new();
        match &kernel.schedule {
            Some(s) => {
                for (wi, word) in s.words().iter().enumerate() {
                    let rts: Vec<String> = word
                        .ops
                        .iter()
                        .map(|&i| kernel.ops[i].render(&self.netlist))
                        .collect();
                    out.push_str(&format!("{wi:>4}: {}\n", rts.join("  ||  ")));
                }
            }
            None => {
                for (i, op) in kernel.ops.iter().enumerate() {
                    out.push_str(&format!("{i:>4}: {}\n", op.render(&self.netlist)));
                }
            }
        }
        out
    }
}
