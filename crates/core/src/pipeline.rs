//! The retargeting and compilation pipeline.

use record_bdd::BddManager;
use record_codegen::{baseline_compile, compile, Binding, Machine, RtOp};
use record_compact::{compact, Schedule};
use record_grammar::TreeGrammar;
use record_isex::{ExtractOptions, VarMap};
use record_netlist::{Netlist, StorageId, StorageKind};
use record_regalloc::{allocate, AllocOptions, AllocStats, Liveness, MemLayout, RegisterPool};
use record_rtl::{ExtensionOptions, TemplateBase};
use record_selgen::{emit_rust, Selector};
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// Any error of the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    Hdl(String),
    Netlist(String),
    Extract(String),
    Frontend(String),
    Codegen(String),
    /// The model has no memory suitable as data memory.
    NoDataMemory,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Hdl(s) => write!(f, "HDL frontend: {s}"),
            PipelineError::Netlist(s) => write!(f, "elaboration: {s}"),
            PipelineError::Extract(s) => write!(f, "instruction-set extraction: {s}"),
            PipelineError::Frontend(s) => write!(f, "mini-C frontend: {s}"),
            PipelineError::Codegen(s) => write!(f, "code generation: {s}"),
            PipelineError::NoDataMemory => write!(f, "model has no data memory"),
        }
    }
}

impl Error for PipelineError {}

/// Options for [`Record::retarget`].
#[derive(Debug, Clone, Default)]
pub struct RetargetOptions {
    /// ISE limits.
    pub extract: ExtractOptions,
    /// Algebraic extension configuration (§3 of the paper).
    pub extension: ExtensionOptions,
    /// Also emit the generated tree parser as Rust source (iburg's code
    /// generation step; included in the measured retargeting time when on).
    pub emit_parser_source: bool,
}

/// Per-phase retargeting statistics: one row of the paper's Table 3, plus
/// the phase breakdown.
#[derive(Debug, Clone)]
pub struct RetargetStats {
    /// Processor name from the HDL model.
    pub processor: String,
    /// Templates delivered by ISE (after validity filtering and merging).
    pub templates_extracted: usize,
    /// Templates after commutative/rewrite extension — the paper's
    /// "number of RT templates" column.
    pub templates_extended: usize,
    /// Routes discarded for unsatisfiable conditions.
    pub unsat_discarded: usize,
    /// Grammar rules.
    pub rules: usize,
    /// Non-terminals.
    pub nonterminals: usize,
    /// Phase times.
    pub t_frontend: Duration,
    pub t_extract: Duration,
    pub t_extend: Duration,
    pub t_grammar: Duration,
    pub t_selector: Duration,
    /// Total retargeting time — the paper's "retargeting time" column.
    pub t_total: Duration,
}

/// The retargetable compiler entry point.
#[derive(Debug)]
pub struct Record;

impl Record {
    /// Retargets the compiler to the processor described by `hdl`.
    ///
    /// # Errors
    ///
    /// Fails on malformed HDL, elaboration errors or extraction errors
    /// (combinational cycles, route explosion).
    pub fn retarget(hdl: &str, options: &RetargetOptions) -> Result<Target, PipelineError> {
        let t0 = Instant::now();
        let model = record_hdl::parse(hdl).map_err(|e| PipelineError::Hdl(e.to_string()))?;
        let netlist =
            record_netlist::elaborate(&model).map_err(|e| PipelineError::Netlist(e.to_string()))?;
        let t_frontend = t0.elapsed();

        let t1 = Instant::now();
        let extraction = record_isex::extract(&netlist, &options.extract)
            .map_err(|e| PipelineError::Extract(e.to_string()))?;
        let t_extract = t1.elapsed();
        let templates_extracted = extraction.base.len();

        let t2 = Instant::now();
        let mut base = extraction.base;
        record_rtl::extend(&mut base, &options.extension);
        let t_extend = t2.elapsed();

        let t3 = Instant::now();
        let grammar = TreeGrammar::from_base(&base, &netlist);
        let t_grammar = t3.elapsed();

        let t4 = Instant::now();
        let selector = Selector::generate(&grammar);
        let parser_source = if options.emit_parser_source {
            Some(emit_rust(&grammar, netlist.name()))
        } else {
            None
        };
        let t_selector = t4.elapsed();

        let stats = RetargetStats {
            processor: netlist.name().to_owned(),
            templates_extracted,
            templates_extended: base.len(),
            unsat_discarded: extraction.stats.unsat_discarded,
            rules: grammar.rules().len(),
            nonterminals: grammar.nonterm_count(),
            t_frontend,
            t_extract,
            t_extend,
            t_grammar,
            t_selector,
            t_total: t0.elapsed(),
        };
        Ok(Target {
            netlist,
            base,
            grammar,
            selector,
            manager: extraction.manager,
            varmap: extraction.varmap,
            stats,
            parser_source,
            pool: None,
        })
    }
}

/// Options for [`Target::compile`].
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Use the naive per-operator baseline instead of tree-parsing
    /// selection (the Figure 2 comparator).
    pub baseline: bool,
    /// Run code compaction after selection.
    pub compaction: bool,
    /// Run the register-allocation / value-placement phase after emission
    /// (`record-regalloc`): chained results stay register-resident across
    /// statements instead of round-tripping through data memory.  Ignored
    /// on the baseline path, which deliberately stays memory-bound.
    pub allocate_registers: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            baseline: false,
            compaction: true,
            allocate_registers: true,
        }
    }
}

/// A compiled kernel: vertical RT code plus the compacted schedule.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Vertical RT operations in emission order (post-allocation when the
    /// register allocator ran).
    pub ops: Vec<RtOp>,
    /// Compacted instruction-word schedule (empty when compaction is off).
    pub schedule: Option<Schedule>,
    /// Variable binding used (for simulation set-up).
    pub binding: Binding,
    /// Register-allocation counters (`None` when the phase did not run).
    pub alloc: Option<AllocStats>,
}

impl CompiledKernel {
    /// Code size in instruction words: compacted size when available,
    /// vertical size otherwise.
    pub fn code_size(&self) -> usize {
        match &self.schedule {
            Some(s) => s.len(),
            None => self.ops.len(),
        }
    }
}

/// A retargeted compiler for one processor.
#[derive(Debug)]
pub struct Target {
    netlist: Netlist,
    base: TemplateBase,
    grammar: TreeGrammar,
    selector: Selector,
    manager: BddManager,
    varmap: VarMap,
    stats: RetargetStats,
    parser_source: Option<String>,
    /// Lazily discovered register pool (fixed per target: the netlist and
    /// template base never change after retargeting).
    pool: Option<RegisterPool>,
}

impl Target {
    /// Retargeting statistics (a Table 3 row).
    pub fn stats(&self) -> &RetargetStats {
        &self.stats
    }

    /// The elaborated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The extended template base.
    pub fn base(&self) -> &TemplateBase {
        &self.base
    }

    /// The constructed tree grammar.
    pub fn grammar(&self) -> &TreeGrammar {
        &self.grammar
    }

    /// The generated code selector.
    pub fn selector(&self) -> &Selector {
        &self.selector
    }

    /// BDD variable layout (instruction width, mode bits).
    pub fn varmap(&self) -> &VarMap {
        &self.varmap
    }

    /// The BDD manager owning all execution conditions of this target.
    pub fn manager(&self) -> &BddManager {
        &self.manager
    }

    /// The emitted tree-parser source, if requested at retarget time.
    pub fn parser_source(&self) -> Option<&str> {
        self.parser_source.as_deref()
    }

    /// The default data memory: the first (largest) `Memory` storage.
    pub fn data_memory(&self) -> Result<StorageId, PipelineError> {
        self.netlist
            .storages()
            .iter()
            .filter(|s| s.kind == StorageKind::Memory)
            .max_by_key(|s| s.size)
            .map(|s| s.id)
            .ok_or(PipelineError::NoDataMemory)
    }

    /// A data memory by instance name.
    pub fn memory_named(&self, name: &str) -> Result<StorageId, PipelineError> {
        self.netlist
            .storage_by_name(name)
            .map(|s| s.id)
            .ok_or(PipelineError::NoDataMemory)
    }

    /// Compiles `function` of the mini-C translation unit `source`.
    ///
    /// # Errors
    ///
    /// Fails on mini-C errors and on code-generation failures (no cover,
    /// storage exhaustion, missing spill paths).
    pub fn compile(
        &mut self,
        source: &str,
        function: &str,
        options: &CompileOptions,
    ) -> Result<CompiledKernel, PipelineError> {
        let program =
            record_ir::parse(source).map_err(|e| PipelineError::Frontend(e.to_string()))?;
        let flat = record_ir::lower(&program, function)
            .map_err(|e| PipelineError::Frontend(e.to_string()))?;
        let dm = self.data_memory()?;
        let width = self.netlist.storage(dm).width;
        let mut binding = Binding::allocate(&program, function, &self.netlist, dm)
            .map_err(|e| PipelineError::Codegen(e.to_string()))?;
        let ops = if options.baseline {
            baseline_compile(
                &flat,
                &self.selector,
                &self.base,
                &mut binding,
                &self.netlist,
                &mut self.manager,
                width,
            )
        } else {
            compile(
                &flat,
                &self.selector,
                &self.base,
                &mut binding,
                &self.netlist,
                &mut self.manager,
                width,
            )
        }
        .map_err(|e| PipelineError::Codegen(e.to_string()))?;
        // Value placement: keep chained results register-resident.  The
        // baseline path stays memory-bound on purpose — it models the
        // Figure 2 target-specific compiler whose operands travel through
        // memory.
        let (ops, alloc) = if options.allocate_registers && !options.baseline {
            let liveness = Liveness::analyze(&flat);
            let pool = self
                .pool
                .get_or_insert_with(|| RegisterPool::discover(&self.netlist, &self.base, dm));
            let (ops, stats) = allocate(
                &ops,
                pool,
                &liveness,
                MemLayout::from_binding(&binding),
                &AllocOptions::default(),
            );
            (ops, Some(stats))
        } else {
            (ops, None)
        };
        let schedule = options.compaction.then(|| compact(&ops, &mut self.manager));
        Ok(CompiledKernel {
            ops,
            schedule,
            binding,
            alloc,
        })
    }

    /// Runs compiled code on a zeroed machine with `init` memory words
    /// (`(variable, values)` pairs resolved through the kernel's binding)
    /// and returns the machine afterwards.
    ///
    /// # Panics
    ///
    /// Panics if an `init` variable is not bound (programming error in the
    /// caller).
    pub fn execute(&self, kernel: &CompiledKernel, init: &[(&str, Vec<u64>)]) -> Machine {
        let dm = self
            .data_memory()
            .expect("compile succeeded, data memory exists");
        let mut machine = Machine::new(&self.netlist);
        for (name, values) in init {
            let base = kernel
                .binding
                .assignments()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("variable `{name}` is not bound"))
                .1;
            for (i, v) in values.iter().enumerate() {
                machine.set_mem(dm, base + i as u64, *v);
            }
        }
        match &kernel.schedule {
            Some(s) => machine.run_compacted(&s.materialize(&kernel.ops)),
            None => machine.run(&kernel.ops),
        }
        machine
    }

    /// Renders compiled code as an assembly-like listing.
    pub fn listing(&self, kernel: &CompiledKernel) -> String {
        let mut out = String::new();
        match &kernel.schedule {
            Some(s) => {
                for (wi, word) in s.words().iter().enumerate() {
                    let rts: Vec<String> = word
                        .ops
                        .iter()
                        .map(|&i| kernel.ops[i].render(&self.netlist))
                        .collect();
                    out.push_str(&format!("{wi:>4}: {}\n", rts.join("  ||  ")));
                }
            }
            None => {
                for (i, op) in kernel.ops.iter().enumerate() {
                    out.push_str(&format!("{i:>4}: {}\n", op.render(&self.netlist)));
                }
            }
        }
        out
    }
}
