//! Expression trees (ETs): the unit of code selection.
//!
//! An ET is a unary/binary tree whose inner nodes are operators (or memory
//! reads) and whose leaves are bound program variables, constants or primary
//! inputs, evaluated into an explicit destination (paper §3.1).  Per the
//! paper the destination is part of the tree: the root is the designated
//! `ASSIGN`/`STORE` terminal, so the cost of moving the result to its
//! destination is part of the derivation cost.
//!
//! ETs are stored as flat arenas so the selector can attach dynamic-
//! programming labels by node index.

use crate::types::{AssignKey, TermKey};
use record_netlist::{ProcPortId, StorageId};
use record_rtl::OpKind;

/// Index of a node within an [`Et`].
pub type NodeIdx = usize;

/// Node kinds of an expression tree.  These mirror [`TermKey`] minus the
/// immediate/constant distinction (a source constant may match either a
/// hardwired-constant terminal or an immediate field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtKind {
    /// Designated root for register/port destinations; one child.
    Assign(AssignKey),
    /// Designated root for memory destinations; children `[addr, value]`.
    Store(StorageId),
    /// Operator application.
    Op(OpKind),
    /// Memory read; one child (the address).
    MemRead(StorageId),
    /// Source constant (two's complement value masked to the data width).
    Const(u64),
    /// Value of a variable bound to a register.
    RegLeaf(StorageId),
    /// Value of a variable bound to a register-file cell; `cell` records
    /// the binding for emission.
    RfLeaf(StorageId, u32),
    /// Primary input port.
    PortLeaf(ProcPortId),
}

/// The destination of an ET.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EtDest {
    Reg(StorageId),
    /// Register-file cell (cell index fixed by the variable binding, or
    /// chosen by the register allocator when used for temporaries).
    RegFile(StorageId, u32),
    /// Memory destination; the address is part of the tree (child 0 of the
    /// `Store` root).
    Mem(StorageId),
    Port(ProcPortId),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    kind: EtKind,
    children: Vec<NodeIdx>,
}

/// A flat expression tree with an explicit destination root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Et {
    dest: EtDest,
    nodes: Vec<Node>,
    root: NodeIdx,
}

impl Et {
    /// Builds an ET evaluating `value` (built via [`EtBuilder`]) into a
    /// register/regfile/port destination.
    pub fn assign(dest: EtDest, mut builder: EtBuilder) -> Et {
        let key = match &dest {
            EtDest::Reg(s) => AssignKey::Reg(*s),
            EtDest::RegFile(s, _) => AssignKey::RegFile(*s),
            EtDest::Port(p) => AssignKey::Port(*p),
            EtDest::Mem(_) => panic!("use Et::store for memory destinations"),
        };
        let value = builder.root.expect("builder holds a value");
        let root = builder.push(EtKind::Assign(key), vec![value]);
        Et {
            dest,
            nodes: builder.nodes,
            root,
        }
    }

    /// Builds an ET storing `value` to memory `mem` at `addr` (both built
    /// within the same [`EtBuilder`]).
    pub fn store(mem: StorageId, addr: NodeIdx, value: NodeIdx, mut builder: EtBuilder) -> Et {
        let root = builder.push(EtKind::Store(mem), vec![addr, value]);
        Et {
            dest: EtDest::Mem(mem),
            nodes: builder.nodes,
            root,
        }
    }

    /// The destination.
    pub fn dest(&self) -> &EtDest {
        &self.dest
    }

    /// Root node index (the `ASSIGN`/`STORE` node).
    pub fn root(&self) -> NodeIdx {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the tree empty (never true for built trees)?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Kind of a node.
    pub fn kind(&self, idx: NodeIdx) -> EtKind {
        self.nodes[idx].kind
    }

    /// Children of a node.
    pub fn children(&self, idx: NodeIdx) -> &[NodeIdx] {
        &self.nodes[idx].children
    }

    /// Does the ET node kind match the grammar terminal `key`?
    ///
    /// This is the single matching predicate of the system: structural
    /// equality everywhere except constants, which match an exact hardwired
    /// constant or any immediate field wide enough to carry them.
    pub fn kind_matches(&self, idx: NodeIdx, key: &TermKey) -> bool {
        match (self.kind(idx), key) {
            (EtKind::Assign(a), TermKey::Assign(b)) => a == *b,
            (EtKind::Store(s), TermKey::Store(t)) => s == *t,
            (EtKind::Op(o), TermKey::Op(p)) => o == *p,
            (EtKind::MemRead(s), TermKey::MemRead(t)) => s == *t,
            (EtKind::RegLeaf(s), TermKey::RegLeaf(t)) => s == *t,
            (EtKind::RfLeaf(s, _), TermKey::RfLeaf(t)) => s == *t,
            (EtKind::PortLeaf(p), TermKey::PortLeaf(q)) => p == *q,
            (EtKind::Const(v), TermKey::ConstVal(w)) => v == *w,
            (EtKind::Const(v), TermKey::Imm { hi, lo }) => fits(v, hi - lo + 1),
            _ => false,
        }
    }

    /// Renders the subtree at `idx` for diagnostics.
    pub fn render(&self, idx: NodeIdx) -> String {
        let kids: Vec<String> = self.children(idx).iter().map(|&c| self.render(c)).collect();
        let head = match self.kind(idx) {
            EtKind::Assign(_) => "assign".to_owned(),
            EtKind::Store(_) => "store".to_owned(),
            EtKind::Op(op) => op.to_string(),
            EtKind::MemRead(_) => "mem".to_owned(),
            EtKind::Const(v) => format!("{v}"),
            EtKind::RegLeaf(s) => format!("reg{}", s.0),
            EtKind::RfLeaf(s, c) => format!("rf{}[{c}]", s.0),
            EtKind::PortLeaf(p) => format!("port{}", p.0),
        };
        if kids.is_empty() {
            head
        } else {
            format!("{head}({})", kids.join(", "))
        }
    }
}

/// Does `value` fit an unsigned field of `width` bits?
pub(crate) fn fits(value: u64, width: u16) -> bool {
    if width >= 64 {
        true
    } else {
        value < (1u64 << width)
    }
}

/// Incremental builder for [`Et`] nodes.
///
/// # Example
///
/// ```
/// use record_grammar::{Et, EtBuilder, EtDest, EtKind};
/// use record_netlist::StorageId;
/// use record_rtl::OpKind;
///
/// let mut b = EtBuilder::new();
/// let acc = b.leaf(EtKind::RegLeaf(StorageId(0)));
/// let one = b.leaf(EtKind::Const(1));
/// b.node(EtKind::Op(OpKind::Add), vec![acc, one]);
/// let et = Et::assign(EtDest::Reg(StorageId(0)), b);
/// assert_eq!(et.len(), 4); // acc, 1, +, assign
/// ```
#[derive(Debug, Clone, Default)]
pub struct EtBuilder {
    nodes: Vec<Node>,
    root: Option<NodeIdx>,
}

impl EtBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        EtBuilder::default()
    }

    /// Adds a leaf node; the last added node becomes the value root.
    pub fn leaf(&mut self, kind: EtKind) -> NodeIdx {
        self.push(kind, Vec::new())
    }

    /// Adds an inner node over existing children; the last added node
    /// becomes the value root.
    pub fn node(&mut self, kind: EtKind, children: Vec<NodeIdx>) -> NodeIdx {
        self.push(kind, children)
    }

    fn push(&mut self, kind: EtKind, children: Vec<NodeIdx>) -> NodeIdx {
        let idx = self.nodes.len();
        self.nodes.push(Node { kind, children });
        self.root = Some(idx);
        idx
    }
}
