//! Tree-grammar construction (paper §3.1).
//!
//! The extended RT template base is translated into a tree grammar
//! `G = (ΣT, ΣN, S, R, c)`:
//!
//! * **Terminals** — the designated `ASSIGN`/`STORE` root symbols, plus one
//!   terminal per storage leaf, primary port, hardware operator, hardwired
//!   constant and instruction immediate field.
//! * **Non-terminals** — `START` plus one per register, register file and
//!   primary output port: the locations that can hold (intermediate)
//!   values.  Memories are *not* non-terminals in this implementation;
//!   spill placement is handled explicitly by the scheduler (documented
//!   deviation, see DESIGN.md).
//! * **Rules** —
//!   1. *start rules* `START → ASSIGN(dest, NonTerm(dest))`, cost 0,
//!   2. *RT rules* `NonTerm(dest) → L(exp)` per template, cost 1
//!      (memory-store templates become `START → STORE(addr, value)` rules),
//!   3. *stop rules* `NonTerm(reg) → Term(reg)`, cost 0.
//!
//! Minimum-cost derivations of an expression tree in this grammar are
//! exactly minimum-RT-count implementations, including chained operations
//! and special-purpose-register allocation for intermediates.
//!
//! The crate also defines the flat expression-tree ([`Et`]) arena the
//! selector operates on.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     module Acc {
//!         in d: bit(8);
//!         ctrl en: bit(1);
//!         out q: bit(8);
//!         register q = d when en == 1;
//!     }
//!     processor P {
//!         instruction word: bit(12);
//!         parts { acc: Acc; }
//!         connections { acc.d = I[7:0]; acc.en = I[8]; }
//!     }
//! "#;
//! let model = record_hdl::parse(src)?;
//! let netlist = record_netlist::elaborate(&model)?;
//! let ex = record_isex::extract(&netlist, &Default::default())?;
//! let grammar = record_grammar::TreeGrammar::from_base(&ex.base, &netlist);
//! // start rule + stop rule + one RT rule (acc := #imm)
//! assert_eq!(grammar.rules().len(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod build;
mod et;
mod types;

pub use et::{Et, EtBuilder, EtDest, EtKind, NodeIdx};
pub use types::{
    AssignKey, GPat, NonTermId, NonTermKind, Rule, RuleId, RuleOrigin, TermKey, TreeGrammar,
};

#[cfg(test)]
mod tests;
