//! Grammar data types.

use record_netlist::{Netlist, ProcPortId, StorageId};
use record_rtl::{OpKind, TemplateId};
use std::collections::BTreeMap;
use std::fmt;

/// Index of a non-terminal. `NonTermId(0)` is always `START`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NonTermId(pub u32);

impl NonTermId {
    /// The designated start symbol.
    pub const START: NonTermId = NonTermId(0);
}

/// Index of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u32);

/// Identifies the destination wrapped by a designated `ASSIGN` terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AssignKey {
    Reg(StorageId),
    RegFile(StorageId),
    Port(ProcPortId),
}

/// Identity of a grammar terminal.
///
/// Terminals are matched against expression-tree node kinds; see
/// [`crate::EtKind`].  `Imm` terminals match any constant that fits the
/// field — the only semantic (non-structural) match in the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TermKey {
    /// Designated root terminal for assignments to a register/port
    /// destination; arity 1 (the value).
    Assign(AssignKey),
    /// Designated root terminal for memory stores; arity 2 (address,
    /// value).
    Store(StorageId),
    /// A hardware operator; arity = [`OpKind::arity`].
    Op(OpKind),
    /// A memory read; arity 1 (the address).
    MemRead(StorageId),
    /// The value currently held in a register (stop-rule terminal / ET
    /// leaf); arity 0.
    RegLeaf(StorageId),
    /// The value in some register-file cell; arity 0.
    RfLeaf(StorageId),
    /// A primary input port; arity 0.
    PortLeaf(ProcPortId),
    /// A hardwired constant; arity 0, matches exactly.
    ConstVal(u64),
    /// An instruction immediate field; arity 0, matches any constant that
    /// fits `hi - lo + 1` bits.
    Imm { hi: u16, lo: u16 },
}

impl TermKey {
    /// Number of children.
    pub fn arity(&self) -> usize {
        match self {
            TermKey::Assign(_) | TermKey::MemRead(_) => 1,
            TermKey::Store(_) => 2,
            TermKey::Op(op) => op.arity(),
            _ => 0,
        }
    }
}

/// A rule right-hand side: a tree over terminals with non-terminal leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GPat {
    /// Derivation from a non-terminal.
    NT(NonTermId),
    /// Terminal node with child patterns.
    T(TermKey, Vec<GPat>),
}

impl GPat {
    /// Is this a chain rule body (a bare non-terminal)?
    pub fn as_chain(&self) -> Option<NonTermId> {
        match self {
            GPat::NT(nt) => Some(*nt),
            GPat::T(..) => None,
        }
    }

    /// Non-terminal leaves in left-to-right order.
    pub fn nonterm_leaves(&self) -> Vec<NonTermId> {
        let mut out = Vec::new();
        fn rec(p: &GPat, out: &mut Vec<NonTermId>) {
            match p {
                GPat::NT(nt) => out.push(*nt),
                GPat::T(_, kids) => kids.iter().for_each(|k| rec(k, out)),
            }
        }
        rec(self, &mut out);
        out
    }
}

/// Where a rule came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleOrigin {
    /// Designated start rule (cost 0).
    Start,
    /// Stop rule for a storage (cost 0).
    Stop(StorageId),
    /// An RT rule derived from a template (cost 1).
    Template(TemplateId),
}

/// One grammar rule `lhs → rhs` with cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    pub id: RuleId,
    pub lhs: NonTermId,
    pub rhs: GPat,
    pub cost: u32,
    pub origin: RuleOrigin,
}

impl Rule {
    /// The template behind this rule, if it is an RT rule.
    pub fn template(&self) -> Option<TemplateId> {
        match self.origin {
            RuleOrigin::Template(t) => Some(t),
            _ => None,
        }
    }
}

/// What a non-terminal stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NonTermKind {
    Start,
    Reg(StorageId),
    RegFile(StorageId),
    Port(ProcPortId),
}

/// The tree grammar `G = (ΣT, ΣN, S, R, c)` of a target processor.
#[derive(Debug, Clone)]
pub struct TreeGrammar {
    nonterms: Vec<NonTermKind>,
    nt_names: Vec<String>,
    by_kind: BTreeMap<NonTermKind, NonTermId>,
    rules: Vec<Rule>,
}

impl TreeGrammar {
    pub(crate) fn new_internal(
        nonterms: Vec<NonTermKind>,
        nt_names: Vec<String>,
        by_kind: BTreeMap<NonTermKind, NonTermId>,
        rules: Vec<Rule>,
    ) -> Self {
        TreeGrammar {
            nonterms,
            nt_names,
            by_kind,
            rules,
        }
    }

    /// All rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// A rule by id.
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id.0 as usize]
    }

    /// Number of non-terminals (including `START`).
    pub fn nonterm_count(&self) -> usize {
        self.nonterms.len()
    }

    /// The kind of a non-terminal.
    pub fn nonterm_kind(&self, nt: NonTermId) -> NonTermKind {
        self.nonterms[nt.0 as usize]
    }

    /// Printable name of a non-terminal.
    pub fn nonterm_name(&self, nt: NonTermId) -> &str {
        &self.nt_names[nt.0 as usize]
    }

    /// The non-terminal for a register/regfile/port, if it exists.
    pub fn nonterm_of(&self, kind: NonTermKind) -> Option<NonTermId> {
        self.by_kind.get(&kind).copied()
    }

    /// Rules with `lhs == nt`.
    pub fn rules_for(&self, nt: NonTermId) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(move |r| r.lhs == nt)
    }

    /// Chain rules (`X → Y`), as `(rule, source)` pairs.
    pub fn chain_rules(&self) -> impl Iterator<Item = (&Rule, NonTermId)> {
        self.rules
            .iter()
            .filter_map(|r| r.rhs.as_chain().map(|src| (r, src)))
    }

    /// Diagnoses non-terminals that have no rules at all (an ET leaf bound
    /// there could never be derived) and non-terminals unreachable from
    /// `START`.  Returns human-readable findings; an empty list means the
    /// grammar is well-formed.
    pub fn check(&self) -> Vec<String> {
        let mut findings = Vec::new();
        for (i, _) in self.nonterms.iter().enumerate() {
            let nt = NonTermId(i as u32);
            if self.rules_for(nt).next().is_none() {
                findings.push(format!(
                    "non-terminal `{}` has no rules (location can never be written)",
                    self.nonterm_name(nt)
                ));
            }
        }
        // Reachability from START through rule bodies.
        let mut reach = vec![false; self.nonterms.len()];
        reach[0] = true;
        let mut changed = true;
        while changed {
            changed = false;
            for r in &self.rules {
                if reach[r.lhs.0 as usize] {
                    for nt in r.rhs.nonterm_leaves() {
                        if !reach[nt.0 as usize] {
                            reach[nt.0 as usize] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        for (i, ok) in reach.iter().enumerate() {
            if !ok {
                findings.push(format!(
                    "non-terminal `{}` is unreachable from START",
                    self.nonterm_name(NonTermId(i as u32))
                ));
            }
        }
        findings
    }

    /// Renders the grammar in an iburg-like BNF listing.
    pub fn render(&self, netlist: &Netlist) -> String {
        let mut out = String::new();
        for r in &self.rules {
            out.push_str(&format!(
                "{:>4}: {} -> {} [{}]\n",
                r.id.0,
                self.nonterm_name(r.lhs),
                render_pat(&r.rhs, self, netlist),
                r.cost
            ));
        }
        out
    }
}

fn render_pat(p: &GPat, g: &TreeGrammar, n: &Netlist) -> String {
    match p {
        GPat::NT(nt) => g.nonterm_name(*nt).to_owned(),
        GPat::T(key, kids) => {
            let head = render_key(key, n);
            if kids.is_empty() {
                head
            } else {
                let args: Vec<String> = kids.iter().map(|k| render_pat(k, g, n)).collect();
                format!("{head}({})", args.join(", "))
            }
        }
    }
}

fn render_key(key: &TermKey, n: &Netlist) -> String {
    match key {
        TermKey::Assign(AssignKey::Reg(s)) | TermKey::Assign(AssignKey::RegFile(s)) => {
            format!("ASSIGN_{}", n.storage(*s).name)
        }
        TermKey::Assign(AssignKey::Port(p)) => format!("ASSIGN_{}", n.proc_port(*p).name),
        TermKey::Store(s) => format!("STORE_{}", n.storage(*s).name),
        TermKey::Op(op) => op.to_string(),
        TermKey::MemRead(s) => format!("{}_read", n.storage(*s).name),
        TermKey::RegLeaf(s) => format!("{}_leaf", n.storage(*s).name),
        TermKey::RfLeaf(s) => format!("{}_leaf", n.storage(*s).name),
        TermKey::PortLeaf(p) => n.proc_port(*p).name.clone(),
        TermKey::ConstVal(v) => format!("const_{v}"),
        TermKey::Imm { hi, lo } => format!("imm{}_{}", hi, lo),
    }
}

impl fmt::Display for TreeGrammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tree grammar: {} non-terminals, {} rules",
            self.nonterm_count(),
            self.rules.len()
        )
    }
}
